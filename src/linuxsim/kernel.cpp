#include "linuxsim/kernel.hpp"

#include <algorithm>
#include <cassert>

namespace mkbas::linuxsim {

const char* to_string(Errno e) {
  switch (e) {
    case Errno::kOk:
      return "OK";
    case Errno::kEACCES:
      return "EACCES";
    case Errno::kEPERM:
      return "EPERM";
    case Errno::kENOENT:
      return "ENOENT";
    case Errno::kEEXIST:
      return "EEXIST";
    case Errno::kEAGAIN:
      return "EAGAIN";
    case Errno::kESRCH:
      return "ESRCH";
    case Errno::kEBADF:
      return "EBADF";
    case Errno::kEINVAL:
      return "EINVAL";
    case Errno::kECONNREFUSED:
      return "ECONNREFUSED";
    case Errno::kEPIPE:
      return "EPIPE";
    case Errno::kEOF:
      return "EOF";
  }
  return "?";
}

LinuxKernel::LinuxKernel(sim::Machine& machine) : machine_(machine) {
  auto& mx = machine_.metrics();
  met_.sc_kill = mx.counter("linux.syscall.kill");
  met_.sc_signal = mx.counter("linux.syscall.signal");
  met_.sc_spawn = mx.counter("linux.syscall.spawn");
  met_.sc_exit = mx.counter("linux.syscall.exit");
  met_.sc_setuid = mx.counter("linux.syscall.setuid");
  met_.sc_mq_open = mx.counter("linux.syscall.mq_open");
  met_.sc_mq_send = mx.counter("linux.syscall.mq_send");
  met_.sc_mq_receive = mx.counter("linux.syscall.mq_receive");
  met_.sc_sock_connect = mx.counter("linux.syscall.sock_connect");
  met_.sc_sock_accept = mx.counter("linux.syscall.sock_accept");
  met_.sc_sock_send = mx.counter("linux.syscall.sock_send");
  met_.sc_sock_recv = mx.counter("linux.syscall.sock_recv");
  met_.sc_file = mx.counter("linux.syscall.file");
  met_.perm_denied = mx.counter("linux.perm.denied");
  met_.ipc_latency = mx.log_histogram("linux.ipc.latency", 4, 1e7);
  tag_mq_span_ = sim::TagRegistry::instance().intern("linux.mq");
}

// ---- Task plumbing ----

LinuxKernel::Task& LinuxKernel::current_task() {
  // Fail loudly in all build types: calling a syscall from outside a task
  // (e.g. from a driver callback) is a harness bug, not a recoverable
  // condition.
  sim::Process* p = machine_.current();
  if (p == nullptr) {
    throw std::logic_error("Linux syscall outside process context");
  }
  const auto it = tasks_.find(p->pid());
  if (it == tasks_.end()) {
    throw std::logic_error("caller is not a Linux task");
  }
  return *it->second;
}

const LinuxKernel::Task* LinuxKernel::task_by_pid(int pid) const {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

LinuxKernel::Task* LinuxKernel::task_by_pid(int pid) {
  const auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

int LinuxKernel::do_spawn(const std::string& name, Uid uid,
                          std::function<void()> body, int priority) {
  sim::Process* proc = machine_.spawn(name, std::move(body), priority);
  if (proc == nullptr) return -1;
  auto task = std::make_unique<Task>();
  task->pid = proc->pid();
  task->name = name;
  task->uid = uid;
  task->proc = proc;
  const int pid = task->pid;
  tasks_[pid] = std::move(task);
  proc->add_exit_hook([this, pid](sim::Process&) {
    // Close descriptors and drop the task entry so waiter lists and the
    // namespace never reference a dead task.
    Task* t = task_by_pid(pid);
    if (t == nullptr) return;
    for (auto& [fd, desc] : t->fds) close_desc(desc);
    tasks_.erase(pid);
  });
  machine_.trace().emit(machine_.now(), pid, sim::TraceKind::kProcess,
                        "linux.spawn",
                        name + " uid=" + std::to_string(uid));
  return pid;
}

int LinuxKernel::spawn_process(const std::string& name, Uid uid,
                               std::function<void()> body, int priority) {
  return do_spawn(name, uid, std::move(body), priority);
}

int LinuxKernel::fork_process(const std::string& name,
                              std::function<void()> body, int priority) {
  enter_linux();
  met_.sc_spawn.inc();
  return do_spawn(name, current_task().uid, std::move(body), priority);
}

void LinuxKernel::enter_linux() {
  machine_.enter_kernel();
  deliver_pending_signals(current_task());
}

void LinuxKernel::deliver_pending_signals(Task& task) {
  if (task.delivering_signals) return;  // no nested delivery
  task.delivering_signals = true;
  while (!task.pending_signals.empty()) {
    const int sig = task.pending_signals.front();
    task.pending_signals.pop_front();
    const auto it = task.sig_handlers.find(sig);
    if (it != task.sig_handlers.end()) {
      machine_.trace().emit(machine_.now(), task.pid,
                            sim::TraceKind::kProcess, "linux.sig_handled",
                            task.name + " sig " + std::to_string(sig));
      it->second();  // runs in the target's own context
      continue;
    }
    if (sig == kSigTerm) {
      task.delivering_signals = false;
      machine_.trace().emit(machine_.now(), task.pid,
                            sim::TraceKind::kProcess, "linux.sig_default",
                            task.name + " terminated by SIGTERM");
      throw sim::ProcessExit{128 + sig};
    }
    // SIGUSR1 (and anything else) without a handler: ignored.
  }
  task.delivering_signals = false;
}

Errno LinuxKernel::sys_kill_sig(int pid, int sig) {
  enter_linux();
  met_.sc_kill.inc();
  Task& self = current_task();
  Task* target = task_by_pid(pid);
  if (target == nullptr) return Errno::kESRCH;
  // Classic Unix rule: root signals anyone; others only their own uid.
  if (self.uid != kRootUid && self.uid != target->uid) {
    met_.perm_denied.inc();
    std::string detail = self.name + " (uid " + std::to_string(self.uid) +
                         ") -> " + target->name + " (uid " +
                         std::to_string(target->uid) + ")";
    machine_.trace().emit(machine_.now(), self.pid,
                          sim::TraceKind::kSecurity, "linux.kill_deny",
                          detail);
    machine_.audit().record(machine_.now(), machine_.machine_id(), self.pid,
                            "linux.kill_deny", std::move(detail),
                            machine_.spans(),
                            machine_.spans().current(self.pid));
    return Errno::kEPERM;
  }
  if (sig == kSigKill) {
    machine_.trace().emit(machine_.now(), self.pid,
                          sim::TraceKind::kProcess, "linux.kill",
                          self.name + " kills " + target->name);
    machine_.kill(target->proc);
    return Errno::kOk;
  }
  // Catchable signal: queue it and nudge the target so blocked syscalls
  // re-check their conditions and deliver.
  target->pending_signals.push_back(sig);
  machine_.make_ready(target->proc);
  return Errno::kOk;
}

Errno LinuxKernel::install_signal_handler(int sig,
                                          std::function<void()> handler) {
  enter_linux();
  met_.sc_signal.inc();
  if (sig == kSigKill) return Errno::kEINVAL;  // SIGKILL is uncatchable
  current_task().sig_handlers[sig] = std::move(handler);
  return Errno::kOk;
}

void LinuxKernel::sys_exit(int code) {
  enter_linux();
  met_.sc_exit.inc();
  throw sim::ProcessExit{code};
}

Uid LinuxKernel::getuid() {
  enter_linux();
  return current_task().uid;
}

int LinuxKernel::getpid() {
  enter_linux();
  return current_task().pid;
}

int LinuxKernel::find_pid(const std::string& name) const {
  for (const auto& [pid, task] : tasks_) {
    if (task->name == name) return pid;
  }
  return -1;
}

bool LinuxKernel::is_alive(int pid) const { return task_by_pid(pid) != nullptr; }

Uid LinuxKernel::uid_of(int pid) const {
  const Task* t = task_by_pid(pid);
  return t == nullptr ? -1 : t->uid;
}

Errno LinuxKernel::sys_setuid(Uid uid) {
  enter_linux();
  met_.sc_setuid.inc();
  Task& self = current_task();
  if (self.uid != kRootUid) return Errno::kEPERM;
  self.uid = uid;
  return Errno::kOk;
}

void LinuxKernel::exploit_escalate_to_root() {
  enter_linux();
  Task& self = current_task();
  machine_.trace().emit(machine_.now(), self.pid, sim::TraceKind::kAttack,
                        "linux.privesc",
                        self.name + ": uid " + std::to_string(self.uid) +
                            " -> 0 (exploited)");
  self.uid = kRootUid;
}

// ---- Permission checks ----

bool LinuxKernel::may_read(const Task& t, const Node& n) const {
  if (t.uid == kRootUid) return true;  // root bypasses DAC entirely
  const auto acl_it = n.mode.acl.find(t.uid);
  if (acl_it != n.mode.acl.end()) return acl_it->second.first;
  return t.uid == n.owner ? n.mode.owner_read : n.mode.other_read;
}

bool LinuxKernel::may_write(const Task& t, const Node& n) const {
  if (t.uid == kRootUid) return true;
  const auto acl_it = n.mode.acl.find(t.uid);
  if (acl_it != n.mode.acl.end()) return acl_it->second.second;
  return t.uid == n.owner ? n.mode.owner_write : n.mode.other_write;
}

LinuxKernel::FileDesc* LinuxKernel::fd_of(Task& t, int fd) {
  const auto it = t.fds.find(fd);
  return it == t.fds.end() ? nullptr : &it->second;
}

void LinuxKernel::wake_all(std::vector<sim::Process*>& waiters) {
  for (sim::Process* p : waiters) machine_.make_ready(p);
  waiters.clear();
}

// ---- Message queues ----

int LinuxKernel::mq_open(const std::string& name, bool create, Mode mode,
                         int maxmsg) {
  enter_linux();
  met_.sc_mq_open.inc();
  Task& self = current_task();
  auto it = namespace_.find(name);
  std::shared_ptr<Node> node;
  if (it == namespace_.end()) {
    if (!create) return -static_cast<int>(Errno::kENOENT);
    if (namespace_.size() >= kMaxQueues) {
      return -static_cast<int>(Errno::kEAGAIN);
    }
    node = std::make_shared<Node>();
    node->type = Node::Type::kMqueue;
    node->name = name;
    node->owner = self.uid;
    node->mode = mode;
    node->maxmsg = std::max(1, maxmsg);
    namespace_[name] = node;
  } else {
    node = it->second;
    if (node->type != Node::Type::kMqueue) {
      return -static_cast<int>(Errno::kEINVAL);
    }
    // Opening an existing queue is where the file-permission check bites.
    const bool r = may_read(self, *node);
    const bool w = may_write(self, *node);
    if (!r && !w) {
      met_.perm_denied.inc();
      std::string detail = self.name + " denied on " + name;
      machine_.trace().emit(machine_.now(), self.pid,
                            sim::TraceKind::kSecurity, "linux.mq_deny",
                            detail);
      machine_.audit().record(machine_.now(), machine_.machine_id(),
                              self.pid, "linux.mq_deny", std::move(detail),
                              machine_.spans(),
                              machine_.spans().current(self.pid));
      return -static_cast<int>(Errno::kEACCES);
    }
  }
  const int fd = self.next_fd++;
  FileDesc desc;
  desc.node = node;
  desc.readable = may_read(self, *node);
  desc.writable = may_write(self, *node);
  self.fds[fd] = desc;
  node->open_count++;
  return fd;
}

Errno LinuxKernel::mq_close(int fd) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  desc->node->open_count--;
  self.fds.erase(fd);
  return Errno::kOk;
}

Errno LinuxKernel::mq_unlink(const std::string& name) {
  enter_linux();
  Task& self = current_task();
  const auto it = namespace_.find(name);
  if (it == namespace_.end()) return Errno::kENOENT;
  if (self.uid != kRootUid && self.uid != it->second->owner) {
    return Errno::kEACCES;
  }
  it->second->unlinked = true;
  namespace_.erase(it);  // open descriptors keep the node alive
  return Errno::kOk;
}

Errno LinuxKernel::mq_send(int fd, const MqMessage& msg, bool blocking) {
  enter_linux();
  met_.sc_mq_send.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  if (!desc->writable) return Errno::kEACCES;
  std::shared_ptr<Node> node = desc->node;
  while (static_cast<int>(node->queue.size()) >= node->maxmsg) {
    if (!blocking) return Errno::kEAGAIN;
    node->send_waiters.push_back(self.proc);
    machine_.block_current("mq.send_full");
    deliver_pending_signals(self);
    // Re-validate: the fd may have been closed by a signal handler etc.
    if (fd_of(self, fd) == nullptr) return Errno::kEBADF;
  }
  MqMessage stamped = msg;
  // Fault injection: on the Linux baseline the "wire" is the queue, so the
  // filter sees (sender task, queue name). Runs after the mode checks — a
  // dropped message was still a permitted one.
  if (const auto& filt = machine_.msg_filter()) {
    const sim::MsgFaultAction act = filt(self.name, node->name);
    if (act.drop) {
      return Errno::kOk;  // swallowed in transit; sender sees success
    }
    if (act.corrupt && !stamped.data.empty()) {
      sim::corrupt_bytes(reinterpret_cast<std::uint8_t*>(stamped.data.data()),
                         stamped.data.size(), act.corrupt_seed);
    }
    if (act.delay > 0) {
      machine_.charge(act.delay);
      deliver_pending_signals(self);
      if (fd_of(self, fd) == nullptr) return Errno::kEBADF;
    }
  }
  // Insert by priority (descending), FIFO within equal priority.
  auto pos = std::find_if(
      node->queue.begin(), node->queue.end(),
      [&](const MqMessage& m) { return m.priority < msg.priority; });
  stamped.enqueued_at = machine_.now();
  {
    // The queue hop is a flow span from enqueue to dequeue; its context
    // rides in the kernel's queue entry, like enqueued_at.
    auto& spans = machine_.spans();
    stamped.span = spans.begin_flow(self.pid, machine_.now(), tag_mq_span_,
                                    spans.current(self.pid));
  }
  node->queue.insert(pos, stamped);
  machine_.trace().emit(machine_.now(), self.pid, sim::TraceKind::kIpc,
                        "mq.send", self.name + " -> " + node->name);
  wake_all(node->recv_waiters);
  return Errno::kOk;
}

Errno LinuxKernel::mq_receive(int fd, MqMessage& out, bool blocking) {
  enter_linux();
  met_.sc_mq_receive.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  if (!desc->readable) return Errno::kEACCES;
  std::shared_ptr<Node> node = desc->node;
  while (node->queue.empty()) {
    if (!blocking) return Errno::kEAGAIN;
    node->recv_waiters.push_back(self.proc);
    machine_.block_current("mq.recv_empty");
    deliver_pending_signals(self);
    if (fd_of(self, fd) == nullptr) return Errno::kEBADF;
  }
  out = node->queue.front();
  node->queue.pop_front();
  met_.ipc_latency.record(
      static_cast<double>(machine_.now() - out.enqueued_at));
  if (out.span != 0) {
    auto& spans = machine_.spans();
    spans.set_current(self.pid, spans.context_of(out.span));
    spans.end_flow(machine_.now(), out.span);
  }
  wake_all(node->send_waiters);
  return Errno::kOk;
}

std::size_t LinuxKernel::mq_depth(const std::string& name) const {
  const auto it = namespace_.find(name);
  return it == namespace_.end() ? 0 : it->second->queue.size();
}

// ---- Unix domain sockets ----

void LinuxKernel::wake_conn(Connection& conn) {
  wake_all(conn.server_waiters);
  wake_all(conn.client_waiters);
}

void LinuxKernel::close_desc(FileDesc& desc) {
  if (desc.node) {
    desc.node->open_count--;
    desc.node.reset();
  }
  if (desc.listener) {
    desc.listener->closed = true;
    if (desc.listener->abstract) {
      abstract_sockets_.erase(desc.listener->name);
    } else {
      fs_sockets_.erase(desc.listener->name);
    }
    wake_all(desc.listener->accept_waiters);
    desc.listener.reset();
  }
  if (desc.conn) {
    if (desc.conn_is_server_side) {
      desc.conn->server_closed = true;
    } else {
      desc.conn->client_closed = true;
    }
    wake_conn(*desc.conn);
    desc.conn.reset();
  }
}

int LinuxKernel::sock_socket() {
  enter_linux();
  Task& self = current_task();
  const int fd = self.next_fd++;
  FileDesc desc;
  desc.is_unbound_socket = true;
  self.fds[fd] = desc;
  return fd;
}

Errno LinuxKernel::sock_bind(int fd, const std::string& path, Mode mode) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->is_unbound_socket) return Errno::kEBADF;
  if (fs_sockets_.count(path) != 0) return Errno::kEEXIST;
  auto lst = std::make_shared<Listener>();
  lst->name = path;
  lst->abstract = false;
  lst->owner = self.uid;
  lst->mode = mode;
  fs_sockets_[path] = lst;
  desc->listener = lst;
  desc->is_unbound_socket = false;
  return Errno::kOk;
}

Errno LinuxKernel::sock_bind_abstract(int fd, const std::string& name) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->is_unbound_socket) return Errno::kEBADF;
  if (abstract_sockets_.count(name) != 0) return Errno::kEEXIST;
  // NOTE: no ownership or mode is recorded — the abstract namespace has
  // no permission model. Whoever binds first owns the name.
  auto lst = std::make_shared<Listener>();
  lst->name = name;
  lst->abstract = true;
  lst->owner = self.uid;
  abstract_sockets_[name] = lst;
  desc->listener = lst;
  desc->is_unbound_socket = false;
  machine_.trace().emit(machine_.now(), self.pid,
                        sim::TraceKind::kSecurity, "uds.abstract_bind",
                        self.name + " bound @" + name +
                            " (no permission check possible)");
  return Errno::kOk;
}

Errno LinuxKernel::sock_listen(int fd, int backlog) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->listener) return Errno::kEBADF;
  desc->listener->listening = true;
  desc->listener->backlog = std::max(1, backlog);
  return Errno::kOk;
}

int LinuxKernel::sock_accept(int fd, bool blocking) {
  enter_linux();
  met_.sc_sock_accept.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->listener) {
    return -static_cast<int>(Errno::kEBADF);
  }
  std::shared_ptr<Listener> lst = desc->listener;
  while (lst->pending.empty()) {
    if (lst->closed) return -static_cast<int>(Errno::kEINVAL);
    if (!blocking) return -static_cast<int>(Errno::kEAGAIN);
    lst->accept_waiters.push_back(self.proc);
    machine_.block_current("uds.accept");
    deliver_pending_signals(self);
    if (fd_of(self, fd) == nullptr) return -static_cast<int>(Errno::kEBADF);
  }
  std::shared_ptr<Connection> conn = lst->pending.front();
  lst->pending.pop_front();
  conn->server_uid = self.uid;
  const int new_fd = self.next_fd++;
  FileDesc cd;
  cd.conn = conn;
  cd.conn_is_server_side = true;
  self.fds[new_fd] = cd;
  wake_conn(*conn);  // the connector may be waiting for acceptance
  return new_fd;
}

int LinuxKernel::sock_connect(const std::string& path) {
  enter_linux();
  met_.sc_sock_connect.inc();
  Task& self = current_task();
  const auto it = fs_sockets_.find(path);
  if (it == fs_sockets_.end()) return -static_cast<int>(Errno::kENOENT);
  std::shared_ptr<Listener> lst = it->second;
  // Connecting requires write permission on the socket node — the
  // protection the filesystem namespace offers (and abstract lacks).
  const Mode& mode = lst->mode;
  bool allowed = self.uid == kRootUid;
  if (!allowed) {
    const auto acl_it = mode.acl.find(self.uid);
    if (acl_it != mode.acl.end()) {
      allowed = acl_it->second.second;
    } else {
      allowed = self.uid == lst->owner ? mode.owner_write : mode.other_write;
    }
  }
  if (!allowed) {
    met_.perm_denied.inc();
    std::string detail = self.name + " denied on " + path;
    machine_.trace().emit(machine_.now(), self.pid,
                          sim::TraceKind::kSecurity, "uds.connect_deny",
                          detail);
    machine_.audit().record(machine_.now(), machine_.machine_id(), self.pid,
                            "uds.connect_deny", std::move(detail),
                            machine_.spans(),
                            machine_.spans().current(self.pid));
    return -static_cast<int>(Errno::kEACCES);
  }
  if (!lst->listening || lst->closed) {
    return -static_cast<int>(Errno::kECONNREFUSED);
  }
  if (static_cast<int>(lst->pending.size()) >= lst->backlog) {
    return -static_cast<int>(Errno::kECONNREFUSED);
  }
  auto conn = std::make_shared<Connection>();
  conn->client_uid = self.uid;
  lst->pending.push_back(conn);
  wake_all(lst->accept_waiters);
  const int fd = self.next_fd++;
  FileDesc cd;
  cd.conn = conn;
  cd.conn_is_server_side = false;
  self.fds[fd] = cd;
  return fd;
}

int LinuxKernel::sock_connect_abstract(const std::string& name) {
  enter_linux();
  met_.sc_sock_connect.inc();
  Task& self = current_task();
  const auto it = abstract_sockets_.find(name);
  if (it == abstract_sockets_.end()) {
    return -static_cast<int>(Errno::kENOENT);
  }
  std::shared_ptr<Listener> lst = it->second;
  // No permission check of any kind: this is the namespace's hazard.
  if (!lst->listening || lst->closed) {
    return -static_cast<int>(Errno::kECONNREFUSED);
  }
  if (static_cast<int>(lst->pending.size()) >= lst->backlog) {
    return -static_cast<int>(Errno::kECONNREFUSED);
  }
  auto conn = std::make_shared<Connection>();
  conn->client_uid = self.uid;
  lst->pending.push_back(conn);
  wake_all(lst->accept_waiters);
  const int fd = self.next_fd++;
  FileDesc cd;
  cd.conn = conn;
  cd.conn_is_server_side = false;
  self.fds[fd] = cd;
  return fd;
}

Errno LinuxKernel::sock_send(int fd, const std::string& data,
                             bool blocking) {
  enter_linux();
  met_.sc_sock_send.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->conn) return Errno::kEBADF;
  std::shared_ptr<Connection> conn = desc->conn;
  const bool server = desc->conn_is_server_side;
  auto& queue = server ? conn->to_client : conn->to_server;
  for (;;) {
    if ((server && conn->client_closed) ||
        (!server && conn->server_closed)) {
      return Errno::kEPIPE;
    }
    if (queue.size() < Connection::kBufDepth) break;
    if (!blocking) return Errno::kEAGAIN;
    auto& waiters = server ? conn->server_waiters : conn->client_waiters;
    waiters.push_back(self.proc);
    machine_.block_current("uds.send_full");
    deliver_pending_signals(self);
    if (fd_of(self, fd) == nullptr) return Errno::kEBADF;
  }
  // UDS is a byte stream: no message boundary survives, so no causal
  // context can ride the wire — the trace deliberately breaks here,
  // modeling the real protocol limit.
  queue.push_back(Datagram{data, machine_.now()});
  wake_conn(*conn);
  return Errno::kOk;
}

Errno LinuxKernel::sock_recv(int fd, std::string* out, bool blocking) {
  enter_linux();
  met_.sc_sock_recv.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->conn) return Errno::kEBADF;
  std::shared_ptr<Connection> conn = desc->conn;
  const bool server = desc->conn_is_server_side;
  auto& queue = server ? conn->to_server : conn->to_client;
  for (;;) {
    if (!queue.empty()) {
      *out = queue.front().data;
      met_.ipc_latency.record(
          static_cast<double>(machine_.now() - queue.front().enqueued));
      queue.pop_front();
      wake_conn(*conn);
      return Errno::kOk;
    }
    if ((server && conn->client_closed) ||
        (!server && conn->server_closed)) {
      return Errno::kEOF;
    }
    if (!blocking) return Errno::kEAGAIN;
    auto& waiters = server ? conn->server_waiters : conn->client_waiters;
    waiters.push_back(self.proc);
    machine_.block_current("uds.recv_empty");
    deliver_pending_signals(self);
    if (fd_of(self, fd) == nullptr) return Errno::kEBADF;
  }
}

Errno LinuxKernel::sock_close(int fd) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  close_desc(*desc);
  self.fds.erase(fd);
  return Errno::kOk;
}

Uid LinuxKernel::sock_peer_uid(int fd) {
  enter_linux();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr || !desc->conn) return -1;
  return desc->conn_is_server_side ? desc->conn->client_uid
                                   : desc->conn->server_uid;
}

// ---- Flat files ----

int LinuxKernel::open_file(const std::string& name, bool create, Mode mode) {
  enter_linux();
  met_.sc_file.inc();
  Task& self = current_task();
  auto it = namespace_.find(name);
  std::shared_ptr<Node> node;
  if (it == namespace_.end()) {
    if (!create) return -static_cast<int>(Errno::kENOENT);
    node = std::make_shared<Node>();
    node->type = Node::Type::kFile;
    node->name = name;
    node->owner = self.uid;
    node->mode = mode;
    namespace_[name] = node;
  } else {
    node = it->second;
    if (node->type != Node::Type::kFile) {
      return -static_cast<int>(Errno::kEINVAL);
    }
    if (!may_read(self, *node) && !may_write(self, *node)) {
      return -static_cast<int>(Errno::kEACCES);
    }
  }
  const int fd = self.next_fd++;
  FileDesc desc;
  desc.node = node;
  desc.readable = may_read(self, *node);
  desc.writable = may_write(self, *node);
  self.fds[fd] = desc;
  node->open_count++;
  return fd;
}

Errno LinuxKernel::write_file(int fd, const std::string& data) {
  enter_linux();
  met_.sc_file.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  if (!desc->writable) return Errno::kEACCES;
  desc->node->contents += data;
  return Errno::kOk;
}

Errno LinuxKernel::read_file(int fd, std::string& out) {
  enter_linux();
  met_.sc_file.inc();
  Task& self = current_task();
  FileDesc* desc = fd_of(self, fd);
  if (desc == nullptr) return Errno::kEBADF;
  if (!desc->readable) return Errno::kEACCES;
  out = desc->node->contents;
  return Errno::kOk;
}

const std::string* LinuxKernel::file_contents(const std::string& name) const {
  const auto it = namespace_.find(name);
  if (it == namespace_.end() || it->second->type != Node::Type::kFile) {
    return nullptr;
  }
  return &it->second->contents;
}

}  // namespace mkbas::linuxsim
