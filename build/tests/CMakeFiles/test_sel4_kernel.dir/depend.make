# Empty dependencies file for test_sel4_kernel.
# This may be replaced when dependencies are built.
