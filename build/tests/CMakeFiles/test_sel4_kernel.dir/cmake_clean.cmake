file(REMOVE_RECURSE
  "CMakeFiles/test_sel4_kernel.dir/sel4/test_kernel.cpp.o"
  "CMakeFiles/test_sel4_kernel.dir/sel4/test_kernel.cpp.o.d"
  "test_sel4_kernel"
  "test_sel4_kernel.pdb"
  "test_sel4_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sel4_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
