file(REMOVE_RECURSE
  "CMakeFiles/test_bacnet.dir/net/test_bacnet.cpp.o"
  "CMakeFiles/test_bacnet.dir/net/test_bacnet.cpp.o.d"
  "test_bacnet"
  "test_bacnet.pdb"
  "test_bacnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bacnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
