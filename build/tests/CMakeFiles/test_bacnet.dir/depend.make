# Empty dependencies file for test_bacnet.
# This may be replaced when dependencies are built.
