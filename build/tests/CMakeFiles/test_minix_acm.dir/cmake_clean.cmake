file(REMOVE_RECURSE
  "CMakeFiles/test_minix_acm.dir/minix/test_acm.cpp.o"
  "CMakeFiles/test_minix_acm.dir/minix/test_acm.cpp.o.d"
  "test_minix_acm"
  "test_minix_acm.pdb"
  "test_minix_acm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
