# Empty compiler generated dependencies file for test_minix_acm.
# This may be replaced when dependencies are built.
