# Empty compiler generated dependencies file for test_camkes.
# This may be replaced when dependencies are built.
