file(REMOVE_RECURSE
  "CMakeFiles/test_camkes.dir/camkes/test_camkes.cpp.o"
  "CMakeFiles/test_camkes.dir/camkes/test_camkes.cpp.o.d"
  "test_camkes"
  "test_camkes.pdb"
  "test_camkes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_camkes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
