# Empty compiler generated dependencies file for test_linux_uds.
# This may be replaced when dependencies are built.
