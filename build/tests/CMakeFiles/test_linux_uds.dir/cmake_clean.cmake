file(REMOVE_RECURSE
  "CMakeFiles/test_linux_uds.dir/bas/test_linux_uds.cpp.o"
  "CMakeFiles/test_linux_uds.dir/bas/test_linux_uds.cpp.o.d"
  "test_linux_uds"
  "test_linux_uds.pdb"
  "test_linux_uds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux_uds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
