file(REMOVE_RECURSE
  "CMakeFiles/test_bsl3.dir/bas/test_bsl3.cpp.o"
  "CMakeFiles/test_bsl3.dir/bas/test_bsl3.cpp.o.d"
  "test_bsl3"
  "test_bsl3.pdb"
  "test_bsl3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsl3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
