# Empty compiler generated dependencies file for test_bsl3.
# This may be replaced when dependencies are built.
