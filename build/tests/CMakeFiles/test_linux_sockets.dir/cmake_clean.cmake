file(REMOVE_RECURSE
  "CMakeFiles/test_linux_sockets.dir/linuxsim/test_sockets.cpp.o"
  "CMakeFiles/test_linux_sockets.dir/linuxsim/test_sockets.cpp.o.d"
  "test_linux_sockets"
  "test_linux_sockets.pdb"
  "test_linux_sockets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
