# Empty dependencies file for test_linux_sockets.
# This may be replaced when dependencies are built.
