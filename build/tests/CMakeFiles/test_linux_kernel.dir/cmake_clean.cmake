file(REMOVE_RECURSE
  "CMakeFiles/test_linux_kernel.dir/linuxsim/test_kernel.cpp.o"
  "CMakeFiles/test_linux_kernel.dir/linuxsim/test_kernel.cpp.o.d"
  "test_linux_kernel"
  "test_linux_kernel.pdb"
  "test_linux_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
