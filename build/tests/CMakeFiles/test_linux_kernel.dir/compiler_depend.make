# Empty compiler generated dependencies file for test_linux_kernel.
# This may be replaced when dependencies are built.
