# Empty dependencies file for test_minix_fs.
# This may be replaced when dependencies are built.
