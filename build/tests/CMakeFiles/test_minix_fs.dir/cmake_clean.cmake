file(REMOVE_RECURSE
  "CMakeFiles/test_minix_fs.dir/minix/test_fs.cpp.o"
  "CMakeFiles/test_minix_fs.dir/minix/test_fs.cpp.o.d"
  "test_minix_fs"
  "test_minix_fs.pdb"
  "test_minix_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
