# Empty compiler generated dependencies file for test_minix_vm.
# This may be replaced when dependencies are built.
