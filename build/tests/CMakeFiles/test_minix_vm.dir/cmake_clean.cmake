file(REMOVE_RECURSE
  "CMakeFiles/test_minix_vm.dir/minix/test_vm.cpp.o"
  "CMakeFiles/test_minix_vm.dir/minix/test_vm.cpp.o.d"
  "test_minix_vm"
  "test_minix_vm.pdb"
  "test_minix_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
