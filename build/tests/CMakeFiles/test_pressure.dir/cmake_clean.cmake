file(REMOVE_RECURSE
  "CMakeFiles/test_pressure.dir/physics/test_pressure.cpp.o"
  "CMakeFiles/test_pressure.dir/physics/test_pressure.cpp.o.d"
  "test_pressure"
  "test_pressure.pdb"
  "test_pressure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
