file(REMOVE_RECURSE
  "CMakeFiles/test_minix_kernel.dir/minix/test_kernel.cpp.o"
  "CMakeFiles/test_minix_kernel.dir/minix/test_kernel.cpp.o.d"
  "test_minix_kernel"
  "test_minix_kernel.pdb"
  "test_minix_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
