# Empty compiler generated dependencies file for test_minix_kernel.
# This may be replaced when dependencies are built.
