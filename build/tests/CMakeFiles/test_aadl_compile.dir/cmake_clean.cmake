file(REMOVE_RECURSE
  "CMakeFiles/test_aadl_compile.dir/aadl/test_compile.cpp.o"
  "CMakeFiles/test_aadl_compile.dir/aadl/test_compile.cpp.o.d"
  "test_aadl_compile"
  "test_aadl_compile.pdb"
  "test_aadl_compile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aadl_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
