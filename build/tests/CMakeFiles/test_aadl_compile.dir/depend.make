# Empty dependencies file for test_aadl_compile.
# This may be replaced when dependencies are built.
