# Empty dependencies file for test_web_logic.
# This may be replaced when dependencies are built.
