file(REMOVE_RECURSE
  "CMakeFiles/test_web_logic.dir/bas/test_web_logic.cpp.o"
  "CMakeFiles/test_web_logic.dir/bas/test_web_logic.cpp.o.d"
  "test_web_logic"
  "test_web_logic.pdb"
  "test_web_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_web_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
