file(REMOVE_RECURSE
  "CMakeFiles/test_aadl_parser.dir/aadl/test_parser.cpp.o"
  "CMakeFiles/test_aadl_parser.dir/aadl/test_parser.cpp.o.d"
  "test_aadl_parser"
  "test_aadl_parser.pdb"
  "test_aadl_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aadl_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
