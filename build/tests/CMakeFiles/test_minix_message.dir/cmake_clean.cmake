file(REMOVE_RECURSE
  "CMakeFiles/test_minix_message.dir/minix/test_message.cpp.o"
  "CMakeFiles/test_minix_message.dir/minix/test_message.cpp.o.d"
  "test_minix_message"
  "test_minix_message.pdb"
  "test_minix_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
