# Empty dependencies file for test_minix_message.
# This may be replaced when dependencies are built.
