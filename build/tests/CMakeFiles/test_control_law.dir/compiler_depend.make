# Empty compiler generated dependencies file for test_control_law.
# This may be replaced when dependencies are built.
