file(REMOVE_RECURSE
  "CMakeFiles/test_control_law.dir/bas/test_control_law.cpp.o"
  "CMakeFiles/test_control_law.dir/bas/test_control_law.cpp.o.d"
  "test_control_law"
  "test_control_law.pdb"
  "test_control_law[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
