file(REMOVE_RECURSE
  "CMakeFiles/test_minix_extensions.dir/minix/test_extensions.cpp.o"
  "CMakeFiles/test_minix_extensions.dir/minix/test_extensions.cpp.o.d"
  "test_minix_extensions"
  "test_minix_extensions.pdb"
  "test_minix_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minix_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
