# Empty dependencies file for test_minix_extensions.
# This may be replaced when dependencies are built.
