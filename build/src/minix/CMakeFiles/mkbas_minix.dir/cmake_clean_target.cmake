file(REMOVE_RECURSE
  "libmkbas_minix.a"
)
