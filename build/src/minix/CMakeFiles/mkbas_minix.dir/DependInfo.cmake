
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minix/acm.cpp" "src/minix/CMakeFiles/mkbas_minix.dir/acm.cpp.o" "gcc" "src/minix/CMakeFiles/mkbas_minix.dir/acm.cpp.o.d"
  "/root/repo/src/minix/fs.cpp" "src/minix/CMakeFiles/mkbas_minix.dir/fs.cpp.o" "gcc" "src/minix/CMakeFiles/mkbas_minix.dir/fs.cpp.o.d"
  "/root/repo/src/minix/kernel.cpp" "src/minix/CMakeFiles/mkbas_minix.dir/kernel.cpp.o" "gcc" "src/minix/CMakeFiles/mkbas_minix.dir/kernel.cpp.o.d"
  "/root/repo/src/minix/vm.cpp" "src/minix/CMakeFiles/mkbas_minix.dir/vm.cpp.o" "gcc" "src/minix/CMakeFiles/mkbas_minix.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mkbas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
