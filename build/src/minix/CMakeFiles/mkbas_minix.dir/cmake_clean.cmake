file(REMOVE_RECURSE
  "CMakeFiles/mkbas_minix.dir/acm.cpp.o"
  "CMakeFiles/mkbas_minix.dir/acm.cpp.o.d"
  "CMakeFiles/mkbas_minix.dir/fs.cpp.o"
  "CMakeFiles/mkbas_minix.dir/fs.cpp.o.d"
  "CMakeFiles/mkbas_minix.dir/kernel.cpp.o"
  "CMakeFiles/mkbas_minix.dir/kernel.cpp.o.d"
  "CMakeFiles/mkbas_minix.dir/vm.cpp.o"
  "CMakeFiles/mkbas_minix.dir/vm.cpp.o.d"
  "libmkbas_minix.a"
  "libmkbas_minix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_minix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
