# Empty dependencies file for mkbas_minix.
# This may be replaced when dependencies are built.
