# CMake generated Testfile for 
# Source directory: /root/repo/src/minix
# Build directory: /root/repo/build/src/minix
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
