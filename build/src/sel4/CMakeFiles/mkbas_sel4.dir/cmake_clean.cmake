file(REMOVE_RECURSE
  "CMakeFiles/mkbas_sel4.dir/kernel.cpp.o"
  "CMakeFiles/mkbas_sel4.dir/kernel.cpp.o.d"
  "libmkbas_sel4.a"
  "libmkbas_sel4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_sel4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
