file(REMOVE_RECURSE
  "libmkbas_sel4.a"
)
