# Empty dependencies file for mkbas_sel4.
# This may be replaced when dependencies are built.
