file(REMOVE_RECURSE
  "libmkbas_attack.a"
)
