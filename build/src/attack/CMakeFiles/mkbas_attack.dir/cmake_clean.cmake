file(REMOVE_RECURSE
  "CMakeFiles/mkbas_attack.dir/attacks.cpp.o"
  "CMakeFiles/mkbas_attack.dir/attacks.cpp.o.d"
  "libmkbas_attack.a"
  "libmkbas_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
