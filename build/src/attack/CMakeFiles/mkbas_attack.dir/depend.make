# Empty dependencies file for mkbas_attack.
# This may be replaced when dependencies are built.
