file(REMOVE_RECURSE
  "CMakeFiles/mkbas_core.dir/experiment.cpp.o"
  "CMakeFiles/mkbas_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mkbas_core.dir/report.cpp.o"
  "CMakeFiles/mkbas_core.dir/report.cpp.o.d"
  "CMakeFiles/mkbas_core.dir/safety.cpp.o"
  "CMakeFiles/mkbas_core.dir/safety.cpp.o.d"
  "libmkbas_core.a"
  "libmkbas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
