# Empty dependencies file for mkbas_core.
# This may be replaced when dependencies are built.
