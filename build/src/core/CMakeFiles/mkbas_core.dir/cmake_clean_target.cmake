file(REMOVE_RECURSE
  "libmkbas_core.a"
)
