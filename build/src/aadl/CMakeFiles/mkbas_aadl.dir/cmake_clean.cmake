file(REMOVE_RECURSE
  "CMakeFiles/mkbas_aadl.dir/compile.cpp.o"
  "CMakeFiles/mkbas_aadl.dir/compile.cpp.o.d"
  "CMakeFiles/mkbas_aadl.dir/lexer.cpp.o"
  "CMakeFiles/mkbas_aadl.dir/lexer.cpp.o.d"
  "CMakeFiles/mkbas_aadl.dir/parser.cpp.o"
  "CMakeFiles/mkbas_aadl.dir/parser.cpp.o.d"
  "libmkbas_aadl.a"
  "libmkbas_aadl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_aadl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
