# Empty compiler generated dependencies file for mkbas_aadl.
# This may be replaced when dependencies are built.
