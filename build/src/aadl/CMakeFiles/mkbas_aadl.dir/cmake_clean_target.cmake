file(REMOVE_RECURSE
  "libmkbas_aadl.a"
)
