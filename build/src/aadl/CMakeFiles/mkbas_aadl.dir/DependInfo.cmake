
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aadl/compile.cpp" "src/aadl/CMakeFiles/mkbas_aadl.dir/compile.cpp.o" "gcc" "src/aadl/CMakeFiles/mkbas_aadl.dir/compile.cpp.o.d"
  "/root/repo/src/aadl/lexer.cpp" "src/aadl/CMakeFiles/mkbas_aadl.dir/lexer.cpp.o" "gcc" "src/aadl/CMakeFiles/mkbas_aadl.dir/lexer.cpp.o.d"
  "/root/repo/src/aadl/parser.cpp" "src/aadl/CMakeFiles/mkbas_aadl.dir/parser.cpp.o" "gcc" "src/aadl/CMakeFiles/mkbas_aadl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mkbas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minix/CMakeFiles/mkbas_minix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
