file(REMOVE_RECURSE
  "CMakeFiles/mkbas_linuxsim.dir/kernel.cpp.o"
  "CMakeFiles/mkbas_linuxsim.dir/kernel.cpp.o.d"
  "libmkbas_linuxsim.a"
  "libmkbas_linuxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_linuxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
