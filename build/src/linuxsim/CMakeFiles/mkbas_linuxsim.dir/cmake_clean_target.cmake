file(REMOVE_RECURSE
  "libmkbas_linuxsim.a"
)
