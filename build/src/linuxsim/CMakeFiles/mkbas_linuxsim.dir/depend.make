# Empty dependencies file for mkbas_linuxsim.
# This may be replaced when dependencies are built.
