# Empty compiler generated dependencies file for mkbas_bas.
# This may be replaced when dependencies are built.
