file(REMOVE_RECURSE
  "libmkbas_bas.a"
)
