file(REMOVE_RECURSE
  "CMakeFiles/mkbas_bas.dir/bsl3_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/bsl3_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/bsl3_sel4_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/bsl3_sel4_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/linux_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/linux_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/linux_uds_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/linux_uds_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/minix_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/minix_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/sel4_scenario.cpp.o"
  "CMakeFiles/mkbas_bas.dir/sel4_scenario.cpp.o.d"
  "CMakeFiles/mkbas_bas.dir/web_logic.cpp.o"
  "CMakeFiles/mkbas_bas.dir/web_logic.cpp.o.d"
  "libmkbas_bas.a"
  "libmkbas_bas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_bas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
