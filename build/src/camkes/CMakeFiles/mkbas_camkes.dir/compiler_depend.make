# Empty compiler generated dependencies file for mkbas_camkes.
# This may be replaced when dependencies are built.
