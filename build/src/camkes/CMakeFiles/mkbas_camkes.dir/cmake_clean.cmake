file(REMOVE_RECURSE
  "CMakeFiles/mkbas_camkes.dir/camkes.cpp.o"
  "CMakeFiles/mkbas_camkes.dir/camkes.cpp.o.d"
  "libmkbas_camkes.a"
  "libmkbas_camkes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_camkes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
