file(REMOVE_RECURSE
  "libmkbas_camkes.a"
)
