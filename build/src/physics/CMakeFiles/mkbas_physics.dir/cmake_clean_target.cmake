file(REMOVE_RECURSE
  "libmkbas_physics.a"
)
