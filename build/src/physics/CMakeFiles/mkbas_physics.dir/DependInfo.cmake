
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/pressure.cpp" "src/physics/CMakeFiles/mkbas_physics.dir/pressure.cpp.o" "gcc" "src/physics/CMakeFiles/mkbas_physics.dir/pressure.cpp.o.d"
  "/root/repo/src/physics/room.cpp" "src/physics/CMakeFiles/mkbas_physics.dir/room.cpp.o" "gcc" "src/physics/CMakeFiles/mkbas_physics.dir/room.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mkbas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
