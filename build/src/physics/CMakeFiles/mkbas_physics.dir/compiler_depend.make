# Empty compiler generated dependencies file for mkbas_physics.
# This may be replaced when dependencies are built.
