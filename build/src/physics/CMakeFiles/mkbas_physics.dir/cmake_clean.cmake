file(REMOVE_RECURSE
  "CMakeFiles/mkbas_physics.dir/pressure.cpp.o"
  "CMakeFiles/mkbas_physics.dir/pressure.cpp.o.d"
  "CMakeFiles/mkbas_physics.dir/room.cpp.o"
  "CMakeFiles/mkbas_physics.dir/room.cpp.o.d"
  "libmkbas_physics.a"
  "libmkbas_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
