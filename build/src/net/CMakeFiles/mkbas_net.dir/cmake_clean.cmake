file(REMOVE_RECURSE
  "CMakeFiles/mkbas_net.dir/bacnet.cpp.o"
  "CMakeFiles/mkbas_net.dir/bacnet.cpp.o.d"
  "libmkbas_net.a"
  "libmkbas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
