file(REMOVE_RECURSE
  "libmkbas_net.a"
)
