# Empty dependencies file for mkbas_net.
# This may be replaced when dependencies are built.
