file(REMOVE_RECURSE
  "CMakeFiles/mkbas_sim.dir/machine.cpp.o"
  "CMakeFiles/mkbas_sim.dir/machine.cpp.o.d"
  "CMakeFiles/mkbas_sim.dir/trace.cpp.o"
  "CMakeFiles/mkbas_sim.dir/trace.cpp.o.d"
  "libmkbas_sim.a"
  "libmkbas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkbas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
