file(REMOVE_RECURSE
  "libmkbas_sim.a"
)
