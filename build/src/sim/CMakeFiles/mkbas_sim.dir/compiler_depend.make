# Empty compiler generated dependencies file for mkbas_sim.
# This may be replaced when dependencies are built.
