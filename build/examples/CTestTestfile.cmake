# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_zone "/root/repo/build/examples/multi_zone")
set_tests_properties(example_multi_zone PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bsl3_lab "/root/repo/build/examples/bsl3_lab")
set_tests_properties(example_bsl3_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bacnet_gateway "/root/repo/build/examples/bacnet_gateway")
set_tests_properties(example_bacnet_gateway PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aadlc "/root/repo/build/examples/aadlc" "--builtin" "--capdl")
set_tests_properties(example_aadlc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_benign "/root/repo/build/examples/experiment_runner" "benign" "minix")
set_tests_properties(example_runner_benign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runner_attack "/root/repo/build/examples/experiment_runner" "attack" "sel4" "brute-force")
set_tests_properties(example_runner_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
