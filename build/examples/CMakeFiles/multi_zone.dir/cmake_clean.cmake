file(REMOVE_RECURSE
  "CMakeFiles/multi_zone.dir/multi_zone.cpp.o"
  "CMakeFiles/multi_zone.dir/multi_zone.cpp.o.d"
  "multi_zone"
  "multi_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
