
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multi_zone.cpp" "examples/CMakeFiles/multi_zone.dir/multi_zone.cpp.o" "gcc" "examples/CMakeFiles/multi_zone.dir/multi_zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aadl/CMakeFiles/mkbas_aadl.dir/DependInfo.cmake"
  "/root/repo/build/src/minix/CMakeFiles/mkbas_minix.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/mkbas_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mkbas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
