# Empty dependencies file for multi_zone.
# This may be replaced when dependencies are built.
