# Empty dependencies file for bsl3_lab.
# This may be replaced when dependencies are built.
