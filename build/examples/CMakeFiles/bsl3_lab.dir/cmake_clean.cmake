file(REMOVE_RECURSE
  "CMakeFiles/bsl3_lab.dir/bsl3_lab.cpp.o"
  "CMakeFiles/bsl3_lab.dir/bsl3_lab.cpp.o.d"
  "bsl3_lab"
  "bsl3_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsl3_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
