# Empty dependencies file for bacnet_gateway.
# This may be replaced when dependencies are built.
