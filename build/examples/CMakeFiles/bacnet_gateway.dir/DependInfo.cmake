
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bacnet_gateway.cpp" "examples/CMakeFiles/bacnet_gateway.dir/bacnet_gateway.cpp.o" "gcc" "examples/CMakeFiles/bacnet_gateway.dir/bacnet_gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bas/CMakeFiles/mkbas_bas.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mkbas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/mkbas_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/camkes/CMakeFiles/mkbas_camkes.dir/DependInfo.cmake"
  "/root/repo/build/src/sel4/CMakeFiles/mkbas_sel4.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxsim/CMakeFiles/mkbas_linuxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/aadl/CMakeFiles/mkbas_aadl.dir/DependInfo.cmake"
  "/root/repo/build/src/minix/CMakeFiles/mkbas_minix.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mkbas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
