file(REMOVE_RECURSE
  "CMakeFiles/bacnet_gateway.dir/bacnet_gateway.cpp.o"
  "CMakeFiles/bacnet_gateway.dir/bacnet_gateway.cpp.o.d"
  "bacnet_gateway"
  "bacnet_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacnet_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
