# Empty dependencies file for aadlc.
# This may be replaced when dependencies are built.
