file(REMOVE_RECURSE
  "CMakeFiles/aadlc.dir/aadlc.cpp.o"
  "CMakeFiles/aadlc.dir/aadlc.cpp.o.d"
  "aadlc"
  "aadlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aadlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
