# Empty dependencies file for fig2_scenario_trace.
# This may be replaced when dependencies are built.
