# Empty dependencies file for fig3_acm_example.
# This may be replaced when dependencies are built.
