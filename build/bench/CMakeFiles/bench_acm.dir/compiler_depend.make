# Empty compiler generated dependencies file for bench_acm.
# This may be replaced when dependencies are built.
