file(REMOVE_RECURSE
  "CMakeFiles/bench_acm.dir/bench_acm.cpp.o"
  "CMakeFiles/bench_acm.dir/bench_acm.cpp.o.d"
  "bench_acm"
  "bench_acm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
