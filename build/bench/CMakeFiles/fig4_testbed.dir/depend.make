# Empty dependencies file for fig4_testbed.
# This may be replaced when dependencies are built.
