file(REMOVE_RECURSE
  "CMakeFiles/fig4_testbed.dir/fig4_testbed.cpp.o"
  "CMakeFiles/fig4_testbed.dir/fig4_testbed.cpp.o.d"
  "fig4_testbed"
  "fig4_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
