# Empty dependencies file for bench_caps.
# This may be replaced when dependencies are built.
