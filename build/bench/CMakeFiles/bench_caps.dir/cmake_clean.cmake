file(REMOVE_RECURSE
  "CMakeFiles/bench_caps.dir/bench_caps.cpp.o"
  "CMakeFiles/bench_caps.dir/bench_caps.cpp.o.d"
  "bench_caps"
  "bench_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
