file(REMOVE_RECURSE
  "CMakeFiles/bsl3_containment.dir/bsl3_containment.cpp.o"
  "CMakeFiles/bsl3_containment.dir/bsl3_containment.cpp.o.d"
  "bsl3_containment"
  "bsl3_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsl3_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
