# Empty dependencies file for bsl3_containment.
# This may be replaced when dependencies are built.
