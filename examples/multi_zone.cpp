// Multi-zone building: the library's API scaled past the paper's one-room
// mockup. Four zones, each with its own sensor / controller / heater
// triple, plus one building-management process that adjusts setpoints —
// all isolated by an ACM generated from an AADL model that this program
// synthesises at run time.
//
// The demo also shows *containment*: a compromised zone controller tries
// to command a neighbouring zone's heater, and the kernel drops it.
//
//   $ ./multi_zone
#include <cstdio>
#include <sstream>
#include <vector>

#include "aadl/compile.hpp"
#include "aadl/parser.hpp"
#include "devices/devices.hpp"
#include "minix/kernel.hpp"
#include "physics/room.hpp"

namespace aadl = mkbas::aadl;
namespace devices = mkbas::devices;
namespace minix = mkbas::minix;
namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

using minix::Endpoint;
using minix::IpcResult;
using minix::Message;

namespace {

constexpr int kZones = 4;
constexpr int kMTypeSensor = 1;
constexpr int kMTypeCmd = 1;
constexpr int kMTypeSetpoint = 2;

std::string zone_model() {
  std::ostringstream os;
  os << "process ZoneSensor features sOut : out event data port T; "
        "end ZoneSensor;\n"
        "process ZoneCtl features sIn : in event data port T; "
        "hOut : out event data port Cmd; spIn : in event data port Sp; "
        "end ZoneCtl;\n"
        "process ZoneHeater features cIn : in event data port Cmd; "
        "end ZoneHeater;\n"
        "process Mgmt features ";
  for (int z = 0; z < kZones; ++z) os << "sp" << z << " : out event data port Sp; ";
  os << "end Mgmt;\n";
  for (int z = 0; z < kZones; ++z) {
    os << "process implementation ZoneSensor.z" << z
       << " properties MKBAS::ac_id => " << (100 + 3 * z)
       << "; end ZoneSensor.z" << z << ";\n";
    os << "process implementation ZoneCtl.z" << z
       << " properties MKBAS::ac_id => " << (101 + 3 * z)
       << "; end ZoneCtl.z" << z << ";\n";
    os << "process implementation ZoneHeater.z" << z
       << " properties MKBAS::ac_id => " << (102 + 3 * z)
       << "; end ZoneHeater.z" << z << ";\n";
  }
  os << "process implementation Mgmt.imp properties MKBAS::ac_id => 90; "
        "end Mgmt.imp;\n";
  os << "system Building end Building;\n"
        "system implementation Building.impl\n  subcomponents\n";
  for (int z = 0; z < kZones; ++z) {
    os << "    sensor" << z << " : process ZoneSensor.z" << z << ";\n"
       << "    ctl" << z << " : process ZoneCtl.z" << z << ";\n"
       << "    heater" << z << " : process ZoneHeater.z" << z << ";\n";
  }
  os << "    mgmt : process Mgmt.imp;\n  connections\n";
  for (int z = 0; z < kZones; ++z) {
    os << "    cs" << z << " : port sensor" << z << ".sOut -> ctl" << z
       << ".sIn { MKBAS::m_type => 1; };\n"
       << "    ch" << z << " : port ctl" << z << ".hOut -> heater" << z
       << ".cIn { MKBAS::m_type => 1; };\n"
       << "    cm" << z << " : port mgmt.sp" << z << " -> ctl" << z
       << ".spIn { MKBAS::m_type => 2; };\n";
  }
  os << "end Building.impl;\n";
  return os.str();
}

struct Zone {
  physics::RoomModel room{{.initial_temp_c = 16.0 }};
  devices::HeaterActuator heater{2500.0};
  devices::AlarmLed unused_alarm;
  std::unique_ptr<devices::PlantCoupler> coupler;
  std::unique_ptr<devices::Bmp180Sensor> sensor;
  double setpoint = 21.0;
};

}  // namespace

int main() {
  // 1. Model -> policy.
  aadl::Parser parser(zone_model());
  const aadl::Model model = parser.parse();
  if (!parser.ok()) {
    std::printf("model error: %s\n", parser.diagnostics()[0].message.c_str());
    return 1;
  }
  std::vector<aadl::Diagnostic> diags;
  const auto sys = aadl::compile(model, "Building.impl", diags);
  if (!sys.has_value()) {
    std::printf("compile error: %s\n", diags[0].message.c_str());
    return 1;
  }
  std::printf("compiled %zu instances, %zu connections; ACM cells: %zu\n\n",
              sys->instances.size(), sys->connections.size(),
              aadl::generate_acm(*sys).cell_count());

  // 2. Boot the kernel with the generated matrix.
  sim::Machine machine(3);
  minix::MinixKernel kernel(machine, aadl::generate_acm(*sys));

  // 3. Plant: one room per zone, different outdoor exposure per facade.
  std::vector<Zone> zones(kZones);
  for (int z = 0; z < kZones; ++z) {
    zones[z].room.set_outdoor(physics::OutdoorSpec::constant(6.0 + 2.0 * z));
    zones[z].coupler = std::make_unique<devices::PlantCoupler>(
        machine, zones[z].room, zones[z].heater, zones[z].unused_alarm);
    zones[z].sensor = std::make_unique<devices::Bmp180Sensor>(
        zones[z].room, machine.rng());
  }

  // 4. Processes, loaded with the ac_ids from the model. A compromised
  //    controller in zone 0 also tries to command zone 1's heater.
  std::vector<int> denied_cross_zone(1, 0);
  for (int z = 0; z < kZones; ++z) {
    Zone& zone = zones[z];
    const std::string sname = "sensor" + std::to_string(z);
    const std::string cname = "ctl" + std::to_string(z);
    const std::string hname = "heater" + std::to_string(z);
    kernel.srv_fork2(hname, sys->ac_of(hname), [&kernel, &zone, &machine] {
      for (;;) {
        Message m;
        if (kernel.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
        if (m.m_type == kMTypeCmd) {
          zone.heater.set_on(m.get_i32(0) != 0, machine.now());
        }
      }
    }, 5);
    kernel.srv_fork2(cname, sys->ac_of(cname),
                     [&kernel, &zone, &machine, z, hname, &denied_cross_zone] {
      const Endpoint heater_ep = kernel.wait_lookup(hname);
      const Endpoint other =
          z == 0 ? kernel.wait_lookup("heater1") : Endpoint::none();
      for (;;) {
        Message m;
        if (kernel.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
        if (m.m_type == kMTypeSensor) {
          const double t = m.get_f64(0);
          Message cmd;
          cmd.m_type = kMTypeCmd;
          cmd.put_i32(0, t < zone.setpoint ? 1 : 0);
          kernel.ipc_send(heater_ep, cmd);
          if (z == 0 && other.valid()) {
            // Containment demo: cross-zone command must be denied.
            Message rogue;
            rogue.m_type = kMTypeCmd;
            rogue.put_i32(0, 1);
            if (kernel.ipc_sendnb(other, rogue) == IpcResult::kNotAllowed) {
              ++denied_cross_zone[0];
            }
          }
        } else if (m.m_type == kMTypeSetpoint) {
          zone.setpoint = m.get_f64(0);
        }
      }
    }, 6);
    kernel.srv_fork2(sname, sys->ac_of(sname),
                     [&kernel, &zone, &machine, cname] {
      const Endpoint ctl_ep = kernel.wait_lookup(cname);
      for (;;) {
        Message m;
        m.m_type = kMTypeSensor;
        m.put_f64(0, zone.sensor->read_temperature_c());
        kernel.ipc_sendnb(ctl_ep, m);
        machine.sleep_for(sim::sec(2));
      }
    }, 5);
  }
  kernel.srv_fork2("mgmt", sys->ac_of("mgmt"), [&kernel, &machine] {
    // Night setback at t=20min: every zone to 17C; morning at t=40min.
    auto broadcast = [&kernel](double sp) {
      for (int z = 0; z < kZones; ++z) {
        const Endpoint ctl = kernel.lookup("ctl" + std::to_string(z));
        if (!ctl.valid()) continue;
        Message m;
        m.m_type = kMTypeSetpoint;
        m.put_f64(0, sp);
        kernel.ipc_sendnb(ctl, m);
      }
    };
    machine.sleep_for(sim::minutes(20));
    broadcast(17.0);
    machine.sleep_for(sim::minutes(20));
    broadcast(23.0);
    for (;;) machine.sleep_for(sim::minutes(10));
  }, 7);

  // 5. Run one simulated hour and report.
  machine.run_until(sim::minutes(60));
  std::printf("zone  t=15min  t=35min (setback 17C)  t=60min (day 23C)\n");
  for (int z = 0; z < kZones; ++z) {
    double at15 = 0, at35 = 0, at60 = 0;
    for (const auto& s : zones[z].coupler->history()) {
      if (s.time <= sim::minutes(15)) at15 = s.true_temp_c;
      if (s.time <= sim::minutes(35)) at35 = s.true_temp_c;
      at60 = s.true_temp_c;
    }
    std::printf("  %d   %6.2fC   %6.2fC               %6.2fC\n", z, at15,
                at35, at60);
  }
  std::printf(
      "\ncross-zone heater commands denied by the ACM: %d\n"
      "ACM denials in total: %zu (zone isolation enforced by the kernel)\n",
      denied_cross_zone[0], machine.trace().count_tag("acm.deny"));
  return 0;
}
