// aadlc — the AADL source-to-source compiler of §IV as a command-line
// tool: parses a mini-AADL model and emits the ACM kernel table (C), a
// CAmkES assembly, or a CapDL capability-distribution description.
//
//   $ ./aadlc <model.aadl> <System.impl> [--acm|--camkes|--capdl]
//   $ ./aadlc --builtin --acm          # use the paper's Fig. 2 scenario
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "aadl/compile.hpp"
#include "aadl/parser.hpp"
#include "aadl/scenario_model.hpp"

namespace aadl = mkbas::aadl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aadlc <model.aadl> <System.impl> "
               "[--acm|--camkes|--capdl]\n"
               "       aadlc --builtin [--acm|--camkes|--capdl]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string source, system_name = "TempControl.impl", mode = "--acm";
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--builtin") == 0) {
    source = aadl::temp_control_aadl();
    ++arg;
  } else if (arg + 1 < argc) {
    std::ifstream in(argv[arg]);
    if (!in) {
      std::fprintf(stderr, "aadlc: cannot open %s\n", argv[arg]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    ++arg;
    system_name = argv[arg++];
  } else {
    return usage();
  }
  if (arg < argc) mode = argv[arg];

  aadl::Parser parser(source);
  const aadl::Model model = parser.parse();
  if (!parser.ok()) {
    for (const auto& d : parser.diagnostics()) {
      std::fprintf(stderr, "aadlc: line %d: %s\n", d.line, d.message.c_str());
    }
    return 1;
  }
  std::vector<aadl::Diagnostic> diags;
  const auto sys = aadl::compile(model, system_name, diags);
  if (!sys.has_value()) {
    for (const auto& d : diags) {
      std::fprintf(stderr, "aadlc: line %d: %s\n", d.line, d.message.c_str());
    }
    return 1;
  }
  for (const auto& w : aadl::lint(model, system_name)) {
    std::fprintf(stderr, "aadlc: line %d: %s\n", w.line, w.message.c_str());
  }

  if (mode == "--acm") {
    std::fputs(aadl::emit_acm_c_source(*sys).c_str(), stdout);
  } else if (mode == "--camkes") {
    std::fputs(aadl::emit_camkes_assembly(*sys).c_str(), stdout);
  } else if (mode == "--capdl") {
    std::fputs(aadl::emit_capdl(*sys).c_str(), stdout);
  } else {
    return usage();
  }
  return 0;
}
