// BACnet gateway: the controller joined to a simulated SCADA segment, as
// deployed BAS are (§I). An operator workstation writes the setpoint via
// BACnet WriteProperty; the gateway forwards it to the controller's web
// interface. Without protection, anyone on the segment can do the same —
// with the Fig. 1 secure proxy in front of the gateway, only the keyed
// operator can.
//
//   $ ./bacnet_gateway
#include <cstdio>

#include "bas/minix_scenario.hpp"
#include "net/bacnet.hpp"

namespace bas = mkbas::bas;
namespace net = mkbas::net;
namespace sim = mkbas::sim;

namespace {

net::BacnetMsg setpoint_write(double value) {
  net::BacnetMsg msg;
  msg.service = net::BacnetMsg::Service::kWriteProperty;
  msg.src_device = 500;  // claimed; nothing verifies it
  msg.dst_device = 77;
  msg.property = "zone.setpoint";
  msg.value = value;
  return msg;
}

double final_setpoint(const bas::MinixScenario& sc) {
  double sp = 22.0;
  for (const auto& ev :
       const_cast<bas::MinixScenario&>(sc).machine().trace().events()) {
    if (ev.what() == "ctl.setpoint") sp = ev.value;
  }
  return sp;
}

/// The gateway's property wiring: BACnet writes to "zone.setpoint" become
/// HTTP POSTs against the controller's web interface; reads of
/// "zone.temp" serve the live room temperature.
class GatewayHandler : public net::PropertyHandler {
 public:
  GatewayHandler(sim::Machine& machine, bas::MinixScenario& scenario)
      : machine_(machine), scenario_(scenario) {}

  bool write(net::BacnetDevice&, const std::string& prop,
             double v) override {
    if (prop == "zone.setpoint") {
      char body[48];
      std::snprintf(body, sizeof body, "value=%.1f", v);
      scenario_.http().submit(machine_.now(), {"POST", "/setpoint", body});
    }
    return true;  // plain gateway: never vetoes (BACnet's weakness)
  }

  bool read(net::BacnetDevice&, const std::string& prop,
            double* value) override {
    if (prop != "zone.temp") return false;
    *value = scenario_.plant()->room.temperature_c();
    return true;
  }

 private:
  sim::Machine& machine_;
  bas::MinixScenario& scenario_;
};

}  // namespace

int main() {
  constexpr std::uint64_t kOperatorKey = 0x0B5E55ED;

  for (const bool use_proxy : {false, true}) {
    sim::Machine machine(11);
    bas::MinixScenario scenario(machine);
    net::BacnetNetwork segment(machine);

    net::BacnetDevice gateway(77, "bas-gateway");
    gateway.set_property("zone.setpoint", 22.0);
    GatewayHandler handler(machine, scenario);
    gateway.set_handler(&handler);
    net::SecureProxy proxy(gateway, kOperatorKey);
    if (use_proxy) {
      segment.attach(proxy);
    } else {
      segment.attach(gateway);
    }

    // t=5min: the legitimate operator sets 24C (sealed when proxied).
    machine.at(sim::minutes(5), [&] {
      auto msg = setpoint_write(24.0);
      if (use_proxy) msg = net::SecureProxy::seal(msg, kOperatorKey, 1);
      segment.send(msg);
    });
    // t=10min: an attacker on the SCADA segment tries to set 29C.
    machine.at(sim::minutes(10), [&] {
      segment.send(setpoint_write(29.0));  // no key, no sequence
    });

    machine.run_until(sim::minutes(20));

    std::printf("%s:\n", use_proxy ? "WITH secure proxy (Fig. 1)"
                                   : "bare BACnet gateway");
    std::printf("  controller setpoint after the run : %.1f C %s\n",
                final_setpoint(scenario),
                final_setpoint(scenario) == 29.0
                    ? "(ATTACKER-CONTROLLED)"
                    : "(operator's value)");
    if (use_proxy) {
      std::printf("  proxy rejections: %zu bad tag, %zu replay\n",
                  proxy.rejected_bad_tag(), proxy.rejected_replay());
    }
    std::printf("  room temperature at end           : %.2f C\n\n",
                scenario.plant()->room.temperature_c());
  }
  std::printf(
      "The kernel-level protections (ACM / capabilities) guard the\n"
      "controller from compromised *local* processes; the secure proxy\n"
      "extends the perimeter to the legacy SCADA network — both layers\n"
      "of the paper's Fig. 1 framework.\n");
  return 0;
}
