// experiment_runner — run any single experiment from the command line.
//
//   $ ./experiment_runner benign <minix|sel4|linux>
//   $ ./experiment_runner attack <minix|sel4|linux>
//         <spoof-sensor|spoof-actuator|kill|fork-bomb|brute-force|flood>
//         [root] [quota] [acl]
//   $ ./experiment_runner matrix
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"

namespace core = mkbas::core;

using mkbas::attack::AttackKind;
using mkbas::attack::Privilege;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: experiment_runner benign <minix|sel4|linux>\n"
      "       experiment_runner attack <minix|sel4|linux> <attack> "
      "[root] [quota] [acl]\n"
      "       experiment_runner matrix [--csv|--md]\n"
      "attacks: spoof-sensor spoof-actuator kill fork-bomb brute-force "
      "flood\n");
  return 2;
}

bool parse_platform(const std::string& s, core::Platform* out) {
  if (s == "minix") {
    *out = core::Platform::kMinix;
  } else if (s == "sel4") {
    *out = core::Platform::kSel4;
  } else if (s == "linux") {
    *out = core::Platform::kLinux;
  } else {
    return false;
  }
  return true;
}

bool parse_attack(const std::string& s, AttackKind* out) {
  if (s == "spoof-sensor") {
    *out = AttackKind::kSpoofSensor;
  } else if (s == "spoof-actuator") {
    *out = AttackKind::kSpoofActuator;
  } else if (s == "kill") {
    *out = AttackKind::kKillControl;
  } else if (s == "fork-bomb") {
    *out = AttackKind::kForkBomb;
  } else if (s == "brute-force") {
    *out = AttackKind::kCapBruteForce;
  } else if (s == "flood") {
    *out = AttackKind::kIpcFlood;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];

  if (mode == "matrix") {
    const auto rows = core::run_attack_matrix();
    const std::string fmt = argc > 2 ? argv[2] : "";
    if (fmt == "--csv") {
      std::fputs(core::attack_rows_to_csv(rows).c_str(), stdout);
    } else if (fmt == "--md") {
      std::fputs(core::attack_rows_to_markdown(rows).c_str(), stdout);
    } else {
      std::fputs(core::format_attack_table(rows).c_str(), stdout);
    }
    return 0;
  }

  if (mode == "benign") {
    if (argc < 3) return usage();
    core::Platform platform;
    if (!parse_platform(argv[2], &platform)) return usage();
    const auto run = core::run_benign(platform);
    std::printf("platform            : %s\n", core::to_string(platform));
    std::printf("plant samples       : %zu\n", run.history.size());
    std::printf("final temperature   : %.2f C\n",
                run.history.back().true_temp_c);
    std::printf("context switches    : %llu\n",
                static_cast<unsigned long long>(run.context_switches));
    std::printf("kernel entries      : %llu\n",
                static_cast<unsigned long long>(run.kernel_entries));
    std::printf("alarm property      : %s\n",
                run.safety.alarm_violation ? "VIOLATED" : "held");
    std::printf("control alive       : %s\n",
                run.safety.control_alive ? "yes" : "NO");
    return 0;
  }

  if (mode == "attack") {
    if (argc < 4) return usage();
    core::Platform platform;
    AttackKind kind;
    if (!parse_platform(argv[2], &platform) ||
        !parse_attack(argv[3], &kind)) {
      return usage();
    }
    Privilege priv = Privilege::kCodeExec;
    core::RunOptions opts;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "root") == 0) priv = Privilege::kRoot;
      if (std::strcmp(argv[i], "quota") == 0) opts.minix_quotas = true;
      if (std::strcmp(argv[i], "acl") == 0) {
        opts.linux_separate_accounts = true;
      }
    }
    const auto row = core::run_attack(platform, kind, priv, opts);
    std::printf("platform   : %s\n", row.platform_label.c_str());
    std::printf("attack     : %s (%s)\n", to_string(row.kind),
                to_string(row.privilege));
    std::printf("primitive  : %s\n",
                row.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked");
    std::printf("detail     : %s\n", row.outcome.detail.c_str());
    std::printf("physical   : %s\n", row.safety.summary().c_str());
    return row.safety.physically_compromised() ? 1 : 0;
  }
  return usage();
}
