// experiment_runner — run any single experiment from the command line.
//
// Every subcommand shares one flag grammar (core/cli.hpp):
//   --platform <minix|sel4|linux>  --scenario <temp|uds|bsl3>
//   --seed N  --zones N  --jobs N  --out FILE
//   --metrics-out FILE  --trace-out FILE
//   --trace-spans FILE  --audit-out FILE  --critical-out FILE
//   --series-out FILE  --health-out FILE  --flight-out FILE
//   --profile-out FILE  --profile-trace FILE   (campaign pool profile)
//
//   $ ./experiment_runner benign --platform minix
//   $ ./experiment_runner attack --platform linux --attack kill --root
//   $ ./experiment_runner matrix [--csv|--md]
//   $ ./experiment_runner fault --platform sel4 --seed 7 [--no-probe]
//   $ ./experiment_runner fabric --zones 16 --attack spoof-write
//   $ ./experiment_runner campaign <matrix|sweep|fault|fabric>
//         [--jobs N] [--out file.json] [--zones N]
//
// Legacy positional spellings ("benign minix", "attack linux kill root",
// "fault minix seed 7 no-probe") keep working.
//
// campaign fans the cells across N worker threads and prints the same
// tables as the sequential modes; the aggregate summary JSON (per-cell
// verdicts, trace hashes, merged metrics — byte-identical for every
// --jobs value) goes to --out, or to stdout as the last line.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/cli.hpp"
#include "core/report.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace core = mkbas::core;

using mkbas::attack::AttackKind;
using mkbas::attack::Privilege;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: experiment_runner benign --platform <minix|sel4|linux>\n"
      "       experiment_runner attack --platform P --attack <kind> "
      "[--root] [--quota] [--acl]\n"
      "       experiment_runner matrix [--csv|--md]\n"
      "       experiment_runner fault --platform P [--seed N] [--no-probe]\n"
      "       experiment_runner fabric [--zones N] [--seed N] "
      "[--attack <none|spoof-write|replay|flood>]\n"
      "                                [--topology <flat|tree|campus>] "
      "[--floors N] [--buildings N]\n"
      "                                [--sync <lookahead|epoch>] [--jobs N] "
      "[--lite]\n"
      "       experiment_runner campaign <matrix|sweep|fault|fabric> "
      "[--jobs N] [--out file.json]\n"
      "       experiment_runner campaign sweep --platform P [--seeds N]\n"
      "shared: --scenario <temp|uds|bsl3> --seed N --zones N --jobs N "
      "--out F --metrics-out F --trace-out F\n"
      "        --trace-spans F --audit-out F --critical-out F\n"
      "        --series-out F --health-out F --flight-out F\n"
      "        --profile-out F --profile-trace F (campaign only)\n"
      "attacks: spoof-sensor spoof-actuator kill fork-bomb brute-force "
      "flood\n");
  return 2;
}

void write_file_warn(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text << "\n";
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

/// Build the RunOptions::observe hook that writes the --metrics-out,
/// --trace-out, --trace-spans, --audit-out and --critical-out files.
/// Returns an empty function when none was given. The critical-path
/// export decomposes the single-machine control loop: sensor.sample
/// roots, act.apply leaves.
std::function<void(mkbas::sim::Machine&)> make_observer(
    const core::CliArgs& a) {
  if (a.metrics_out.empty() && a.trace_out.empty() && a.spans_out.empty() &&
      a.audit_out.empty() && a.critical_out.empty() &&
      a.series_out.empty() && a.health_out.empty() &&
      a.flight_out.empty()) {
    return {};
  }
  return [a](mkbas::sim::Machine& m) {
    // Close trailing detector rate windows so the exports below (and
    // the audit journal) carry any end-of-run anomalies.
    m.health().flush(m.now());
    if (!a.metrics_out.empty()) {
      write_file_warn(a.metrics_out, core::metrics_to_json(m));
    }
    if (!a.trace_out.empty()) {
      std::ofstream f(a.trace_out);
      mkbas::obs::write_chrome_trace(f, m.trace());
      if (!f) {
        std::fprintf(stderr, "warning: could not write %s\n",
                     a.trace_out.c_str());
      }
    }
    if (!a.spans_out.empty()) write_file_warn(a.spans_out, m.spans().to_json());
    if (!a.audit_out.empty()) write_file_warn(a.audit_out, m.audit().to_json());
    if (!a.critical_out.empty()) {
      write_file_warn(a.critical_out,
                      mkbas::obs::critical_path_json(
                          m.spans(), "sensor.sample", "act.apply"));
    }
    if (!a.series_out.empty()) {
      write_file_warn(a.series_out, m.series().to_json());
    }
    if (!a.health_out.empty()) {
      write_file_warn(a.health_out, m.health().to_json());
    }
    if (!a.flight_out.empty()) {
      write_file_warn(a.flight_out, m.flight().to_json());
    }
  };
}

bool write_or_print(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::printf("%s\n", text.c_str());
    return true;
  }
  std::ofstream f(path);
  f << text << "\n";
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Deterministic one-line JSON for a fabric run (what the CI determinism
/// gate diffs across --jobs / reruns). Keys emitted in sorted order, like
/// every other JSON export in the repo.
std::string fabric_summary_json(const core::FabricRunResult& r) {
  std::string s = "{\"attack\":\"" + std::string(core::to_string(r.attack)) +
                  "\",\"audit_hash\":\"" +
                  core::hex64(core::fnv1a(r.audit_json)) + "\",\"cov\":" +
                  std::to_string(r.cov_count) + ",\"delivered\":" +
                  std::to_string(r.delivered) + ",\"drop_loss\":" +
                  std::to_string(r.drop_loss) + ",\"drop_overflow\":" +
                  std::to_string(r.drop_overflow) + ",\"drop_partition\":" +
                  std::to_string(r.drop_partition) + ",\"flight_hash\":\"" +
                  core::hex64(core::fnv1a(r.flight_json)) +
                  "\",\"health_events\":" + std::to_string(r.health_events) +
                  ",\"health_hash\":\"" +
                  core::hex64(core::fnv1a(r.health_json)) +
                  "\",\"metrics_hash\":\"" +
                  core::hex64(core::fnv1a(r.metrics_json)) +
                  "\",\"nodes\":" + std::to_string(r.nodes) +
                  ",\"schema_version\":" +
                  std::to_string(mkbas::obs::kSchemaVersion) +
                  ",\"series_hash\":\"" +
                  core::hex64(core::fnv1a(r.series_json)) +
                  "\",\"spans_hash\":\"" +
                  core::hex64(core::fnv1a(r.spans_json)) +
                  "\",\"topology\":\"" + r.topology +
                  "\",\"trace_hash\":\"" + core::hex64(r.trace_hash) +
                  "\",\"zones\":" + std::to_string(r.zones) + "}";
  return s;
}

core::RunOptions run_options_from(const core::CliArgs& a) {
  core::RunOptions opts;
  opts.scenario_variant = a.scenario;
  if (a.has_seed) opts.seed = a.seed;
  opts.minix_quotas = a.quota;
  opts.linux_separate_accounts = a.acl;
  opts.observe = make_observer(a);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  core::CliArgs args = core::parse_cli(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "error: %s\n", args.error.c_str());
    return usage();
  }
  if (args.mode.empty()) return usage();

  if (args.mode == "campaign") {
    if (args.pos.empty()) return usage();
    const std::string what = args.pos[0];
    std::vector<core::CampaignCell> cells;
    if (what == "matrix") {
      cells = core::attack_matrix_cells({});
    } else if (what == "sweep") {
      if (!args.has_platform) return usage();
      cells = core::seed_sweep_cells(args.platform, {}, 1, args.seeds);
    } else if (what == "fault") {
      core::RunOptions opts;
      opts.settle = mkbas::sim::minutes(1);
      opts.post = mkbas::sim::minutes(6);
      opts.seed = 42;
      opts.scenario.room.initial_temp_c =
          opts.scenario.control.initial_setpoint_c;
      cells = core::fault_campaign_cells(
          mkbas::fault::reference_sensor_crash_plan(), opts,
          mkbas::sim::sec(70));
    } else if (what == "fabric") {
      core::FabricOptions base;
      if (args.has_seed) base.seed = args.seed;
      cells = core::fabric_matrix_cells(args.zones, base);
    } else {
      return usage();
    }

    const auto result = core::run_campaign(cells, args.jobs);
    std::printf("campaign: %zu cells, --jobs %d, %.2f s wall, %llu steals\n",
                result.cells.size(), result.jobs, result.wall_seconds,
                static_cast<unsigned long long>(result.steals));
    if (what == "matrix") {
      std::fputs(core::format_attack_table(core::attack_rows(result)).c_str(),
                 stdout);
    } else if (what == "fault") {
      std::fputs(core::format_fault_table(core::fault_rows(result)).c_str(),
                 stdout);
    } else if (what == "fabric") {
      for (const auto& run : core::fabric_rows(result)) {
        std::fputs(core::format_fabric_table(run).c_str(), stdout);
      }
    } else {
      for (const auto& c : result.cells) {
        std::printf("%-28s %zu samples, alarm %s\n", c.name.c_str(),
                    c.benign.history.size(),
                    c.benign.safety.alarm_violation ? "VIOLATED" : "held");
      }
    }
    // Merged span store / audit journal, folded in cell order — the same
    // bytes for every --jobs value (the CI determinism gate diffs them).
    if (!args.spans_out.empty()) {
      write_file_warn(args.spans_out, result.merged_spans_json);
    }
    if (!args.audit_out.empty()) {
      write_file_warn(args.audit_out, result.merged_audit_json);
    }
    if (!args.series_out.empty()) {
      write_file_warn(args.series_out, result.merged_series_json);
    }
    if (!args.health_out.empty()) {
      write_file_warn(args.health_out, result.merged_health_json);
    }
    if (!args.flight_out.empty()) {
      write_file_warn(args.flight_out, result.merged_flight_json);
    }
    // Pool profile: host wall-time, --jobs-dependent by nature — kept
    // out of the summary and only written when explicitly asked for.
    if (!args.profile_out.empty()) {
      write_file_warn(args.profile_out, result.profile_json());
    }
    if (!args.profile_trace.empty()) {
      write_file_warn(args.profile_trace, result.profile_trace_json());
    }
    return write_or_print(args.out, result.summary_json()) ? 0 : 1;
  }

  if (args.mode == "fabric") {
    core::FabricOptions opts;
    opts.zones = args.zones;
    if (args.has_seed) opts.seed = args.seed;
    opts.topology = args.topology;
    opts.floors = args.floors;
    opts.buildings = args.buildings;
    opts.sync = args.sync;
    opts.jobs = args.jobs;
    opts.lite_zones = args.lite;
    if (args.has_attack &&
        !core::parse_fabric_attack(args.attack, &opts.attack)) {
      std::fprintf(stderr, "error: unknown fabric attack: %s\n",
                   args.attack.c_str());
      return usage();
    }
    const auto res = core::run_fabric(opts);
    std::fputs(core::format_fabric_table(res).c_str(), stdout);
    if (!args.metrics_out.empty()) {
      write_file_warn(args.metrics_out, res.metrics_json);
    }
    if (!args.spans_out.empty()) {
      write_file_warn(args.spans_out, res.spans_json);
    }
    if (!args.audit_out.empty()) {
      write_file_warn(args.audit_out, res.audit_json);
    }
    if (!args.critical_out.empty()) {
      write_file_warn(args.critical_out, res.critical_path_json);
    }
    if (!args.series_out.empty()) {
      write_file_warn(args.series_out, res.series_json);
    }
    if (!args.health_out.empty()) {
      write_file_warn(args.health_out, res.health_json);
    }
    if (!args.flight_out.empty()) {
      write_file_warn(args.flight_out, res.flight_json);
    }
    return write_or_print(args.out, fabric_summary_json(res)) ? 0 : 1;
  }

  if (args.mode == "matrix") {
    const auto rows = core::run_attack_matrix();
    if (args.format == "csv") {
      std::fputs(core::attack_rows_to_csv(rows).c_str(), stdout);
    } else if (args.format == "md") {
      std::fputs(core::attack_rows_to_markdown(rows).c_str(), stdout);
    } else {
      std::fputs(core::format_attack_table(rows).c_str(), stdout);
    }
    return 0;
  }

  if (args.mode == "benign") {
    if (!args.has_platform) return usage();
    const auto run = core::run_benign(args.platform, run_options_from(args));
    std::printf("platform            : %s\n", core::to_string(args.platform));
    std::printf("plant samples       : %zu\n", run.history.size());
    std::printf("final temperature   : %.2f C\n",
                run.history.back().true_temp_c);
    std::printf("context switches    : %llu\n",
                static_cast<unsigned long long>(run.context_switches));
    std::printf("kernel entries      : %llu\n",
                static_cast<unsigned long long>(run.kernel_entries));
    std::printf("alarm property      : %s\n",
                run.safety.alarm_violation ? "VIOLATED" : "held");
    std::printf("control alive       : %s\n",
                run.safety.control_alive ? "yes" : "NO");
    return 0;
  }

  if (args.mode == "fault") {
    // The reference fault campaign (crash the sensor driver at t=30s,
    // the web interface at t=40s) against one platform, with a
    // post-restart sensor-spoof probe of the reincarnated web process.
    if (!args.has_platform) return usage();
    core::RunOptions opts = run_options_from(args);
    opts.settle = mkbas::sim::minutes(1);
    opts.post = mkbas::sim::minutes(6);
    opts.scenario.room.initial_temp_c =
        opts.scenario.control.initial_setpoint_c;
    const mkbas::sim::Time probe_at =
        args.no_probe ? -1 : mkbas::sim::sec(70);
    const auto plan = mkbas::fault::reference_sensor_crash_plan();
    std::printf("plan:\n%s", plan.describe().c_str());
    const auto res = core::run_fault(args.platform, plan, opts, probe_at);
    std::printf("platform       : %s\n", res.platform_label.c_str());
    std::printf("faults injected: %llu\n",
                static_cast<unsigned long long>(res.faults_injected));
    std::printf("loop recovered : %s\n", res.loop_recovered ? "yes" : "NO");
    if (res.mttr >= 0) {
      std::printf("mttr           : %.3f s (virtual)\n",
                  mkbas::sim::to_seconds(res.mttr));
    } else {
      std::printf("mttr           : inf (never recovered)\n");
    }
    std::printf("restarts       : %d\n", res.restarts);
    std::printf("excursion      : %.2f C after the fault\n",
                res.max_excursion_after_fault_c);
    if (res.web_spoof.attempted) {
      std::printf("spoof probe    : %s (%d attempts)\n",
                  res.web_spoof.primitive_succeeded ? "SPOOFED" : "blocked",
                  res.web_spoof.attempts);
    } else {
      std::printf("spoof probe    : not reached (web interface dead)\n");
    }
    std::printf("physical       : %s\n", res.safety.summary().c_str());
    return res.loop_recovered ? 0 : 1;
  }

  if (args.mode == "attack") {
    AttackKind kind;
    bool have_kind = false;
    if (args.has_attack) {
      have_kind = core::parse_attack_kind(args.attack, &kind);
    } else {
      // Legacy: "attack <platform> <kind> [root] ..." — find the kind
      // among the positionals (the platform name was consumed above).
      for (const std::string& p : args.pos) {
        if (core::parse_attack_kind(p, &kind)) {
          have_kind = true;
          break;
        }
      }
    }
    if (!args.has_platform || !have_kind) return usage();
    const Privilege priv =
        args.root ? Privilege::kRoot : Privilege::kCodeExec;
    const auto row =
        core::run_attack(args.platform, kind, priv, run_options_from(args));
    std::printf("platform   : %s\n", row.platform_label.c_str());
    std::printf("attack     : %s (%s)\n", to_string(row.kind),
                to_string(row.privilege));
    std::printf("primitive  : %s\n",
                row.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked");
    std::printf("detail     : %s\n", row.outcome.detail.c_str());
    std::printf("physical   : %s\n", row.safety.summary().c_str());
    return row.safety.physically_compromised() ? 1 : 0;
  }
  return usage();
}
