// experiment_runner — run any single experiment from the command line,
// or serve them over HTTP.
//
// Every subcommand is a thin adapter: flags parse into a canonical
// core::ExperimentRequest, core::run_request() executes it, and this
// file only decides where the bytes go (stdout, --out files, or the
// daemon's result cache). Identical requests produce byte-identical
// artifact bundles whether they arrive via flags or POST /run.
//
//   $ ./experiment_runner benign --platform minix
//   $ ./experiment_runner attack --platform linux --attack kill --root
//   $ ./experiment_runner matrix [--csv|--md]
//   $ ./experiment_runner fault --platform sel4 --seed 7 [--no-probe]
//   $ ./experiment_runner fabric --zones 16 --attack spoof-write
//   $ ./experiment_runner campaign <matrix|sweep|fault|fabric>
//         [--jobs N] [--out file.json] [--zones N]
//   $ ./experiment_runner serve [--port N] [--jobs N] [--batch N]
//         [--slow-ms N] [--store-cap N] [--no-trace]
//
// Flags only: the legacy positional spellings ("benign minix",
// "attack linux kill root") were removed after their deprecation cycle.
#include <cstdio>
#include <fstream>
#include <string>

#include "campaign/run_request.hpp"
#include "core/cli.hpp"
#include "serve/daemon.hpp"

namespace core = mkbas::core;
namespace serve = mkbas::serve;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: experiment_runner benign --platform <minix|sel4|linux>\n"
      "       experiment_runner attack --platform P --attack <kind> "
      "[--root] [--quota] [--acl]\n"
      "       experiment_runner matrix [--csv|--md]\n"
      "       experiment_runner fault --platform P [--seed N] [--no-probe]\n"
      "       experiment_runner fabric [--zones N] [--seed N] "
      "[--attack <none|spoof-write|replay|flood>]\n"
      "                                [--topology <flat|tree|campus>] "
      "[--floors N] [--buildings N]\n"
      "                                [--sync <lookahead|epoch>] [--jobs N] "
      "[--lite]\n"
      "       experiment_runner campaign <matrix|sweep|fault|fabric> "
      "[--jobs N] [--out file.json]\n"
      "       experiment_runner campaign sweep --platform P [--seeds N]\n"
      "       experiment_runner serve [--port N] [--jobs N] [--batch N]\n"
      "                               [--slow-ms N] [--store-cap N] "
      "[--no-trace]\n"
      "shared: --scenario <temp|uds|bsl3> --seed N --zones N --jobs N "
      "--out F --metrics-out F --trace-out F\n"
      "        --trace-spans F --audit-out F --critical-out F\n"
      "        --series-out F --health-out F --flight-out F "
      "--metrics-prom-out F\n"
      "        --profile-out F --profile-trace F (campaign only)\n"
      "attacks: spoof-sensor spoof-actuator kill fork-bomb brute-force "
      "flood\n");
  return 2;
}

void write_file_warn(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text << "\n";
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

bool write_or_print(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::printf("%s\n", text.c_str());
    return true;
  }
  std::ofstream f(path);
  f << text << "\n";
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  return true;
}

int run_serve(const core::CliArgs& args) {
  serve::DaemonOptions opts;
  opts.port = args.port;
  opts.jobs = args.jobs;
  opts.batch = args.batch;
  opts.tracing = !args.no_trace;
  opts.slow_ms = args.slow_ms;
  opts.store_cap =
      args.store_cap > 0 ? static_cast<std::size_t>(args.store_cap) : 0;
  serve::Daemon daemon(opts);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%d (--jobs %d, --batch %d%s)\n",
              daemon.port(), opts.jobs, opts.batch,
              opts.tracing ? "" : ", tracing off");
  std::fflush(stdout);
  daemon.wait();
  std::printf("daemon stopped\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::CliArgs args = core::parse_cli(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "error: %s\n", args.error.c_str());
    return usage();
  }
  if (args.mode.empty()) return usage();

  if (args.mode == "serve") return run_serve(args);

  core::ExperimentRequest req;
  std::string err;
  if (!core::request_from_cli(args, &req, &err)) {
    if (!err.empty()) std::fprintf(stderr, "error: %s\n", err.c_str());
    return usage();
  }

  core::ExperimentResponse resp = core::run_request(req);
  std::fputs(resp.table.c_str(), stdout);

  // Artifact placement: each requested kind goes to its --*-out path.
  // The summary prints to stdout when --out was not given — matrix and
  // benign historically printed only their tables, so the summary stays
  // file-only there unless asked for explicitly.
  for (int k = 0; k < core::kArtifactKinds; ++k) {
    const auto kind = static_cast<core::ArtifactKind>(k);
    const std::string& path = req.artifacts[kind];
    const char* name = core::to_string(kind);
    const auto it = resp.artifacts.find(name);
    const auto vit = resp.volatile_artifacts.find(name);
    const std::string* text = it != resp.artifacts.end() ? &it->second
                              : vit != resp.volatile_artifacts.end()
                                  ? &vit->second
                                  : nullptr;
    if (kind == core::ArtifactKind::kSummary) {
      const bool print_summary =
          req.mode != core::RequestMode::kBenign &&
          req.mode != core::RequestMode::kAttack &&
          req.mode != core::RequestMode::kMatrix &&
          req.mode != core::RequestMode::kFault;
      if (text != nullptr && (print_summary || !path.empty())) {
        if (!write_or_print(path, *text)) resp.exit_code = 1;
      }
      continue;
    }
    if (path.empty()) continue;
    if (text == nullptr) {
      std::fprintf(stderr, "warning: %s produces no %s artifact (%s)\n",
                   core::to_string(req.mode), name, path.c_str());
      continue;
    }
    write_file_warn(path, *text);
  }
  return resp.exit_code;
}
