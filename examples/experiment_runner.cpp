// experiment_runner — run any single experiment from the command line.
//
//   $ ./experiment_runner benign <minix|sel4|linux>
//   $ ./experiment_runner attack <minix|sel4|linux>
//         <spoof-sensor|spoof-actuator|kill|fork-bomb|brute-force|flood>
//         [root] [quota] [acl]
//   $ ./experiment_runner matrix
//   $ ./experiment_runner fault <minix|sel4|linux> [seed N] [no-probe]
//   $ ./experiment_runner campaign <matrix|sweep|fault>
//         [--jobs N] [--out file.json]
//         (sweep also takes: <minix|sel4|linux> [seeds N])
//
// campaign fans the cells across N worker threads and prints the same
// tables as the sequential modes; the aggregate summary JSON (per-cell
// verdicts, trace hashes, merged metrics — byte-identical for every
// --jobs value) goes to --out, or to stdout as the last line.
//
// Any benign/attack/fault invocation also accepts:
//   --metrics-out <file>   write the metrics registry snapshot as JSON
//   --trace-out <file>     write the trace as Chrome trace-event JSON
//                          (load in Perfetto / chrome://tracing)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/report.hpp"
#include "obs/trace_export.hpp"

namespace core = mkbas::core;

using mkbas::attack::AttackKind;
using mkbas::attack::Privilege;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: experiment_runner benign <minix|sel4|linux>\n"
      "       experiment_runner attack <minix|sel4|linux> <attack> "
      "[root] [quota] [acl]\n"
      "       experiment_runner matrix [--csv|--md]\n"
      "       experiment_runner fault <minix|sel4|linux> [seed N] "
      "[no-probe]\n"
      "       experiment_runner campaign <matrix|sweep|fault> [--jobs N] "
      "[--out file.json]\n"
      "       experiment_runner campaign sweep <minix|sel4|linux> "
      "[seeds N] [--jobs N]\n"
      "options: --metrics-out <file> --trace-out <file>\n"
      "attacks: spoof-sensor spoof-actuator kill fork-bomb brute-force "
      "flood\n");
  return 2;
}

bool parse_platform(const std::string& s, core::Platform* out) {
  if (s == "minix") {
    *out = core::Platform::kMinix;
  } else if (s == "sel4") {
    *out = core::Platform::kSel4;
  } else if (s == "linux") {
    *out = core::Platform::kLinux;
  } else {
    return false;
  }
  return true;
}

bool parse_attack(const std::string& s, AttackKind* out) {
  if (s == "spoof-sensor") {
    *out = AttackKind::kSpoofSensor;
  } else if (s == "spoof-actuator") {
    *out = AttackKind::kSpoofActuator;
  } else if (s == "kill") {
    *out = AttackKind::kKillControl;
  } else if (s == "fork-bomb") {
    *out = AttackKind::kForkBomb;
  } else if (s == "brute-force") {
    *out = AttackKind::kCapBruteForce;
  } else if (s == "flood") {
    *out = AttackKind::kIpcFlood;
  } else {
    return false;
  }
  return true;
}

/// Build the RunOptions::observe hook that writes --metrics-out and
/// --trace-out files. Returns an empty function when neither was given.
std::function<void(mkbas::sim::Machine&)> make_observer(
    const std::string& metrics_out, const std::string& trace_out) {
  if (metrics_out.empty() && trace_out.empty()) return {};
  return [metrics_out, trace_out](mkbas::sim::Machine& m) {
    if (!metrics_out.empty()) {
      std::ofstream f(metrics_out);
      f << core::metrics_to_json(m) << "\n";
      if (!f) {
        std::fprintf(stderr, "warning: could not write %s\n",
                     metrics_out.c_str());
      }
    }
    if (!trace_out.empty()) {
      std::ofstream f(trace_out);
      mkbas::obs::write_chrome_trace(f, m.trace());
      if (!f) {
        std::fprintf(stderr, "warning: could not write %s\n",
                     trace_out.c_str());
      }
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the output-file and jobs options first; the rest is positional.
  std::string metrics_out, trace_out, campaign_out;
  int jobs = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if ((a == "--metrics-out" || a == "--trace-out") && i + 1 < argc) {
      (a == "--metrics-out" ? metrics_out : trace_out) = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      campaign_out = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  const std::string mode = args[0];

  if (mode == "campaign") {
    if (args.size() < 2) return usage();
    const std::string what = args[1];
    std::vector<core::CampaignCell> cells;
    if (what == "matrix") {
      cells = core::attack_matrix_cells({});
    } else if (what == "sweep") {
      if (args.size() < 3) return usage();
      core::Platform platform;
      if (!parse_platform(args[2], &platform)) return usage();
      int seeds = 8;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "seeds" && i + 1 < args.size()) {
          seeds = std::atoi(args[++i].c_str());
        }
      }
      cells = core::seed_sweep_cells(platform, {}, 1, seeds);
    } else if (what == "fault") {
      core::RunOptions opts;
      opts.settle = mkbas::sim::minutes(1);
      opts.post = mkbas::sim::minutes(6);
      opts.seed = 42;
      opts.scenario.room.initial_temp_c =
          opts.scenario.control.initial_setpoint_c;
      cells = core::fault_campaign_cells(
          mkbas::fault::reference_sensor_crash_plan(), opts,
          mkbas::sim::sec(70));
    } else {
      return usage();
    }

    const auto result = core::run_campaign(cells, jobs);
    std::printf("campaign: %zu cells, --jobs %d, %.2f s wall, %llu steals\n",
                result.cells.size(), result.jobs, result.wall_seconds,
                static_cast<unsigned long long>(result.steals));
    if (what == "matrix") {
      std::fputs(core::format_attack_table(core::attack_rows(result)).c_str(),
                 stdout);
    } else if (what == "fault") {
      std::fputs(core::format_fault_table(core::fault_rows(result)).c_str(),
                 stdout);
    } else {
      for (const auto& c : result.cells) {
        std::printf("%-28s %zu samples, alarm %s\n", c.name.c_str(),
                    c.benign.history.size(),
                    c.benign.safety.alarm_violation ? "VIOLATED" : "held");
      }
    }
    const std::string summary = result.summary_json();
    if (!campaign_out.empty()) {
      std::ofstream f(campaign_out);
      f << summary << "\n";
      if (!f) {
        std::fprintf(stderr, "warning: could not write %s\n",
                     campaign_out.c_str());
        return 1;
      }
    } else {
      std::printf("%s\n", summary.c_str());
    }
    return 0;
  }

  if (mode == "matrix") {
    const auto rows = core::run_attack_matrix();
    const std::string fmt = args.size() > 1 ? args[1] : "";
    if (fmt == "--csv") {
      std::fputs(core::attack_rows_to_csv(rows).c_str(), stdout);
    } else if (fmt == "--md") {
      std::fputs(core::attack_rows_to_markdown(rows).c_str(), stdout);
    } else {
      std::fputs(core::format_attack_table(rows).c_str(), stdout);
    }
    return 0;
  }

  if (mode == "benign") {
    if (args.size() < 2) return usage();
    core::Platform platform;
    if (!parse_platform(args[1], &platform)) return usage();
    core::RunOptions opts;
    opts.observe = make_observer(metrics_out, trace_out);
    const auto run = core::run_benign(platform, opts);
    std::printf("platform            : %s\n", core::to_string(platform));
    std::printf("plant samples       : %zu\n", run.history.size());
    std::printf("final temperature   : %.2f C\n",
                run.history.back().true_temp_c);
    std::printf("context switches    : %llu\n",
                static_cast<unsigned long long>(run.context_switches));
    std::printf("kernel entries      : %llu\n",
                static_cast<unsigned long long>(run.kernel_entries));
    std::printf("alarm property      : %s\n",
                run.safety.alarm_violation ? "VIOLATED" : "held");
    std::printf("control alive       : %s\n",
                run.safety.control_alive ? "yes" : "NO");
    return 0;
  }

  if (mode == "fault") {
    // The reference fault campaign (crash the sensor driver at t=30s,
    // the web interface at t=40s) against one platform, with a
    // post-restart sensor-spoof probe of the reincarnated web process.
    if (args.size() < 2) return usage();
    core::Platform platform;
    if (!parse_platform(args[1], &platform)) return usage();
    core::RunOptions opts;
    opts.settle = mkbas::sim::minutes(1);
    opts.post = mkbas::sim::minutes(6);
    opts.scenario.room.initial_temp_c =
        opts.scenario.control.initial_setpoint_c;
    opts.observe = make_observer(metrics_out, trace_out);
    mkbas::sim::Time probe_at = mkbas::sim::sec(70);
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "seed" && i + 1 < args.size()) {
        opts.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (args[i] == "no-probe") {
        probe_at = -1;
      }
    }
    const auto plan = mkbas::fault::reference_sensor_crash_plan();
    std::printf("plan:\n%s", plan.describe().c_str());
    const auto res = core::run_fault(platform, plan, opts, probe_at);
    std::printf("platform       : %s\n", res.platform_label.c_str());
    std::printf("faults injected: %llu\n",
                static_cast<unsigned long long>(res.faults_injected));
    std::printf("loop recovered : %s\n", res.loop_recovered ? "yes" : "NO");
    if (res.mttr >= 0) {
      std::printf("mttr           : %.3f s (virtual)\n",
                  mkbas::sim::to_seconds(res.mttr));
    } else {
      std::printf("mttr           : inf (never recovered)\n");
    }
    std::printf("restarts       : %d\n", res.restarts);
    std::printf("excursion      : %.2f C after the fault\n",
                res.max_excursion_after_fault_c);
    if (res.web_spoof.attempted) {
      std::printf("spoof probe    : %s (%d attempts)\n",
                  res.web_spoof.primitive_succeeded ? "SPOOFED" : "blocked",
                  res.web_spoof.attempts);
    } else {
      std::printf("spoof probe    : not reached (web interface dead)\n");
    }
    std::printf("physical       : %s\n", res.safety.summary().c_str());
    return res.loop_recovered ? 0 : 1;
  }

  if (mode == "attack") {
    if (args.size() < 3) return usage();
    core::Platform platform;
    AttackKind kind;
    if (!parse_platform(args[1], &platform) ||
        !parse_attack(args[2], &kind)) {
      return usage();
    }
    Privilege priv = Privilege::kCodeExec;
    core::RunOptions opts;
    opts.observe = make_observer(metrics_out, trace_out);
    for (std::size_t i = 3; i < args.size(); ++i) {
      if (args[i] == "root") priv = Privilege::kRoot;
      if (args[i] == "quota") opts.minix_quotas = true;
      if (args[i] == "acl") opts.linux_separate_accounts = true;
    }
    const auto row = core::run_attack(platform, kind, priv, opts);
    std::printf("platform   : %s\n", row.platform_label.c_str());
    std::printf("attack     : %s (%s)\n", to_string(row.kind),
                to_string(row.privilege));
    std::printf("primitive  : %s\n",
                row.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked");
    std::printf("detail     : %s\n", row.outcome.detail.c_str());
    std::printf("physical   : %s\n", row.safety.summary().c_str());
    return row.safety.physically_compromised() ? 1 : 0;
  }
  return usage();
}
