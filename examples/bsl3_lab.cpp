// BSL-3 lab walkthrough: a narrated day in the containment suite — the
// scenario the paper's Fig. 1 labels "Biosafety Level 3 Lab". Pressure
// cascade, a researcher cycling through the airlock (door interlock), a
// damper fault with the critical alarm, and recovery.
//
//   $ ./bsl3_lab
#include <cstdio>

#include "bas/bsl3_scenario.hpp"

namespace bas = mkbas::bas;
namespace sim = mkbas::sim;

int main() {
  sim::Machine machine(21);
  bas::Bsl3Scenario lab(machine);

  // A researcher enters: outer door, wait in the anteroom, inner door.
  machine.at(sim::minutes(8), [&] {
    lab.http().submit(machine.now(), {"POST", "/door", "door=outer"});
  });
  machine.at(sim::minutes(8) + sim::sec(15), [&] {
    lab.http().submit(machine.now(), {"POST", "/door", "door=inner"});
  });
  // An impatient attempt: both doors requested back-to-back.
  machine.at(sim::minutes(12), [&] {
    lab.http().submit(machine.now(), {"POST", "/door", "door=inner"});
    lab.http().submit(machine.now(), {"POST", "/door", "door=outer"});
  });
  // A supply damper fails at t=20min, recovers at t=30min.
  machine.at(sim::minutes(20), [&] { lab.model().set_fault_inflow(1.2); });
  machine.at(sim::minutes(30), [&] { lab.model().set_fault_inflow(0.0); });
  // Periodic status polls.
  machine.every(sim::minutes(5), sim::minutes(5), [&] {
    lab.http().submit(machine.now(), {"GET", "/status", ""});
  });

  machine.run_until(sim::minutes(40));

  std::printf("operator console:\n");
  for (const auto& ex : lab.http().exchanges()) {
    if (ex.answered < 0) continue;
    std::printf("  [%4.1f min] %-4s %-8s %-12s -> %d %s\n",
                static_cast<double>(ex.submitted) / 60e6,
                ex.request.method.c_str(), ex.request.path.c_str(),
                ex.request.body.c_str(), ex.response.status,
                ex.response.body.c_str());
  }

  std::printf("\npressure & alarm timeline:\n");
  for (const auto& s : lab.history()) {
    if (s.time % sim::minutes(4) != 0) continue;
    std::printf("  t=%4.0f min  lab=%6.1f Pa  ante=%6.1f Pa  fan=%.2f%s%s\n",
                static_cast<double>(s.time) / 60e6, s.lab_pa, s.ante_pa,
                s.fan_speed, s.inner_open || s.outer_open ? "  [door]" : "",
                s.alarm_on ? "  ** ALARM **" : "");
  }

  const auto safety = bas::Bsl3Scenario::check_safety(
      lab.history(), machine.trace(), lab.config(), sim::minutes(40));
  std::printf("\nsafety analysis: %s\n", safety.summary().c_str());
  std::printf(
      "(the breach is the injected damper fault — a *hardware* failure;\n"
      " the system behaved correctly: alarm raised within %llds, interlock\n"
      " never violated, pressure restored after the repair)\n",
      static_cast<long long>(lab.config().alarm_delay / sim::sec(1)));
  std::printf("door interlock refusals: %zu\n",
              machine.trace().count_tag("bsl3.door_denied"));
  return 0;
}
