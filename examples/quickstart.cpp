// Quickstart: boot the temperature-control scenario on the
// security-enhanced MINIX 3 personality, drive it over HTTP, and inspect
// what happened.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library: one Machine, one
// scenario, a couple of driver-scheduled HTTP requests, and the trace.
#include <cstdio>

#include "bas/scenario.hpp"

namespace bas = mkbas::bas;
namespace sim = mkbas::sim;

int main() {
  // A deterministic simulated machine (virtual clock, seeded RNG).
  sim::Machine machine(/*seed=*/42);

  // The whole scenario: AADL model -> ACM -> kernel -> five processes,
  // plus the simulated room, sensor, heater and alarm LED. The registry
  // builds any (platform, variant) pair behind the same interface —
  // swap kMinix for kSel4 or kLinux and nothing below changes.
  auto sc = bas::make_scenario(machine, bas::Platform::kMinix, "temp");
  bas::Scenario& scenario = *sc;

  // Schedule some operator traffic against the web interface (port 8080
  // in spirit): a status poll every 5 minutes and a setpoint change.
  machine.every(sim::minutes(5), sim::minutes(5), [&] {
    scenario.http().submit(machine.now(), {"GET", "/status", ""});
  });
  machine.at(sim::minutes(12), [&] {
    scenario.http().submit(machine.now(),
                           {"POST", "/setpoint", "value=24.0"});
  });

  // Run half an hour of simulated time (fractions of a second of real
  // time) and look at the results.
  machine.run_until(sim::minutes(30));

  std::printf("HTTP exchanges:\n");
  for (const auto& ex : scenario.http().exchanges()) {
    if (ex.answered < 0) continue;  // submitted right at the end of the run
    std::printf("  [%5.1f min] %-4s %-10s -> %d %s\n",
                static_cast<double>(ex.submitted) / 60e6,
                ex.request.method.c_str(), ex.request.path.c_str(),
                ex.response.status, ex.response.body.c_str());
  }

  const auto& history = scenario.plant()->coupler->history();
  std::printf("\nPlant ground truth (every 5 min):\n");
  for (const auto& s : history) {
    if (s.time % sim::minutes(5) != 0) continue;
    std::printf("  t=%4.1f min  T=%5.2fC  heater=%s alarm=%s\n",
                static_cast<double>(s.time) / 60e6, s.true_temp_c,
                s.heater_on ? "on" : "off", s.alarm_on ? "ON" : "off");
  }

  std::printf("\nSecurity decisions made by the kernel: %zu allowed, %zu denied\n",
              machine.trace().count_tag("acm.allow"),
              machine.trace().count_tag("acm.deny"));
  std::printf("Context switches: %llu, kernel entries: %llu\n",
              static_cast<unsigned long long>(machine.context_switches()),
              static_cast<unsigned long long>(machine.kernel_entries()));
  return 0;
}
