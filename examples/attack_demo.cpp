// Attack demo: the paper's first simulation, side by side. The web
// interface is compromised at t=12min and tries to impersonate the
// temperature sensor. On Linux the forged readings reach the control
// process and the room physically overheats; on security-enhanced MINIX 3
// the kernel's access control matrix drops every forged message.
//
//   $ ./attack_demo
#include <cstdio>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

using mkbas::attack::AttackKind;
using mkbas::attack::Privilege;

namespace {

void report(const core::AttackRow& row) {
  std::printf("--- %s ---\n", row.platform_label.c_str());
  std::printf("  attack primitive : %s\n",
              row.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked");
  std::printf("  detail           : %s\n", row.outcome.detail.c_str());
  std::printf("  physical world   : %s\n\n", row.safety.summary().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Compromised web interface impersonates the temperature sensor\n"
      "(forged reading: 5.0C, i.e. 'the room is freezing, heat harder')\n\n");

  report(core::run_attack(core::Platform::kLinux, AttackKind::kSpoofSensor,
                          Privilege::kCodeExec));
  report(core::run_attack(core::Platform::kMinix, AttackKind::kSpoofSensor,
                          Privilege::kCodeExec));
  report(core::run_attack(core::Platform::kSel4, AttackKind::kSpoofSensor,
                          Privilege::kCodeExec));

  std::printf(
      "Second simulation: the attacker additionally holds root.\n"
      "Linux now runs the well-configured deployment (per-process\n"
      "accounts, per-queue ACLs) — and still falls.\n\n");
  report(core::run_attack(core::Platform::kLinux, AttackKind::kSpoofSensor,
                          Privilege::kRoot));
  report(core::run_attack(core::Platform::kMinix, AttackKind::kSpoofSensor,
                          Privilege::kRoot));
  return 0;
}
