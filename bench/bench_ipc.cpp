// T2 — IPC cost across the three kernel personalities, quantifying the
// paper's §III trade-off: "the microkernel approach generally
// underperforms the monolithic due to the multiple context switches",
// bought in exchange for kernel-audited IPC.
//
// Wall time measures the simulator; the architecture-meaningful numbers
// are the per-operation *simulated* costs reported as counters:
//   ctx_per_op      — scheduler context switches per IPC round trip
//   kentry_per_op   — kernel entries (syscalls) per round trip
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "linuxsim/kernel.hpp"
#include "minix/kernel.hpp"
#include "sel4/kernel.hpp"

namespace sim = mkbas::sim;
namespace minix = mkbas::minix;
namespace sel4 = mkbas::sel4;
namespace lx = mkbas::linuxsim;

namespace {

minix::AcmPolicy open_policy() {
  minix::AcmPolicy acm;
  acm.allow_mask(10, 11, ~0ULL);
  acm.allow_mask(11, 10, ~0ULL);
  return acm;
}

struct Counters {
  std::uint64_t ops = 0;
};

void report(benchmark::State& state, const sim::Machine& m,
            std::uint64_t ops) {
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  if (ops > 0) {
    state.counters["ctx_per_op"] =
        static_cast<double>(m.context_switches()) / static_cast<double>(ops);
    state.counters["kentry_per_op"] =
        static_cast<double>(m.kernel_entries()) / static_cast<double>(ops);
  }
}

}  // namespace

// ---- MINIX 3: synchronous rendezvous RPC (send + receive + async reply)

static void BM_MinixSendrec(benchmark::State& state) {
  sim::Machine m;
  minix::MinixKernel k(m, open_policy());
  auto counters = std::make_shared<Counters>();
  const minix::Endpoint server =
      k.srv_fork2("server", 10, [&k] {
        for (;;) {
          minix::Message msg;
          if (k.ipc_receive(minix::Endpoint::any(), msg) !=
              minix::IpcResult::kOk) {
            continue;
          }
          minix::Message reply;
          reply.m_type = 0;
          k.ipc_senda(msg.source(), reply);
        }
      });
  k.srv_fork2("client", 11, [&k, server, counters] {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendrec(server, msg) == minix::IpcResult::kOk) {
        ++counters->ops;
      }
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_MinixSendrec)->UseRealTime();

// ---- MINIX 3: one-way non-blocking send to a waiting receiver

static void BM_MinixSendNb(benchmark::State& state) {
  sim::Machine m;
  minix::MinixKernel k(m, open_policy());
  auto counters = std::make_shared<Counters>();
  const minix::Endpoint recv_ep = k.srv_fork2("recv", 10, [&k] {
    for (;;) {
      minix::Message msg;
      k.ipc_receive(minix::Endpoint::any(), msg);
    }
  });
  k.srv_fork2("send", 11, [&k, recv_ep, counters] {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendnb(recv_ep, msg) == minix::IpcResult::kOk) {
        ++counters->ops;
      }
      // The receiver must get the baton to re-enter receive.
      k.machine().yield();
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_MinixSendNb)->UseRealTime();

// ---- seL4: Call/Reply RPC through a badged endpoint

static void BM_Sel4CallReply(benchmark::State& state) {
  sim::Machine m;
  sel4::Sel4Kernel k(m);
  auto counters = std::make_shared<Counters>();
  k.boot_root([&k, counters] {
    using sel4::CapRights;
    using sel4::ObjType;
    k.retype(sel4::Sel4Kernel::kRootUntypedSlot, ObjType::kEndpoint, 9);
    k.create_thread(sel4::Sel4Kernel::kRootUntypedSlot, "server",
                    [&k] {
                      for (;;) {
                        sel4::Sel4Msg msg;
                        if (k.recv(2, msg).status != sel4::Sel4Error::kOk) {
                          continue;
                        }
                        k.reply(sel4::Sel4Msg{});
                      }
                    },
                    6, 20, 21);
    k.cnode_copy_into(21, 9, 2, CapRights::r());
    k.tcb_resume(20);
    k.create_thread(sel4::Sel4Kernel::kRootUntypedSlot, "client",
                    [&k, counters] {
                      for (;;) {
                        sel4::Sel4Msg msg;
                        msg.label = 1;
                        if (k.call(2, msg) == sel4::Sel4Error::kOk) {
                          ++counters->ops;
                        }
                      }
                    },
                    7, 22, 23);
    k.cnode_copy_into(23, 9, 2, CapRights::wg(), /*badge=*/1);
    k.tcb_resume(22);
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_Sel4CallReply)->UseRealTime();

// ---- Linux: POSIX message-queue round trip (request + reply queues)

static void BM_LinuxMqRoundTrip(benchmark::State& state) {
  sim::Machine m;
  lx::LinuxKernel k(m);
  auto counters = std::make_shared<Counters>();
  k.spawn_process("server", 1000, [&k] {
    const int req = k.mq_open("/req", true, lx::Mode::rw_owner_only());
    const int rep = k.mq_open("/rep", true, lx::Mode::rw_owner_only());
    for (;;) {
      lx::MqMessage msg;
      if (k.mq_receive(req, msg) != lx::Errno::kOk) return;
      k.mq_send(rep, {"ok", 0});
    }
  });
  k.spawn_process("client", 1000, [&k, counters] {
    const int req = k.mq_open("/req", true, lx::Mode::rw_owner_only());
    const int rep = k.mq_open("/rep", true, lx::Mode::rw_owner_only());
    for (;;) {
      if (k.mq_send(req, {"ping", 0}) != lx::Errno::kOk) return;
      lx::MqMessage msg;
      if (k.mq_receive(rep, msg) != lx::Errno::kOk) return;
      ++counters->ops;
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_LinuxMqRoundTrip)->UseRealTime();

// ---- Linux: Unix-domain-socket round trip (the other §III IPC)

static void BM_LinuxUdsRoundTrip(benchmark::State& state) {
  sim::Machine m;
  lx::LinuxKernel k(m);
  auto counters = std::make_shared<Counters>();
  k.spawn_process("server", 1000, [&k] {
    const int s = k.sock_socket();
    if (k.sock_bind(s, "/run/bench.sock", lx::Mode::rw_everyone()) !=
        lx::Errno::kOk) {
      return;
    }
    k.sock_listen(s);
    const int c = k.sock_accept(s);
    if (c < 0) return;
    for (;;) {
      std::string msg;
      if (k.sock_recv(c, &msg) != lx::Errno::kOk) return;
      if (k.sock_send(c, "pong") != lx::Errno::kOk) return;
    }
  });
  k.spawn_process("client", 1000, [&k, &m, counters] {
    m.sleep_for(sim::msec(1));
    const int c = k.sock_connect("/run/bench.sock");
    if (c < 0) return;
    for (;;) {
      if (k.sock_send(c, "ping") != lx::Errno::kOk) return;
      std::string msg;
      if (k.sock_recv(c, &msg) != lx::Errno::kOk) return;
      ++counters->ops;
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_LinuxUdsRoundTrip)->UseRealTime();

// ---- Linux: one-way queue send (the cheap, unaudited path)

static void BM_LinuxMqOneWay(benchmark::State& state) {
  sim::Machine m;
  lx::LinuxKernel k(m);
  auto counters = std::make_shared<Counters>();
  k.spawn_process("recv", 1000, [&k] {
    const int q = k.mq_open("/q", true, lx::Mode::rw_owner_only(), 8);
    for (;;) {
      lx::MqMessage msg;
      if (k.mq_receive(q, msg) != lx::Errno::kOk) return;
    }
  });
  k.spawn_process("send", 1000, [&k, counters] {
    const int q = k.mq_open("/q", true, lx::Mode::rw_owner_only(), 8);
    for (;;) {
      if (k.mq_send(q, {"x", 0}) != lx::Errno::kOk) return;
      ++counters->ops;
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  report(state, m, counters->ops);
}
BENCHMARK(BM_LinuxMqOneWay)->UseRealTime();

// ---- Metrics-overhead A/B + machine-readable summary ----
//
// After the google-benchmark suite, run the MINIX sendrec round trip
// twice in one process — metrics registry enabled vs disabled — and
// print one JSON line. The instrumentation is pre-resolved handles
// (pointer bump per event), so the expected overhead is noise-level;
// CI asserts it stays within 10%.

namespace {

struct AbPass {
  std::uint64_t ops = 0;
  double wall_ns = 0;
  double ns_per_op() const {
    return ops > 0 ? wall_ns / static_cast<double>(ops) : 0.0;
  }
};

AbPass run_sendrec_pass(bool metrics_on) {
  sim::Machine m;
  m.metrics().set_enabled(metrics_on);
  minix::MinixKernel k(m, open_policy());
  auto counters = std::make_shared<Counters>();
  const minix::Endpoint server = k.srv_fork2("server", 10, [&k] {
    for (;;) {
      minix::Message msg;
      if (k.ipc_receive(minix::Endpoint::any(), msg) !=
          minix::IpcResult::kOk) {
        continue;
      }
      minix::Message reply;
      reply.m_type = 0;
      k.ipc_senda(msg.source(), reply);
    }
  });
  k.srv_fork2("client", 11, [&k, server, counters] {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendrec(server, msg) == minix::IpcResult::kOk) {
        ++counters->ops;
      }
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  m.run_for(sim::msec(200));
  const auto t1 = std::chrono::steady_clock::now();
  return {counters->ops,
          std::chrono::duration<double, std::nano>(t1 - t0).count()};
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Interleave repetitions and keep the fastest pass of each arm: the
  // minimum is the least scheduler-noise-sensitive statistic on shared
  // CI machines.
  AbPass best_on, best_off;
  for (int rep = 0; rep < 3; ++rep) {
    const AbPass off = run_sendrec_pass(false);
    const AbPass on = run_sendrec_pass(true);
    if (rep == 0 || off.ns_per_op() < best_off.ns_per_op()) best_off = off;
    if (rep == 0 || on.ns_per_op() < best_on.ns_per_op()) best_on = on;
  }
  const double overhead_pct =
      best_off.ns_per_op() > 0
          ? (best_on.ns_per_op() - best_off.ns_per_op()) /
                best_off.ns_per_op() * 100.0
          : 0.0;
  std::printf(
      "{\"bench\":\"bench_ipc\",\"metric\":\"minix_sendrec_metrics_overhead\","
      "\"ops_metrics_on\":%llu,\"ops_metrics_off\":%llu,"
      "\"wall_ns_per_op_on\":%.1f,\"wall_ns_per_op_off\":%.1f,"
      "\"overhead_pct\":%.2f}\n",
      static_cast<unsigned long long>(best_on.ops),
      static_cast<unsigned long long>(best_off.ops), best_on.ns_per_op(),
      best_off.ns_per_op(), overhead_pct);
  return 0;
}
