#!/usr/bin/env python3
"""Perf-regression gate for the bench JSON artifacts.

Compares a freshly produced summary against the committed baseline of
the same kind and fails when a machine-independent signal regresses.

bench_campaign (BENCH_campaign.json):

  * msgs_per_sec_seq      -- single-thread campaign throughput. This is
                             the primary gate: a >20% drop fails.
  * acm_fast_ns           -- the ACM fast path must stay at or below the
                             sparse baseline measured in the same run
                             (a relative claim, so it holds on any host).
  * cap_cached_ns         -- likewise, the path cache must not be slower
                             than the full CNode walk it replaces.
  * deterministic         -- the parallel run must have merged to the
                             same bytes as the sequential one.

bench_net (BENCH_net.json):

  * msgs_per_sec          -- fabric delivery throughput, same >20% gate.
  * cov_p99_ms            -- end-to-end COV latency p99 in *virtual*
                             time: a pure function of topology and seed,
                             compared exactly on any host.
  * trace_hash            -- the whole building's trace, likewise exact.
  * city_msgs_per_sec     -- the 10,000-zone hierarchical arm must keep
                             >= 50x the 8-zone seed throughput (263.7
                             msg/s measured on the pre-lookahead epoch
                             engine) -- the absolute floor the lookahead
                             sync engine was built to clear. Also gated
                             relatively against the baseline.
  * city_delivered /
    city_trace_hash       -- the city run's virtual signals, exact.
  * deterministic         -- rerun, campaign --jobs and campus --jobs
                             divergences, plus causality violations.

bench_hotloop (BENCH_hotloop.json):

  * steady_allocs /
    worst_steady_allocs   -- heap allocations inside the steady-state IPC
                             window must be exactly ZERO, on every
                             repetition. One alloc per message fails by
                             thousands, so this is a loud, host-independent
                             gate.
  * msgs_per_sec          -- absolute floor of 2x the pre-rework campaign
                             commit (46,771 msg/s -> 93,542), plus the
                             usual relative gate against the baseline.
  * bank_equal /
    bank_steady_allocs    -- the SoA RoomBank must match the scalar models
                             bit-for-bit and step without allocating.
  * bank_speedup          -- the batched step must not be slower than the
                             scalar loop it replaces (>= 1.0 within-run).

bench_serve (BENCH_serve.json):

  * hits_per_sec          -- cache-hit throughput over loopback sockets.
                             Gated relatively (same >20% rule) plus an
                             absolute floor: a daemon that cannot serve
                             1,000 cached bundles per second has lost
                             the point of the cache.
  * executions            -- must be exactly 1: the prime plus the whole
                             concurrent hit storm may run the experiment
                             once. Host-independent and loud.
  * key                   -- the canonical cell key of the benchmark
                             request; a pure function of the request
                             encoding, compared exactly (a change means
                             the canonical JSON or hash changed --
                             regenerate BENCH_serve.json if intentional).
  * deterministic /
    replay_identical      -- every served artifact equalled a direct
                             in-process run byte-for-byte, and
                             GET /replay verified the cached bundle
                             against a fresh execution. Both measured on
                             the TRACING daemon, so the observability
                             plane provably never leaks host time into a
                             deterministic bundle.
  * obs_overhead_pct      -- the second arm repeats the hit storm with
                             request tracing on, one SSE subscriber
                             draining /events and a thread scraping
                             /metrics throughout. The whole serve-plane
                             observability stack may cost at most
                             SERVE_MAX_OBS_OVERHEAD_PCT of cache-hit
                             throughput (best-of-reps vs best-of-reps,
                             within the same run, so it holds on any
                             host). Absent in old baselines: skipped.
  * executions_obs        -- the tracing daemon too must execute exactly
                             once; sse_frames / metrics_scrapes must be
                             nonzero, proving the arm really exercised
                             the event stream and the scrape endpoint.

bench_obs (BENCH_obs.json):

  * span_cost_*_ns        -- absolute per-op tracing cost of each arm
                             (ns_per_op_<arm> - ns_per_op_off, both
                             best-of-reps minima of the same run) must
                             stay within a rise allowance of the
                             committed baseline. This is the primary
                             signal: it survives the base IPC op getting
                             faster, which a percent-of-op gate does not.
  * overhead_on_pct       -- backstop ceiling on the relative share
                             (spans-on and ring arms vs spans-off).
  * overhead_series_pct   -- likewise for the windowed series + health
                             detector arm, with a tighter ceiling.
  * invariants            -- the span store's conservation counters
                             (begun = open + ended + abandoned;
                             ended + abandoned = kept + dropped) and the
                             series window-ring conservation (samples =
                             live + evicted + late-dropped).
  * ring_exercised        -- the ring arm evicted spans, and eviction is
                             accounted as dropped, never abandoned.
  * series_exercised      -- the series arm actually evicted windows and
                             no detector fired on its exactly periodic
                             input (absent in old baselines: skipped).

Absolute wall-clock and the parallel speedup depend on the host: speedup
is only checked when the "cores" field matches the baseline's (a 1-core
CI runner cannot reproduce a 4-core speedup, and silently comparing the
two would make the gate flap).

Usage:
  python3 bench/check_regression.py \
      --baseline BENCH_campaign.json --current /tmp/BENCH_campaign.json
  python3 bench/check_regression.py \
      --baseline BENCH_net.json --current /tmp/BENCH_net.json
  python3 bench/check_regression.py ... --max-drop 0.2
"""
from __future__ import annotations

import argparse
import json
import sys

KNOWN = ("bench_campaign", "bench_net", "bench_obs", "bench_hotloop",
         "bench_serve")

# Tracing cost accounting. The zero-alloc hot-loop rework made the bare
# IPC round trip ~4.3x faster (5.1us -> 1.1us on the reference host), so
# "percent of an op" stopped being a stable yardstick: the absolute span
# cost per op barely moved while its relative share quadrupled purely
# because the denominator shrank. The primary gate therefore compares
# the absolute within-run cost (ns_per_op_<arm> - ns_per_op_off, both
# best-of-reps minima from the same run) against the committed baseline;
# a loose relative ceiling stays as a backstop against the cost growing
# along with the op. Subtracting two noisy minima roughly doubles the
# jitter of either, hence the generous rise allowance plus an absolute
# slack floor for cheap arms (the series arm costs ~70 ns/op, where
# one scheduler hiccup is already tens of percent).
OBS_MAX_COST_RISE = 0.60     # arm cost may rise at most 60% over baseline...
OBS_COST_SLACK_NS = 75.0     # ...or by this many ns/op, whichever is larger
OBS_MAX_OVERHEAD_PCT = 35.0  # hard ceiling: spans-on / ring vs spans-off
OBS_SERIES_MAX_OVERHEAD_PCT = 15.0  # hard ceiling: series arm vs obs-off

# City-scale floor: the 8-zone seed building ran at 263.7 msg/s on the
# epoch-barrier engine; the 10k-zone arm must sustain at least 50x that.
# Absolute (not relative to the baseline file) so a slow regenerated
# baseline can never quietly lower the bar.
NET_SEED_MSGS_PER_SEC = 263.7
NET_CITY_MIN_FACTOR = 50.0

# Zero-alloc floor: the campaign commit before the hot-loop rework ran
# 46,771 msg/s sequentially; the instrumented steady-state window must
# sustain at least 2x that. Absolute, so a slow regenerated baseline can
# never quietly lower the bar.
HOTLOOP_PRE_REWORK_MSGS_PER_SEC = 46771.0
HOTLOOP_MIN_FACTOR = 2.0

# Cache-hit floor: a served bundle is a map lookup plus one loopback
# round trip; 1,000/s leaves two orders of magnitude of headroom on any
# host while still catching a daemon that re-executes per request.
SERVE_MIN_HITS_PER_SEC = 1000.0

# Serve-plane observability ceiling: per-request tracing + a live SSE
# subscriber + concurrent /metrics scrapes may cost at most this share
# of cache-hit throughput (both arms best-of-reps in the same run, so
# the comparison is host-independent).
SERVE_MAX_OBS_OVERHEAD_PCT = 5.0


def load(path: str) -> dict:
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") not in KNOWN:
        raise SystemExit(f"{path}: not a known bench summary "
                         f"(bench={data.get('bench')!r})")
    return data


def check_rate(base: dict, cur: dict, key: str, max_drop: float,
               failures: list) -> None:
    base_rate = float(base[key])
    cur_rate = float(cur[key])
    if base_rate <= 0:
        return
    drop = 1.0 - cur_rate / base_rate
    verdict = "FAIL" if drop > max_drop else "ok"
    print(f"{key}: baseline {base_rate:.0f}, "
          f"current {cur_rate:.0f} ({-drop:+.1%}) [{verdict}]")
    if drop > max_drop:
        failures.append(
            f"{key} dropped {drop:.1%} (limit {max_drop:.0%})")


def check_net(base: dict, cur: dict, max_drop: float) -> list:
    failures = []
    if not cur.get("deterministic", False):
        failures.append("fabric rerun or --jobs campaign diverged "
                        "(deterministic=false)")
    check_rate(base, cur, "msgs_per_sec", max_drop, failures)
    # Virtual-time signals: exact on any host.
    exact = ["cov_p99_ms", "trace_hash", "delivered", "cov_count"]
    if "city_delivered" in cur and "city_delivered" in base:
        exact += ["city_delivered", "city_trace_hash", "city_zones"]
    for key in exact:
        print(f"{key}: baseline {base.get(key)}, current {cur.get(key)}")
        if cur.get(key) != base.get(key):
            failures.append(
                f"{key} changed: baseline {base.get(key)} vs "
                f"current {cur.get(key)} (virtual-time signal; "
                "regenerate BENCH_net.json if intentional)")
    # City-scale throughput: absolute floor against the pre-lookahead
    # seed rate, plus the usual relative gate when the baseline has it.
    if "city_msgs_per_sec" in cur:
        city_rate = float(cur["city_msgs_per_sec"])
        floor = NET_SEED_MSGS_PER_SEC * NET_CITY_MIN_FACTOR
        verdict = "FAIL" if city_rate < floor else "ok"
        print(f"city_msgs_per_sec: {city_rate:.0f} "
              f"(floor {floor:.0f} = {NET_CITY_MIN_FACTOR:.0f}x seed) "
              f"[{verdict}]")
        if city_rate < floor:
            failures.append(
                f"city arm at {city_rate:.0f} msg/s, below the "
                f"{NET_CITY_MIN_FACTOR:.0f}x-seed floor of {floor:.0f}")
        if "city_msgs_per_sec" in base:
            check_rate(base, cur, "city_msgs_per_sec", max_drop, failures)
    return failures


def obs_cost(d: dict, cost_key: str, on_key: str) -> float:
    """Per-op tracing cost of one arm. schema_version >= 2 exports it;
    older baselines derive it from the per-op numbers."""
    if cost_key in d:
        return float(d[cost_key])
    return float(d[on_key]) - float(d["ns_per_op_off"])


def check_obs(base: dict, cur: dict) -> list:
    failures = []
    for label, cost_key, on_key in (
            ("span", "span_cost_on_ns", "ns_per_op_on"),
            ("ring", "span_cost_ring_ns", "ns_per_op_ring"),
            ("series", "span_cost_series_ns", "ns_per_op_series")):
        if on_key not in cur or on_key not in base:
            continue
        base_c = obs_cost(base, cost_key, on_key)
        cur_c = obs_cost(cur, cost_key, on_key)
        limit = max(base_c * (1.0 + OBS_MAX_COST_RISE),
                    base_c + OBS_COST_SLACK_NS)
        bad = base_c > 0 and cur_c > limit
        print(f"{label} cost: baseline {base_c:+.1f} ns/op, current "
              f"{cur_c:+.1f} ns/op (limit {limit:.1f}) "
              f"[{'FAIL' if bad else 'ok'}]")
        if bad:
            failures.append(
                f"{label} arm costs {cur_c:.1f} ns/op "
                f"(baseline {base_c:.1f}, limit {limit:.1f})")
    overhead = float(cur["overhead_on_pct"])
    print(f"span overhead: {overhead:+.2f}% vs spans-off "
          f"(baseline {float(base.get('overhead_on_pct', 0)):+.2f}%, "
          f"ceiling +{OBS_MAX_OVERHEAD_PCT:.0f}%)")
    if overhead > OBS_MAX_OVERHEAD_PCT:
        failures.append(
            f"span tracing costs {overhead:.2f}% of IPC throughput "
            f"(ceiling {OBS_MAX_OVERHEAD_PCT:.0f}%)")
    if "overhead_series_pct" in cur:
        series = float(cur["overhead_series_pct"])
        print(f"series overhead: {series:+.2f}% vs obs-off "
              f"(baseline {float(base.get('overhead_series_pct', 0)):+.2f}%"
              f", ceiling +{OBS_SERIES_MAX_OVERHEAD_PCT:.0f}%)")
        if series > OBS_SERIES_MAX_OVERHEAD_PCT:
            failures.append(
                f"series+detectors cost {series:.2f}% of IPC throughput "
                f"(ceiling {OBS_SERIES_MAX_OVERHEAD_PCT:.0f}%)")
    checks = ["invariants", "ring_exercised"]
    if "series_exercised" in cur:
        checks.append("series_exercised")
    for key in checks:
        print(f"{key}: {cur.get(key)}")
        if not cur.get(key, False):
            failures.append(f"{key}=false in the current run")
    return failures


def check_serve(base: dict, cur: dict, max_drop: float) -> list:
    failures = []
    for key in ("deterministic", "replay_identical"):
        print(f"{key}: {cur.get(key)}")
        if not cur.get(key, False):
            failures.append(
                f"{key}=false: served bundles must match a direct "
                "run_request byte-for-byte")
    execs = int(cur.get("executions", -1))
    verdict = "FAIL" if execs != 1 else "ok"
    print(f"executions: {execs} [{verdict}]")
    if execs != 1:
        failures.append(
            f"executions={execs}: the prime plus the entire hit storm "
            "must execute the experiment exactly once")
    print(f"key: baseline {base.get('key')}, current {cur.get('key')}")
    if cur.get("key") != base.get("key"):
        failures.append(
            f"cell key changed: baseline {base.get('key')} vs current "
            f"{cur.get('key')} (canonical request encoding or hash "
            "changed; regenerate BENCH_serve.json if intentional)")
    rate = float(cur["hits_per_sec"])
    verdict = "FAIL" if rate < SERVE_MIN_HITS_PER_SEC else "ok"
    print(f"hits_per_sec: {rate:.0f} "
          f"(floor {SERVE_MIN_HITS_PER_SEC:.0f}) [{verdict}]")
    if rate < SERVE_MIN_HITS_PER_SEC:
        failures.append(
            f"cache hits at {rate:.0f}/s, below the absolute floor of "
            f"{SERVE_MIN_HITS_PER_SEC:.0f}")
    check_rate(base, cur, "hits_per_sec", max_drop, failures)
    print(f"latency: p50 {cur.get('p50_us')} us, p99 {cur.get('p99_us')} us "
          "(informational)")
    # Observability arm (absent in old baselines: skipped). Within-run
    # comparison, so only the current summary matters.
    if "obs_overhead_pct" in cur:
        overhead = float(cur["obs_overhead_pct"])
        verdict = "FAIL" if overhead > SERVE_MAX_OBS_OVERHEAD_PCT else "ok"
        print(f"obs_overhead_pct: {overhead:+.2f}% "
              f"(ceiling +{SERVE_MAX_OBS_OVERHEAD_PCT:.0f}%) [{verdict}]")
        if overhead > SERVE_MAX_OBS_OVERHEAD_PCT:
            failures.append(
                f"tracing + SSE + /metrics cost {overhead:.2f}% of "
                f"cache-hit throughput "
                f"(ceiling {SERVE_MAX_OBS_OVERHEAD_PCT:.0f}%)")
        execs_obs = int(cur.get("executions_obs", -1))
        verdict = "FAIL" if execs_obs != 1 else "ok"
        print(f"executions_obs: {execs_obs} [{verdict}]")
        if execs_obs != 1:
            failures.append(
                f"executions_obs={execs_obs}: the tracing daemon too "
                "must execute the experiment exactly once")
        for key in ("sse_frames", "metrics_scrapes"):
            n = int(cur.get(key, 0))
            verdict = "FAIL" if n <= 0 else "ok"
            print(f"{key}: {n} [{verdict}]")
            if n <= 0:
                failures.append(
                    f"{key}={n}: the observability arm never exercised "
                    "the endpoint it claims to measure")
        print(f"latency (obs): p50 {cur.get('p50_us_obs')} us, "
              f"p99 {cur.get('p99_us_obs')} us; "
              f"sse_dropped {cur.get('sse_dropped')} (informational)")
    return failures


def check_hotloop(base: dict, cur: dict, max_drop: float) -> list:
    failures = []
    for key in ("steady_allocs", "worst_steady_allocs", "bank_steady_allocs"):
        allocs = int(cur.get(key, -1))
        verdict = "FAIL" if allocs != 0 else "ok"
        print(f"{key}: {allocs} [{verdict}]")
        if allocs != 0:
            failures.append(f"{key}={allocs}: the steady-state window "
                            "must not touch the heap at all")
    print(f"bank_equal: {cur.get('bank_equal')}")
    if not cur.get("bank_equal", False):
        failures.append("RoomBank diverged bit-wise from the scalar "
                        "RoomModel sweep (bank_equal=false)")
    rate = float(cur["msgs_per_sec"])
    floor = HOTLOOP_PRE_REWORK_MSGS_PER_SEC * HOTLOOP_MIN_FACTOR
    verdict = "FAIL" if rate < floor else "ok"
    print(f"msgs_per_sec: {rate:.0f} (floor {floor:.0f} = "
          f"{HOTLOOP_MIN_FACTOR:.0f}x pre-rework campaign) [{verdict}]")
    if rate < floor:
        failures.append(
            f"steady window at {rate:.0f} msg/s, below the "
            f"{HOTLOOP_MIN_FACTOR:.0f}x floor of {floor:.0f}")
    check_rate(base, cur, "msgs_per_sec", max_drop, failures)
    speedup = float(cur.get("bank_speedup", 0.0))
    verdict = "FAIL" if speedup < 1.0 else "ok"
    print(f"bank_speedup: {speedup:.3f}x vs scalar (within-run) [{verdict}]")
    if speedup < 1.0:
        failures.append(
            f"RoomBank step is slower than the scalar loop "
            f"({speedup:.3f}x)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="maximum allowed fractional drop in throughput "
        "(default 0.20)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base["bench"] != cur["bench"]:
        raise SystemExit(f"baseline is {base['bench']} but current is "
                         f"{cur['bench']}")
    failures = []

    if base["bench"] == "bench_net":
        failures = check_net(base, cur, args.max_drop)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf gate ok")
        return 0

    if base["bench"] == "bench_obs":
        failures = check_obs(base, cur)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf gate ok")
        return 0

    if base["bench"] == "bench_serve":
        failures = check_serve(base, cur, args.max_drop)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf gate ok")
        return 0

    if base["bench"] == "bench_hotloop":
        failures = check_hotloop(base, cur, args.max_drop)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("perf gate ok")
        return 0

    if not cur.get("deterministic", False):
        failures.append("parallel campaign diverged from sequential "
                        "(deterministic=false)")

    check_rate(base, cur, "msgs_per_sec_seq", args.max_drop, failures)

    fast = float(cur["acm_fast_ns"])
    sparse = float(cur["acm_sparse_ns"])
    print(f"acm lookup: fast {fast:.2f} ns vs sparse {sparse:.2f} ns")
    if fast > sparse:
        failures.append(
            f"ACM fast path ({fast:.2f} ns) is slower than the sparse "
            f"baseline ({sparse:.2f} ns)")

    cached = float(cur["cap_cached_ns"])
    walk = float(cur["cap_walk_ns"])
    print(f"cap probe: cached {cached:.2f} ns vs walk {walk:.2f} ns")
    if cached > walk:
        failures.append(
            f"path cache ({cached:.2f} ns) is slower than the full walk "
            f"({walk:.2f} ns)")

    if cur.get("cores") == base.get("cores") and int(cur.get("jobs", 1)) > 1:
        speedup = float(cur["speedup"])
        base_speedup = float(base.get("speedup", 0))
        print(f"speedup at --jobs {cur['jobs']} on {cur['cores']} cores: "
              f"{speedup:.2f}x (baseline {base_speedup:.2f}x)")
        if base_speedup > 1.1 and speedup < 1.0:
            failures.append(
                f"parallel run slower than sequential ({speedup:.2f}x) "
                f"where the baseline showed {base_speedup:.2f}x")
    else:
        print(f"speedup check skipped: cores {cur.get('cores')} vs "
              f"baseline {base.get('cores')}")

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
