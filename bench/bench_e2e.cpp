// T5 — end-to-end control-loop cost per platform: one full
// sensor -> control -> actuator cycle of the Fig. 2 scenario, counting
// simulated context switches and kernel entries per cycle.
//
// Expected shape: the microkernel paths pay more context switches per
// cycle (every hop is a kernel-mediated rendezvous/RPC) than the
// monolithic message-queue path — the §III trade-off at system scale.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

namespace {

void run_platform(benchmark::State& state, core::Platform platform) {
  sim::Machine m(1);
  std::unique_ptr<mkbas::bas::MinixScenario> minix;
  std::unique_ptr<mkbas::bas::Sel4Scenario> sel4;
  std::unique_ptr<mkbas::bas::LinuxScenario> linux;
  switch (platform) {
    case core::Platform::kMinix:
      minix = std::make_unique<mkbas::bas::MinixScenario>(m);
      break;
    case core::Platform::kSel4:
      sel4 = std::make_unique<mkbas::bas::Sel4Scenario>(m);
      break;
    case core::Platform::kLinux:
      linux = std::make_unique<mkbas::bas::LinuxScenario>(m);
      break;
  }
  // Warm up: let the system boot and settle into steady cycling.
  m.run_until(sim::minutes(1));
  std::uint64_t cycles = 0;
  std::size_t trace_pos = m.trace().size();
  const std::uint64_t ctx0 = m.context_switches();
  const std::uint64_t ke0 = m.kernel_entries();
  for (auto _ : state) {
    m.run_for(sim::sec(10));  // ten 1Hz control cycles per iteration
  }
  for (std::size_t i = trace_pos; i < m.trace().size(); ++i) {
    if (m.trace().events()[i].what() == "ctl.sample") ++cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  if (cycles > 0) {
    state.counters["ctx_per_cycle"] =
        static_cast<double>(m.context_switches() - ctx0) /
        static_cast<double>(cycles);
    state.counters["kentry_per_cycle"] =
        static_cast<double>(m.kernel_entries() - ke0) /
        static_cast<double>(cycles);
    state.counters["simsec_per_cycle"] = 1.0;  // the 1 Hz sensor period
  }
}

}  // namespace

static void BM_E2eMinix(benchmark::State& state) {
  run_platform(state, core::Platform::kMinix);
}
BENCHMARK(BM_E2eMinix)->UseRealTime();

static void BM_E2eSel4(benchmark::State& state) {
  run_platform(state, core::Platform::kSel4);
}
BENCHMARK(BM_E2eSel4)->UseRealTime();

static void BM_E2eLinux(benchmark::State& state) {
  run_platform(state, core::Platform::kLinux);
}
BENCHMARK(BM_E2eLinux)->UseRealTime();

BENCHMARK_MAIN();
