// T4 — the seL4 capability system: lookup cost along chained CNodes
// (CSpace depth) and the cost a §IV.D.3 brute-force attacker pays to
// enumerate a CSpace (and finds nothing it was not given).
#include <benchmark/benchmark.h>

#include "sel4/kernel.hpp"

namespace sel4 = mkbas::sel4;
namespace sim = mkbas::sim;

using sel4::CapRights;
using sel4::ObjType;
using sel4::Sel4Kernel;

// Capability resolution along a chain of `depth` CNodes.
static void BM_CapLookupDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  sim::Machine m;
  Sel4Kernel k(m);
  auto probes = std::make_shared<std::uint64_t>(0);
  auto path = std::make_shared<std::vector<int>>();
  k.boot_root([&k, depth, probes, path] {
    // Build root[30] -> cnode -> cnode -> ... -> endpoint.
    int prev_slot = 30;
    k.retype(Sel4Kernel::kRootUntypedSlot, ObjType::kCNode, prev_slot, 16);
    path->push_back(prev_slot);
    for (int d = 1; d < depth; ++d) {
      const int slot = 30 + d;
      k.retype(Sel4Kernel::kRootUntypedSlot, ObjType::kCNode, slot, 16);
      k.cnode_copy_into(prev_slot, slot, 4, CapRights::all());
      path->push_back(4);
      prev_slot = slot;
    }
    k.retype(Sel4Kernel::kRootUntypedSlot, ObjType::kEndpoint, 29);
    k.cnode_copy_into(prev_slot, 29, 7, CapRights::all());
    path->push_back(7);
    // Wait: everything after this is driven by run_for below.
    for (;;) {
      if (k.probe_path(*path) == sel4::Sel4Error::kOk) ++(*probes);
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(*probes));
  state.counters["depth"] = depth;
}
BENCHMARK(BM_CapLookupDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Full CSpace enumeration: the attacker's brute force (§IV.D.3).
static void BM_CapBruteForceSweep(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  sim::Machine m;
  Sel4Kernel k(m);
  auto sweeps = std::make_shared<std::uint64_t>(0);
  auto found = std::make_shared<std::uint64_t>(0);
  k.boot_root([&k, sweeps, found, slots] {
    for (;;) {
      int hits = 0;
      for (int s = 0; s < slots; ++s) {
        if (k.probe_own_slot(s)) ++hits;
      }
      *found = static_cast<std::uint64_t>(hits);
      ++(*sweeps);
    }
  });
  // Give the root a CSpace of the requested size? The default CSpace is
  // fixed; sweep over min(slots, cspace) — probe_own_slot on an
  // out-of-range slot is a cheap bounds check, which is also what a real
  // attacker's failed lookups cost.
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(*sweeps * static_cast<std::uint64_t>(slots)));
  state.counters["caps_found"] = static_cast<double>(*found);
}
BENCHMARK(BM_CapBruteForceSweep)->Arg(64)->Arg(256)->Arg(1024)->UseRealTime();

// Copy/mint/delete churn: the bootstrap's dominant operations.
static void BM_CapMintDelete(benchmark::State& state) {
  sim::Machine m;
  Sel4Kernel k(m);
  auto ops = std::make_shared<std::uint64_t>(0);
  k.boot_root([&k, ops] {
    k.retype(Sel4Kernel::kRootUntypedSlot, ObjType::kEndpoint, 10);
    for (;;) {
      if (k.cnode_mint(10, 11, CapRights::w(), 77) == sel4::Sel4Error::kOk &&
          k.cnode_delete(11) == sel4::Sel4Error::kOk) {
        ++(*ops);
      }
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(*ops));
}
BENCHMARK(BM_CapMintDelete)->UseRealTime();

BENCHMARK_MAIN();
