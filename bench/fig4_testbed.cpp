// FIG4 — the simulated counterpart of the paper's testbed photo:
// BeagleBone + BMP180 temperature sensor + fan actuator + on-board LED.
// Prints a device-level trace showing sensor quantisation/noise against
// ground truth and the actuator/LED transitions during a manually-heated
// episode (the paper "manually heat[s] up the environment for emulation").
#include <cstdio>

#include "devices/devices.hpp"
#include "physics/room.hpp"
#include "sim/machine.hpp"

namespace devices = mkbas::devices;
namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

int main() {
  std::printf(
      "FIG4: simulated testbed (BMP180 + fan/heater + LED alarm)\n"
      "=========================================================\n\n");
  sim::Machine m(7);
  physics::RoomModel room({.capacitance_j_per_k = 1.0e5,
                           .loss_w_per_k = 90.0,
                           .initial_temp_c = 21.0});
  room.set_outdoor(physics::OutdoorSpec::constant(12.0));
  devices::HeaterActuator heater(2000.0);
  devices::AlarmLed led;
  devices::PlantCoupler coupler(m, room, heater, led);
  devices::Bmp180Sensor sensor(room, m.rng(), 0.08);

  // Manual heating episode: external heat source between minutes 2 and 6
  // (a hand/hairdryer near the sensor in the paper's testbed).
  m.at(sim::minutes(2), [&] { room.set_disturbance_w(1500.0); });
  m.at(sim::minutes(6), [&] { room.set_disturbance_w(0.0); });
  // Fan (actuator) runs between minutes 7 and 10; LED blinks at minute 4.
  m.at(sim::minutes(7), [&] { heater.set_on(true, m.now()); });
  m.at(sim::minutes(10), [&] { heater.set_on(false, m.now()); });
  m.at(sim::minutes(4), [&] { led.set_on(true, m.now()); });
  m.at(sim::minutes(5), [&] { led.set_on(false, m.now()); });

  std::printf("  time(min)  true_temp  bmp180_reading  delta  fan  led\n");
  std::printf("  -----------------------------------------------------\n");
  for (int step = 0; step <= 24; ++step) {
    const sim::Time t = step * sim::sec(30);
    m.run_until(t);
    const double truth = room.temperature_c();
    const double read = sensor.read_temperature_c();
    std::printf("  %7.1f    %7.3f     %6.1f        %+5.2f  %-3s  %s\n",
                static_cast<double>(t) / 60e6, truth, read, read - truth,
                heater.is_on() ? "on" : "off", led.is_on() ? "ON" : "off");
  }

  std::printf("\n  actuator transitions recorded: %zu, LED transitions: %zu\n",
              heater.transitions().size(), led.transitions().size());
  std::printf(
      "  BMP180 model: 0.1C quantisation + gaussian noise (sigma 0.08C),\n"
      "  matching the part's datasheet-level behaviour.\n");
  return 0;
}
