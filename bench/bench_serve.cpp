// S — the experiment daemon. One JSON artifact (BENCH_serve.json):
//
//  1. Cache-hit throughput: an in-process daemon primed with one fabric
//     cell, then hammered over real loopback sockets by N keep-alive
//     clients posting the identical canonical request. Served entirely
//     from the content-addressable store — hits/sec is the
//     host-dependent signal (gated relatively, like the other benches),
//     with p50/p99 round-trip latency alongside.
//  2. Observability arm: the same storm against a second daemon with
//     request tracing ON, one SSE subscriber draining /events and a
//     thread scraping /metrics during its storms — the whole
//     serve-plane observability stack under load. Off/obs storms are
//     INTERLEAVED rep by rep (best-of-reps each) so slow machine drift
//     cancels out of the comparison. The gate: tracing + events +
//     scrapes may cost at most a few percent of cache-hit throughput
//     (obs_overhead_pct, ceiling enforced by check_regression.py).
//  3. Single execution per daemon: priming plus the whole hit storm
//     must run the experiment exactly once.
//  4. Determinism: every served artifact must equal a direct in-process
//     run_request() byte-for-byte, and GET /replay must verify the
//     cached bundle against a fresh execution — measured on the
//     tracing daemon, so the observability plane provably never leaks
//     host time into a bundle.
//
// The last stdout line is the JSON summary.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/run_request.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace core = mkbas::core;
namespace serve = mkbas::serve;

using Clock = std::chrono::steady_clock;

namespace {

/// The canonical body of the cell every client posts — the same cheap
/// 3-zone fabric request the serve tests use.
const char kBody[] =
    "{\"attack\":\"spoof-write\",\"mode\":\"fabric\",\"seed\":7,"
    "\"zones\":3}";

core::ExperimentRequest bench_request() {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kFabric;
  r.zones = 3;
  r.seed = 7;
  r.attack = "spoof-write";
  return r;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Prime the daemon's one cell (poll until ready). False on error.
bool prime(int port, std::string* err) {
  serve::HttpClient c(port, "primer");
  for (int i = 0; i < 500; ++i) {
    serve::HttpResponse resp;
    if (!c.post("/run", kBody, &resp, err)) return false;
    if (contains(resp.body, "\"status\":\"ready\"")) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  *err = "cell never became ready";
  return false;
}

struct StormResult {
  bool ok = false;
  double wall_s = 0.0;
  double rate = 0.0;
  std::vector<double> lat_us;  // sorted
};

/// One cache-hit storm: `clients` keep-alive connections, each posting
/// the identical request `per_client` times.
StormResult storm(int port, int clients, int per_client) {
  StormResult res;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::vector<bool> ok(static_cast<std::size_t>(clients), false);
  const auto t0 = Clock::now();
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&, ci] {
      const auto idx = static_cast<std::size_t>(ci);
      serve::HttpClient c(port, "bench-" + std::to_string(ci));
      lat[idx].reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        serve::HttpResponse resp;
        std::string cerr;
        const auto a = Clock::now();
        if (!c.post("/run", kBody, &resp, &cerr) || resp.status != 200 ||
            !contains(resp.body, "\"status\":\"ready\"")) {
          return;  // ok[idx] stays false
        }
        const auto b = Clock::now();
        lat[idx].push_back(
            std::chrono::duration<double, std::micro>(b - a).count());
      }
      ok[idx] = true;
    });
  }
  for (auto& t : threads) t.join();
  res.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  res.ok = std::all_of(ok.begin(), ok.end(), [](bool b) { return b; });
  for (const auto& v : lat) {
    res.lat_us.insert(res.lat_us.end(), v.begin(), v.end());
  }
  std::sort(res.lat_us.begin(), res.lat_us.end());
  const int total = per_client * clients;
  res.rate =
      res.wall_s > 0 ? static_cast<double>(total) / res.wall_s : 0.0;
  return res;
}

/// Raw SSE subscriber draining GET /events for the whole observed arm.
/// HttpClient can't be used (the response has no Content-Length).
class SseDrain {
 public:
  bool start(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return false;
    }
    const std::string sub = "GET /events HTTP/1.1\r\nHost: b\r\n\r\n";
    if (::send(fd_, sub.data(), sub.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(sub.size())) {
      return false;
    }
    reader_ = std::thread([this] {
      char buf[16 * 1024];
      for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n <= 0) return;
        bytes_ += static_cast<std::uint64_t>(n);
        for (ssize_t i = 0; i < n; ++i) {
          // Frame separator "\n\n": count completed frames.
          if (buf[i] == '\n' && last_was_nl_) ++frames_;
          last_was_nl_ = buf[i] == '\n';
        }
      }
    });
    return true;
  }
  void stop() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  int fd_ = -1;
  std::thread reader_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bytes_{0};
  bool last_was_nl_ = false;  // reader thread only
};

}  // namespace

int main(int argc, char** argv) {
  int hits = 5000;
  int clients = 4;
  int jobs = 2;
  int reps = 6;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hits") == 0 && i + 1 < argc) {
      hits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }
  if (clients < 1) clients = 1;
  if (hits < clients) hits = clients;
  if (reps < 1) reps = 1;
  const int per_client = hits / clients;
  const int total = per_client * clients;

  std::printf("S: experiment daemon\n");
  const auto req = bench_request();
  const std::string key = req.cell_key_hex();
  std::string err;

  // Both daemons up front: arm "off" is the bare cache-hit path, arm
  // "obs" carries the full observability plane.
  serve::DaemonOptions off_opts;
  off_opts.port = 0;
  off_opts.jobs = jobs;
  off_opts.tracing = false;
  serve::Daemon off(off_opts);
  serve::DaemonOptions obs_opts;
  obs_opts.port = 0;
  obs_opts.jobs = jobs;
  obs_opts.tracing = true;
  serve::Daemon obs(obs_opts);
  if (!off.start(&err) || !obs.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    return 1;
  }
  if (!prime(off.port(), &err)) {
    std::fprintf(stderr, "bench_serve: prime(off): %s\n", err.c_str());
    return 1;
  }
  if (!prime(obs.port(), &err)) {
    std::fprintf(stderr, "bench_serve: prime(obs): %s\n", err.c_str());
    return 1;
  }

  // The SSE subscriber stays connected across all reps; it only sees
  // traffic while the obs daemon is stormed. The /metrics scraper is
  // gated to obs storms so it can never slow the off arm.
  SseDrain sse;
  if (!sse.start(obs.port())) {
    std::fprintf(stderr, "bench_serve: SSE subscribe failed\n");
    return 1;
  }
  std::atomic<bool> scraping{true};
  std::atomic<bool> scrape_active{false};
  std::uint64_t scrapes = 0, scrape_bytes = 0;
  std::thread scraper([&] {
    serve::HttpClient c(obs.port(), "scraper");
    while (scraping.load()) {
      if (scrape_active.load()) {
        serve::HttpResponse resp;
        std::string cerr;
        if (c.get("/metrics", &resp, &cerr) && resp.status == 200) {
          ++scrapes;
          scrape_bytes = resp.body.size();
        }
      }
      // An aggressive-but-sane scrape cadence (real collectors poll in
      // seconds); several scrapes still land inside every obs storm.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Interleaved best-of-reps: off then obs each rep, so slow machine
  // drift hits both arms equally. The overhead estimate is the BEST
  // paired ratio across reps — scheduler noise only ever inflates the
  // apparent cost, so the minimum-overhead pair is the closest estimate
  // of the intrinsic cost of the observability plane.
  StormResult a, b;
  double best_ratio = 0.0;  // max over reps of obs_rate / off_rate
  for (int r = 0; r < reps; ++r) {
    StormResult s_off = storm(off.port(), clients, per_client);
    if (!s_off.ok) {
      std::fprintf(stderr, "bench_serve: off storm rep %d failed\n", r);
      return 1;
    }
    scrape_active.store(true);
    StormResult s_obs = storm(obs.port(), clients, per_client);
    scrape_active.store(false);
    if (!s_obs.ok) {
      std::fprintf(stderr, "bench_serve: obs storm rep %d failed\n", r);
      return 1;
    }
    std::printf("rep %d          : off %.0f hits/s, obs %.0f hits/s\n", r,
                s_off.rate, s_obs.rate);
    if (s_off.rate > 0) {
      best_ratio = std::max(best_ratio, s_obs.rate / s_off.rate);
    }
    if (s_off.rate > a.rate) a = std::move(s_off);
    if (s_obs.rate > b.rate) b = std::move(s_obs);
  }
  a.ok = b.ok = true;
  scraping.store(false);
  scraper.join();

  const bool off_single = off.executions() == 1;
  const bool obs_single = obs.executions() == 1;
  const std::uint64_t off_execs = off.executions();
  off.shutdown();
  const std::uint64_t sse_dropped = obs.events().dropped();
  const double a_p50 = percentile(a.lat_us, 0.50);
  const double a_p99 = percentile(a.lat_us, 0.99);
  const double b_p50 = percentile(b.lat_us, 0.50);
  const double b_p99 = percentile(b.lat_us, 0.99);
  const double overhead_pct = 100.0 * (1.0 - best_ratio);
  std::printf("hits (off)     : %d over %d clients x %d reps, best "
              "%.0f hits/s (p50 %.1f us, p99 %.1f us)\n",
              total, clients, reps, a.rate, a_p50, a_p99);
  std::printf("hits (obs)     : best %.0f hits/s (p50 %.1f us, p99 %.1f us)"
              " -> overhead %+.2f%%\n",
              b.rate, b_p50, b_p99, overhead_pct);
  std::printf("events         : %llu SSE frames (%llu bytes) to 1 "
              "subscriber, %llu dropped; %llu /metrics scrapes "
              "(%llu bytes each)\n",
              static_cast<unsigned long long>(sse.frames()),
              static_cast<unsigned long long>(sse.bytes()),
              static_cast<unsigned long long>(sse_dropped),
              static_cast<unsigned long long>(scrapes),
              static_cast<unsigned long long>(scrape_bytes));

  const bool single_execution = off_single && obs_single;
  std::printf("executions     : off %llu, obs %llu (%s)\n",
              static_cast<unsigned long long>(off_execs),
              static_cast<unsigned long long>(obs.executions()),
              single_execution ? "single each" : "DUPLICATED");

  // Byte identity on the TRACING daemon: host-time observability must
  // not perturb one byte of the deterministic bundle.
  const auto direct =
      core::run_request(req, core::all_deterministic_artifacts());
  bool deterministic = single_execution;
  {
    serve::HttpClient c(obs.port(), "verify");
    for (const auto& [name, text] : direct.artifacts) {
      serve::HttpResponse resp;
      std::string cerr;
      if (!c.get("/result/" + key + "?artifact=" + name, &resp, &cerr) ||
          resp.status != 200 || resp.body != text) {
        std::printf("artifact       : %s DIVERGED from direct run\n",
                    name.c_str());
        deterministic = false;
      }
    }
  }
  if (deterministic) {
    std::printf("artifacts      : %zu kinds byte-identical to direct run\n",
                direct.artifacts.size());
  }

  // Replay: the daemon re-executes and compares against its own cache.
  bool replay_identical = false;
  {
    serve::HttpClient c(obs.port(), "replay");
    serve::HttpResponse resp;
    std::string cerr;
    if (c.get("/replay/" + key, &resp, &cerr) && resp.status == 200) {
      replay_identical = contains(resp.body, "\"identical\":true");
    }
  }
  std::printf("replay         : %s\n",
              replay_identical ? "byte-identical" : "DIVERGED");
  sse.stop();
  obs.shutdown();

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_serve\",\"clients\":%d,\"hits\":%d,\"jobs\":%d,"
      "\"reps\":%d,\"cores\":%u,\"wall_s\":%.3f,\"hits_per_sec\":%.1f,"
      "\"p50_us\":%.1f,\"p99_us\":%.1f,\"hits_per_sec_obs\":%.1f,"
      "\"p50_us_obs\":%.1f,\"p99_us_obs\":%.1f,\"obs_overhead_pct\":%.2f,"
      "\"sse_frames\":%llu,\"sse_dropped\":%llu,\"metrics_scrapes\":%llu,"
      "\"metrics_bytes\":%llu,\"executions\":%llu,\"executions_obs\":%llu,"
      "\"key\":\"%s\",\"deterministic\":%s,\"replay_identical\":%s}",
      clients, total, jobs, reps, std::thread::hardware_concurrency(),
      a.wall_s, a.rate, a_p50, a_p99, b.rate, b_p50, b_p99, overhead_pct,
      static_cast<unsigned long long>(sse.frames()),
      static_cast<unsigned long long>(sse_dropped),
      static_cast<unsigned long long>(scrapes),
      static_cast<unsigned long long>(scrape_bytes),
      static_cast<unsigned long long>(off_execs),
      static_cast<unsigned long long>(obs.executions()), key.c_str(),
      deterministic ? "true" : "false",
      replay_identical ? "true" : "false");
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  return deterministic && replay_identical ? 0 : 1;
}
