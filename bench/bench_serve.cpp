// S — the experiment daemon. One JSON artifact (BENCH_serve.json):
//
//  1. Cache-hit throughput: an in-process daemon primed with one fabric
//     cell, then hammered over real loopback sockets by N keep-alive
//     clients posting the identical canonical request. Served entirely
//     from the content-addressable store — hits/sec is the
//     host-dependent signal (gated relatively, like the other benches),
//     with p50/p99 round-trip latency alongside.
//  2. Single execution: after priming plus the whole hit storm, the
//     daemon must have run the experiment exactly once.
//  3. Determinism: every served artifact must equal a direct in-process
//     run_request() byte-for-byte, and GET /replay must verify the
//     cached bundle against a fresh execution.
//
// The last stdout line is the JSON summary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/run_request.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace core = mkbas::core;
namespace serve = mkbas::serve;

using Clock = std::chrono::steady_clock;

namespace {

/// The canonical body of the cell every client posts — the same cheap
/// 3-zone fabric request the serve tests use.
const char kBody[] =
    "{\"attack\":\"spoof-write\",\"mode\":\"fabric\",\"seed\":7,"
    "\"zones\":3}";

core::ExperimentRequest bench_request() {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kFabric;
  r.zones = 3;
  r.seed = 7;
  r.attack = "spoof-write";
  return r;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  int hits = 2000;
  int clients = 4;
  int jobs = 2;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hits") == 0 && i + 1 < argc) {
      hits = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }
  if (clients < 1) clients = 1;
  if (hits < clients) hits = clients;

  std::printf("S: experiment daemon\n");

  serve::DaemonOptions opts;
  opts.port = 0;  // ephemeral
  opts.jobs = jobs;
  serve::Daemon d(opts);
  std::string err;
  if (!d.start(&err)) {
    std::fprintf(stderr, "bench_serve: %s\n", err.c_str());
    return 1;
  }
  const int port = d.port();
  const auto req = bench_request();
  const std::string key = req.cell_key_hex();

  // Prime: one miss, polled until the executor completes the cell.
  {
    serve::HttpClient c(port, "primer");
    bool ready = false;
    for (int i = 0; i < 500 && !ready; ++i) {
      serve::HttpResponse resp;
      if (!c.post("/run", kBody, &resp, &err)) {
        std::fprintf(stderr, "bench_serve: prime: %s\n", err.c_str());
        return 1;
      }
      ready = contains(resp.body, "\"status\":\"ready\"");
      if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!ready) {
      std::fprintf(stderr, "bench_serve: cell never became ready\n");
      return 1;
    }
  }
  std::printf("cell           : %s primed, %llu execution(s)\n", key.c_str(),
              static_cast<unsigned long long>(d.executions()));

  // Hit storm: every request after priming is a pure cache hit.
  const int per_client = hits / clients;
  std::vector<std::vector<double>> lat_us(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::vector<bool> ok(static_cast<std::size_t>(clients), false);
  const auto t0 = Clock::now();
  for (int ci = 0; ci < clients; ++ci) {
    threads.emplace_back([&, ci] {
      const auto idx = static_cast<std::size_t>(ci);
      serve::HttpClient c(port, "bench-" + std::to_string(ci));
      lat_us[idx].reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        serve::HttpResponse resp;
        std::string cerr;
        const auto a = Clock::now();
        if (!c.post("/run", kBody, &resp, &cerr) || resp.status != 200 ||
            !contains(resp.body, "\"status\":\"ready\"")) {
          return;  // ok[idx] stays false
        }
        const auto b = Clock::now();
        lat_us[idx].push_back(
            std::chrono::duration<double, std::micro>(b - a).count());
      }
      ok[idx] = true;
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = Clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  const bool all_ok =
      std::all_of(ok.begin(), ok.end(), [](bool b) { return b; });

  std::vector<double> all_lat;
  for (const auto& v : lat_us) all_lat.insert(all_lat.end(), v.begin(), v.end());
  std::sort(all_lat.begin(), all_lat.end());
  const int total = per_client * clients;
  const double rate = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  const double p50 = percentile(all_lat, 0.50);
  const double p99 = percentile(all_lat, 0.99);
  std::printf("hits           : %d over %d clients, %.2f s wall, "
              "%.0f hits/s\n",
              total, clients, wall_s, rate);
  std::printf("latency        : p50 %.1f us, p99 %.1f us (round trip)\n",
              p50, p99);

  const bool single_execution = d.executions() == 1;
  std::printf("executions     : %llu (%s)\n",
              static_cast<unsigned long long>(d.executions()),
              single_execution ? "single" : "DUPLICATED");

  // Byte identity: every cached artifact vs a direct in-process run.
  const auto direct =
      core::run_request(req, core::all_deterministic_artifacts());
  bool deterministic = all_ok && single_execution;
  {
    serve::HttpClient c(port, "verify");
    for (const auto& [name, text] : direct.artifacts) {
      serve::HttpResponse resp;
      std::string cerr;
      if (!c.get("/result/" + key + "?artifact=" + name, &resp, &cerr) ||
          resp.status != 200 || resp.body != text) {
        std::printf("artifact       : %s DIVERGED from direct run\n",
                    name.c_str());
        deterministic = false;
      }
    }
  }
  if (deterministic) {
    std::printf("artifacts      : %zu kinds byte-identical to direct run\n",
                direct.artifacts.size());
  }

  // Replay: the daemon re-executes and compares against its own cache.
  bool replay_identical = false;
  {
    serve::HttpClient c(port, "replay");
    serve::HttpResponse resp;
    std::string cerr;
    if (c.get("/replay/" + key, &resp, &cerr) && resp.status == 200) {
      replay_identical = contains(resp.body, "\"identical\":true");
    }
  }
  std::printf("replay         : %s\n",
              replay_identical ? "byte-identical" : "DIVERGED");
  d.shutdown();

  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_serve\",\"clients\":%d,\"hits\":%d,\"jobs\":%d,"
      "\"cores\":%u,\"wall_s\":%.3f,\"hits_per_sec\":%.1f,"
      "\"p50_us\":%.1f,\"p99_us\":%.1f,\"executions\":%llu,"
      "\"key\":\"%s\",\"deterministic\":%s,\"replay_identical\":%s}",
      clients, total, jobs, std::thread::hardware_concurrency(), wall_s,
      rate, p50, p99, static_cast<unsigned long long>(d.executions()),
      key.c_str(), deterministic ? "true" : "false",
      replay_identical ? "true" : "false");
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  return deterministic && replay_identical ? 0 : 1;
}
