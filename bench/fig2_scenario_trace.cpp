// FIG2 — the temperature-control scenario of the paper's Fig. 2 run
// benignly on all three platforms: settle at 22C, operator setpoint step
// to 25C via HTTP at t=10min, heater hardware failure at t=30min (alarm
// must fire), repair at t=45min.
//
// Expected shape (paper): all three implementations provide identical
// control behaviour under benign conditions — the platforms differ only
// under attack (see table1_attack_matrix).
#include <cstdio>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

int main() {
  std::printf(
      "FIG2: benign scenario trace on all three platforms\n"
      "==================================================\n");
  core::BenignRun runs[3];
  const core::Platform platforms[] = {core::Platform::kMinix,
                                      core::Platform::kSel4,
                                      core::Platform::kLinux};
  for (int i = 0; i < 3; ++i) runs[i] = core::run_benign(platforms[i]);

  std::printf(
      "\n  time   | MINIX3+ACM        | seL4/CAmkES       | Linux\n"
      "  (min)  | temp  htr alm     | temp  htr alm     | temp  htr alm\n"
      "  -------+-------------------+-------------------+---------------\n");
  for (sim::Time t = 0; t <= sim::minutes(60); t += sim::minutes(2)) {
    std::printf("  %5lld  |", static_cast<long long>(t / sim::minutes(1)));
    for (int i = 0; i < 3; ++i) {
      const mkbas::devices::PlantSample* at = nullptr;
      for (const auto& s : runs[i].history) {
        if (s.time >= t) {
          at = &s;
          break;
        }
      }
      if (at != nullptr) {
        std::printf(" %5.2f  %s  %s      |", at->true_temp_c,
                    at->heater_on ? "on " : "off",
                    at->alarm_on ? "ON " : "off");
      } else {
        std::printf("   -                |");
      }
    }
    std::printf("\n");
  }

  std::printf("\n  summary:\n");
  for (int i = 0; i < 3; ++i) {
    int status_ok = 0, posts_ok = 0;
    for (const auto& ex : runs[i].http) {
      if (ex.answered < 0) continue;
      if (ex.request.method == "GET" && ex.response.status == 200) {
        ++status_ok;
      }
      if (ex.request.method == "POST" && ex.response.status == 200) {
        ++posts_ok;
      }
    }
    const auto& s = runs[i].safety;
    std::printf(
        "  %-12s control alive: %s; alarm property: %s; spurious alarms: "
        "%s\n               http: %d status polls ok, %d setpoint posts ok; "
        "ctx-switches=%llu kernel-entries=%llu\n",
        core::to_string(platforms[i]), s.control_alive ? "yes" : "NO",
        s.alarm_violation ? "VIOLATED" : "held", s.spurious_alarm ? "YES" : "none",
        status_ok, posts_ok,
        static_cast<unsigned long long>(runs[i].context_switches),
        static_cast<unsigned long long>(runs[i].kernel_entries));
  }
  std::printf(
      "\n  (the temperature leaves the band only during the injected\n"
      "   heater hardware failure, during which the alarm correctly\n"
      "   fires within the timeout and clears after repair)\n");
  return 0;
}
