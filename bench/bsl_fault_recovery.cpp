// F — fault-injection campaign: the reference sensor-crash plan (crash
// the temperature sensor driver at t=30s, then the web interface at
// t=40s) against all three platforms.
//
// Expected shape: MINIX's reincarnation server and the CAmkES
// restart-from-spec monitor bring the loop back within a bounded virtual
// MTTR, and the reincarnated web interface still holds its *restricted*
// ACM row (the post-restart spoof probe lands 0/N). The Linux baseline
// has nothing watching its processes: the loop stays down and the room
// drifts toward the outdoor temperature.
//
// The three platform runs are independent campaign cells; pass --jobs N
// to fan them across threads (results are identical for any jobs value).
//
// The last stdout line is a machine-readable JSON summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace core = mkbas::core;
namespace fault = mkbas::fault;
namespace sim = mkbas::sim;

namespace {

const char* json_key(core::Platform p) {
  switch (p) {
    case core::Platform::kMinix:
      return "minix";
    case core::Platform::kSel4:
      return "sel4";
    case core::Platform::kLinux:
      return "linux";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    }
  }
  std::printf("F: fault-injection campaign — reference sensor-crash plan\n");

  const fault::FaultPlan plan = fault::reference_sensor_crash_plan();
  std::printf("plan '%s' (seed %llu):\n%s\n", plan.name().c_str(),
              static_cast<unsigned long long>(plan.seed()),
              plan.describe().c_str());

  core::RunOptions opts;
  opts.settle = sim::minutes(1);
  opts.post = sim::minutes(6);
  opts.seed = 42;
  // Start the room at the setpoint so the post-fault excursion measures
  // the outage, not the initial warm-up.
  opts.scenario.room.initial_temp_c = opts.scenario.control.initial_setpoint_c;
  // Probe the reincarnated web interface (crashed at t=40s) well after
  // every restart policy has fired.
  const sim::Time probe_at = sim::sec(70);

  const auto campaign = core::run_campaign(
      core::fault_campaign_cells(plan, opts, probe_at), jobs);
  const std::vector<core::FaultRunResult> rows = core::fault_rows(campaign);

  std::printf("%s\n", core::format_fault_table(rows).c_str());

  std::string json = "{\"bench\":\"bench_fault_recovery\",\"plan\":\"" +
                     plan.name() + "\",\"seed\":42";
  for (const auto& r : rows) {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        ",\"%s\":{\"recovered\":%s,\"mttr_s\":%.3f,\"restarts\":%d,"
        "\"max_ctl_gap_s\":%.3f,\"excursion_c\":%.3f,\"faults\":%llu,"
        "\"spoof_succeeded\":%s,\"spoof_attempts\":%d}",
        json_key(r.platform), r.loop_recovered ? "true" : "false",
        r.mttr < 0 ? -1.0 : sim::to_seconds(r.mttr), r.restarts,
        sim::to_seconds(r.max_ctl_gap), r.max_excursion_after_fault_c,
        static_cast<unsigned long long>(r.faults_injected),
        r.web_spoof.primitive_succeeded ? "true" : "false",
        r.web_spoof.attempts);
    json += buf;
  }
  json += "}";
  std::printf("%s\n", json.c_str());
  return 0;
}
