// Ablation — what does the security actually cost? (DESIGN.md design
// choices.) Three questions:
//  1. Does the ACM check make MINIX IPC slower as the policy grows?
//     (kernel check is one hash probe: should be ~flat)
//  2. What does PM-audited kill cost versus a raw kernel kill?
//  3. What does the CAmkES bootstrap cost as component count grows?
#include <benchmark/benchmark.h>

#include "camkes/camkes.hpp"
#include "minix/kernel.hpp"

namespace sim = mkbas::sim;
namespace minix = mkbas::minix;

namespace {

minix::AcmPolicy padded_policy(int extra_cells) {
  minix::AcmPolicy acm;
  acm.allow_mask(10, 11, ~0ULL);
  acm.allow_mask(11, 10, ~0ULL);
  acm.allow_mask(10, minix::MinixKernel::kPmAcId, ~0ULL);
  acm.allow_mask(11, minix::MinixKernel::kPmAcId, ~0ULL);
  acm.allow_mask(minix::MinixKernel::kPmAcId, 10, ~0ULL);
  acm.allow_mask(minix::MinixKernel::kPmAcId, 11, ~0ULL);
  // Pad with unrelated cells: a big building's policy.
  for (int i = 0; i < extra_cells; ++i) {
    acm.allow_mask(1000 + i, 2000 + (i % 97), 0xFF);
  }
  return acm;
}

}  // namespace

// MINIX rendezvous round trip vs ACM size: the per-message mandatory
// check is a single hash lookup, so cost must stay flat.
static void BM_MinixIpcVsAcmSize(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  sim::Machine m;
  minix::MinixKernel k(m, padded_policy(cells));
  auto ops = std::make_shared<std::uint64_t>(0);
  const minix::Endpoint server = k.srv_fork2("server", 10, [&k] {
    for (;;) {
      minix::Message msg;
      if (k.ipc_receive(minix::Endpoint::any(), msg) ==
          minix::IpcResult::kOk) {
        minix::Message reply;
        reply.m_type = 0;
        k.ipc_senda(msg.source(), reply);
      }
    }
  });
  k.srv_fork2("client", 11, [&k, server, ops] {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendrec(server, msg) == minix::IpcResult::kOk) ++(*ops);
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(*ops));
  state.counters["acm_cells"] = cells + 6;
  state.counters["acm_bytes"] =
      static_cast<double>(k.policy().memory_footprint_bytes());
}
BENCHMARK(BM_MinixIpcVsAcmSize)->Arg(0)->Arg(100)->Arg(10000)->Arg(100000)->UseRealTime();

// Audited kill (message to PM, policy check, kernel kill) vs the raw
// kernel primitive: the price of the §III.B auditing path.
static void BM_MinixAuditedKill(benchmark::State& state) {
  sim::Machine m;
  minix::AcmPolicy acm = padded_policy(0);
  acm.allow_mask(12, minix::MinixKernel::kPmAcId, ~0ULL);
  acm.allow_mask(minix::MinixKernel::kPmAcId, 12, ~0ULL);
  acm.allow_kill(12, 12);  // the victims inherit the reaper's ac_id
  minix::MinixKernel k(m, std::move(acm));
  auto ops = std::make_shared<std::uint64_t>(0);
  k.srv_fork2("reaper", 12, [&k, ops] {
    for (;;) {
      // Spawn a victim and kill it through PM's audited path.
      auto res = k.fork2("victim", 12,
                         [&k] { k.machine().sleep_for(sim::sec(60)); });
      if (res.status != minix::IpcResult::kOk) {
        k.machine().sleep_for(sim::msec(1));
        continue;
      }
      if (k.pm_kill(res.child) == minix::IpcResult::kOk) ++(*ops);
    }
  });
  for (auto _ : state) {
    m.run_for(sim::msec(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(*ops));
}
BENCHMARK(BM_MinixAuditedKill)->UseRealTime();

// CAmkES bootstrap: objects created + caps installed + verification,
// as the assembly grows (chain topology: c0 -> c1 -> ... -> cN).
static void BM_CamkesBootstrap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Machine m;
    mkbas::camkes::CamkesSystem sys(m);
    for (int i = 0; i < n; ++i) {
      sys.add_component("c" + std::to_string(i),
                        [](mkbas::camkes::Runtime&) {});
    }
    for (int i = 0; i + 1 < n; ++i) {
      sys.connect("conn" + std::to_string(i), "c" + std::to_string(i), "out",
                  "c" + std::to_string(i + 1), "in");
    }
    sys.instantiate();
    m.run_until(sim::msec(10));
    benchmark::DoNotOptimize(sys.verify_distribution());
  }
  state.counters["components"] = n;
}
BENCHMARK(BM_CamkesBootstrap)->Arg(2)->Arg(8)->Arg(32)->UseRealTime();

BENCHMARK_MAIN();
