// O — causal-span tracing overhead. One JSON artifact (BENCH_obs.json).
//
// Four arms of the same MINIX sendrec round-trip workload, in one
// process:
//   off    — SpanStore disabled (begin/end return immediately)
//   on     — spans enabled, unbounded store (every IPC hop recorded)
//   ring   — spans enabled, small ring buffer (steady-state eviction)
//   series — spans off, windowed series + a health detector fed per op
//            (1 ms windows, 16-deep ring, so eviction churns)
//
// The gate is a *relative* claim, so it holds on any host: the "on" and
// "series" arms must stay within 5% of the "off" arm's nanoseconds per
// operation (bench/check_regression.py, kind bench_obs). The ring arm
// also proves the eviction accounting: spans dropped by the ring are
// counted separately from spans abandoned by process death, and the
// store's conservation invariants must hold after the run; the series
// arm proves the analogous window-ring conservation (total samples ==
// live + evicted + late-dropped) while windows are actively evicted.
//
// The last stdout line is the JSON summary.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "minix/kernel.hpp"
#include "sim/machine.hpp"

namespace sim = mkbas::sim;
namespace minix = mkbas::minix;

namespace {

minix::AcmPolicy open_policy() {
  minix::AcmPolicy acm;
  acm.allow_mask(10, 11, ~0ULL);
  acm.allow_mask(11, 10, ~0ULL);
  return acm;
}

enum class Arm { kOff, kOn, kRing, kSeries };

struct Pass {
  std::uint64_t ops = 0;
  double wall_ns = 0;
  std::uint64_t spans_kept = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t spans_abandoned = 0;
  std::uint64_t series_samples = 0;
  std::uint64_t series_windows_evicted = 0;
  std::uint64_t health_events = 0;
  bool invariants = true;
  double ns_per_op() const {
    return ops > 0 ? wall_ns / static_cast<double>(ops) : 0.0;
  }
};

Pass run_pass(Arm arm, std::size_t ring_capacity) {
  sim::Machine m;
  m.spans().set_enabled(arm == Arm::kOn || arm == Arm::kRing);
  if (arm == Arm::kRing) m.spans().set_capacity(ring_capacity);
  minix::MinixKernel k(m, open_policy());
  // The series arm: one windowed series with deliberately tiny windows
  // (1 ms wide, 16 kept) so the 200 ms run evicts ~180 windows, plus a
  // health detector observing the same stream — the steady-state cost
  // the <5% gate bounds. The input is exactly periodic, so no detector
  // fires (min_sd floors the variance) and the run stays quiet.
  mkbas::obs::Series series;
  mkbas::obs::HealthSignal signal;
  if (arm == Arm::kSeries) {
    series = m.series().series("bench.rt", sim::msec(1), 16);
    signal = m.health().signal("bench.rt_us");
  }
  const bool feed = arm == Arm::kSeries;
  auto ops = std::make_shared<std::uint64_t>(0);
  const minix::Endpoint server = k.srv_fork2("server", 10, [&k] {
    for (;;) {
      minix::Message msg;
      if (k.ipc_receive(minix::Endpoint::any(), msg) !=
          minix::IpcResult::kOk) {
        continue;
      }
      minix::Message reply;
      reply.m_type = 0;
      k.ipc_senda(msg.source(), reply);
    }
  });
  // mutable: record()/observe() are non-const on the captured handles
  // (std::function invokes its target regardless of its own constness).
  k.srv_fork2("client", 11,
              [&k, &m, server, ops, feed, series, signal]() mutable {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendrec(server, msg) == minix::IpcResult::kOk) {
        ++*ops;
        if (feed) {
          const sim::Time t = m.now();
          series.record(t, 42.0);
          signal.observe(t, 42.0);
        }
      }
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  m.run_for(sim::msec(200));
  const auto t1 = std::chrono::steady_clock::now();
  m.health().flush(m.now());
  Pass p;
  p.ops = *ops;
  p.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  const auto& s = m.spans();
  p.spans_kept = s.size();
  p.spans_dropped = s.dropped();
  p.spans_abandoned = s.total_abandoned();
  // Conservation: every span begun is open, ended or abandoned; every
  // closed span is either still stored or was evicted by the ring.
  const std::uint64_t open =
      s.total_begun() - s.total_ended() - s.total_abandoned();
  p.invariants =
      s.total_begun() >= s.total_ended() + s.total_abandoned() &&
      s.total_ended() + s.total_abandoned() == s.size() + s.dropped() &&
      ((arm == Arm::kOn || arm == Arm::kRing) || s.total_begun() == 0) &&
      open <= 16;  // only the in-flight handful may still be open
  // Window-ring conservation: every sample ever recorded is live in the
  // ring, was evicted with its window, or arrived too late for the ring.
  const auto& st = m.series();
  p.series_samples = st.total_samples();
  p.series_windows_evicted = st.evicted_windows();
  p.health_events = m.health().events().size() + m.health().suppressed();
  p.invariants = p.invariants &&
                 st.total_samples() == st.live_samples() +
                                           st.evicted_samples() +
                                           st.late_dropped();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_obs.json";
  std::size_t ring = 1024;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--ring") == 0 && i + 1 < argc) {
      ring = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
  }

  std::printf("O: causal-span tracing overhead (MINIX sendrec)\n");

  // Interleave repetitions and keep the fastest pass of each arm: the
  // minimum is the least scheduler-noise-sensitive statistic on shared
  // CI machines.
  Pass best_off, best_on, best_ring, best_series;
  for (int rep = 0; rep < reps; ++rep) {
    const Pass off = run_pass(Arm::kOff, ring);
    const Pass on = run_pass(Arm::kOn, ring);
    const Pass rg = run_pass(Arm::kRing, ring);
    const Pass se = run_pass(Arm::kSeries, ring);
    if (rep == 0 || off.ns_per_op() < best_off.ns_per_op()) best_off = off;
    if (rep == 0 || on.ns_per_op() < best_on.ns_per_op()) best_on = on;
    if (rep == 0 || rg.ns_per_op() < best_ring.ns_per_op()) best_ring = rg;
    if (rep == 0 || se.ns_per_op() < best_series.ns_per_op()) {
      best_series = se;
    }
  }

  auto overhead = [&](const Pass& p) {
    return best_off.ns_per_op() > 0
               ? (p.ns_per_op() - best_off.ns_per_op()) /
                     best_off.ns_per_op() * 100.0
               : 0.0;
  };
  const double on_pct = overhead(best_on);
  const double ring_pct = overhead(best_ring);
  const double series_pct = overhead(best_series);
  // Absolute per-op tracing cost (the within-run on-minus-off delta).
  // This is the apples-to-apples regression signal: the relative
  // percentages above divide by whatever the IPC op costs today, so
  // they swing whenever the base kernel speeds up.
  auto cost_ns = [&](const Pass& p) {
    return p.ns_per_op() - best_off.ns_per_op();
  };
  const double cost_on_ns = cost_ns(best_on);
  const double cost_ring_ns = cost_ns(best_ring);
  const double cost_series_ns = cost_ns(best_series);
  const bool invariants = best_off.invariants && best_on.invariants &&
                          best_ring.invariants && best_series.invariants;
  // The ring arm must actually exercise eviction, and eviction must be
  // accounted as "dropped", never as "abandoned".
  const bool ring_exercised = best_ring.spans_dropped > 0 &&
                              best_ring.spans_kept <= ring &&
                              best_on.spans_dropped == 0;
  // The series arm must churn its window ring (dozens of evictions in a
  // 200 ms run with 1 ms windows) and stay quiet: an exactly periodic
  // input must never trip a detector.
  const bool series_exercised = best_series.series_windows_evicted > 0 &&
                                best_series.series_samples > 0 &&
                                best_series.health_events == 0;

  std::printf("off  : %llu ops, %.1f ns/op\n",
              static_cast<unsigned long long>(best_off.ops),
              best_off.ns_per_op());
  std::printf("on   : %llu ops, %.1f ns/op (%+.2f%%), %llu spans kept\n",
              static_cast<unsigned long long>(best_on.ops),
              best_on.ns_per_op(), on_pct,
              static_cast<unsigned long long>(best_on.spans_kept));
  std::printf("ring : %llu ops, %.1f ns/op (%+.2f%%), %llu kept / %llu "
              "dropped (capacity %zu)\n",
              static_cast<unsigned long long>(best_ring.ops),
              best_ring.ns_per_op(), ring_pct,
              static_cast<unsigned long long>(best_ring.spans_kept),
              static_cast<unsigned long long>(best_ring.spans_dropped),
              ring);
  std::printf("series: %llu ops, %.1f ns/op (%+.2f%%), %llu samples, "
              "%llu windows evicted\n",
              static_cast<unsigned long long>(best_series.ops),
              best_series.ns_per_op(), series_pct,
              static_cast<unsigned long long>(best_series.series_samples),
              static_cast<unsigned long long>(
                  best_series.series_windows_evicted));
  std::printf("accounting: invariants %s, ring eviction %s, window "
              "eviction %s\n",
              invariants ? "hold" : "VIOLATED",
              ring_exercised ? "exercised" : "NOT EXERCISED",
              series_exercised ? "exercised" : "NOT EXERCISED");
  std::printf("cost : on %+.1f ns/op, ring %+.1f ns/op, series %+.1f "
              "ns/op over the off arm\n",
              cost_on_ns, cost_ring_ns, cost_series_ns);

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_obs\",\"invariants\":%s,"
      "\"ns_per_op_off\":%.1f,\"ns_per_op_on\":%.1f,\"ns_per_op_ring\":%.1f,"
      "\"ns_per_op_series\":%.1f,"
      "\"ops_off\":%llu,\"ops_on\":%llu,\"ops_ring\":%llu,"
      "\"ops_series\":%llu,"
      "\"overhead_on_pct\":%.2f,\"overhead_ring_pct\":%.2f,"
      "\"overhead_series_pct\":%.2f,"
      "\"ring_capacity\":%zu,\"ring_dropped\":%llu,\"ring_exercised\":%s,"
      "\"schema_version\":2,"
      "\"series_exercised\":%s,\"series_samples\":%llu,"
      "\"series_windows_evicted\":%llu,"
      "\"span_cost_on_ns\":%.1f,\"span_cost_ring_ns\":%.1f,"
      "\"span_cost_series_ns\":%.1f,\"spans_on\":%llu}",
      invariants ? "true" : "false", best_off.ns_per_op(),
      best_on.ns_per_op(), best_ring.ns_per_op(), best_series.ns_per_op(),
      static_cast<unsigned long long>(best_off.ops),
      static_cast<unsigned long long>(best_on.ops),
      static_cast<unsigned long long>(best_ring.ops),
      static_cast<unsigned long long>(best_series.ops), on_pct, ring_pct,
      series_pct, ring,
      static_cast<unsigned long long>(best_ring.spans_dropped),
      ring_exercised ? "true" : "false",
      series_exercised ? "true" : "false",
      static_cast<unsigned long long>(best_series.series_samples),
      static_cast<unsigned long long>(best_series.series_windows_evicted),
      cost_on_ns, cost_ring_ns, cost_series_ns,
      static_cast<unsigned long long>(best_on.spans_kept));
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  return invariants && ring_exercised && series_exercised ? 0 : 1;
}
