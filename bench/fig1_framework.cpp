// FIG1 — the building security/safety control framework of the paper's
// Fig. 1: legacy devices reached through *secure proxies*. This bench
// contrasts a bare BACnet thermostat with the same device behind the
// proxy under the three network attacks the paper's introduction lists
// for BACnet: spoofing, replay, and denial of service.
//
// Expected shape: the bare device accepts every forged/replayed write;
// the proxied device rejects all of them while legitimate (sealed,
// fresh-sequence) operator traffic still works.
#include <cstdio>

#include "net/bacnet.hpp"
#include "sim/machine.hpp"

namespace net = mkbas::net;
namespace sim = mkbas::sim;

using net::BacnetDevice;
using net::BacnetMsg;
using net::BacnetNetwork;
using net::SecureProxy;

namespace {

BacnetMsg write_msg(std::uint32_t dst, double value) {
  BacnetMsg msg;
  msg.service = BacnetMsg::Service::kWriteProperty;
  msg.src_device = 42;  // claimed identity; the wire does not verify it
  msg.dst_device = dst;
  msg.property = "setpoint";
  msg.value = value;
  return msg;
}

struct Row {
  const char* attack;
  bool bare_succeeded;
  bool proxied_succeeded;
};

}  // namespace

int main() {
  constexpr std::uint64_t kKey = 0x5EC0DE;
  std::printf(
      "FIG1: secure proxies for legacy devices on the SCADA segment\n"
      "============================================================\n\n");

  Row rows[3];

  // --- spoofed WriteProperty ---
  {
    sim::Machine m;
    BacnetNetwork netw(m);
    BacnetDevice bare(10, "bare-thermostat");
    bare.set_property("setpoint", 22.0);
    BacnetDevice legacy(11, "legacy-thermostat");
    legacy.set_property("setpoint", 22.0);
    SecureProxy proxy(legacy, kKey);
    netw.attach(bare);
    netw.attach(proxy);
    netw.send(write_msg(10, 45.0));  // forged, unauthenticated
    netw.send(write_msg(11, 45.0));
    m.run_until(sim::sec(1));
    rows[0] = {"spoofed write", bare.property("setpoint") == 45.0,
               legacy.property("setpoint") == 45.0};
  }

  // --- replayed WriteProperty ---
  {
    sim::Machine m;
    BacnetNetwork netw(m);
    BacnetDevice bare(10, "bare-thermostat");
    bare.set_property("setpoint", 22.0);
    BacnetDevice legacy(11, "legacy-thermostat");
    legacy.set_property("setpoint", 22.0);
    SecureProxy proxy(legacy, kKey);
    netw.attach(bare);
    netw.attach(proxy);
    // Legitimate operator writes 24.0 to both (sealed for the proxy).
    const auto legit_bare = write_msg(10, 24.0);
    const auto legit_sealed = SecureProxy::seal(write_msg(11, 24.0), kKey, 1);
    netw.send(legit_bare);
    netw.send(legit_sealed);
    m.run_until(sim::sec(1));
    // Operator then sets 26.0; attacker replays the captured datagrams.
    bare.set_property("setpoint", 26.0);
    legacy.set_property("setpoint", 26.0);
    netw.send(legit_bare);    // verbatim replay
    netw.send(legit_sealed);  // verbatim replay (stale sequence)
    m.run_until(sim::sec(2));
    rows[1] = {"replayed write", bare.property("setpoint") == 24.0,
               legacy.property("setpoint") == 24.0};
  }

  // --- DoS flood ---
  {
    sim::Machine m;
    BacnetNetwork netw(m);
    BacnetDevice bare(10, "bare-thermostat");
    BacnetDevice legacy(11, "legacy-thermostat");
    SecureProxy proxy(legacy, kKey);
    netw.attach(bare);
    netw.attach(proxy);
    std::size_t accepted_bare = 0, accepted_proxied = 0;
    for (int i = 0; i < 200; ++i) {
      netw.send(write_msg(10, 30.0 + i));
      netw.send(write_msg(11, 30.0 + i));
    }
    m.run_until(sim::sec(5));
    accepted_bare = bare.writes_accepted();
    accepted_proxied = legacy.writes_accepted();
    std::printf(
        "DoS flood: %zu datagrams dropped at bounded inboxes; bare device\n"
        "applied %zu forged writes, proxied device applied %zu.\n\n",
        netw.dropped_count(), accepted_bare, accepted_proxied);
    rows[2] = {"DoS flood writes", accepted_bare > 0, accepted_proxied > 0};
  }

  std::printf("  attack           bare device      behind secure proxy\n");
  std::printf("  -------------------------------------------------------\n");
  for (const auto& r : rows) {
    std::printf("  %-16s %-16s %s\n", r.attack,
                r.bare_succeeded ? "COMPROMISED" : "held",
                r.proxied_succeeded ? "COMPROMISED" : "held");
  }
  std::printf(
      "\n  legitimate sealed operator traffic continues to pass through\n"
      "  the proxy (fresh sequence numbers), so the protection is not a\n"
      "  denial of service of its own.\n");
  return 0;
}
