// T3 — the ACM data structure: the paper chose "a sparse matrix data
// structure for fast lookup and space efficiency" (§III.B). This bench
// quantifies lookup latency and memory footprint of the sparse policy
// against a dense N x N table, across system sizes and policy densities.
//
// Expected shape: lookups are O(1) for both (hash vs index — the dense
// table is somewhat faster per probe); memory is where sparse wins, by
// orders of magnitude for realistic (sparse) building-automation
// policies.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "minix/acm.hpp"
#include "sim/rng.hpp"

namespace minix = mkbas::minix;

namespace {

/// Build matched sparse/fast/dense policies over `n` processes where each
/// process talks to `out_degree` others. `sparse` is the pure sparse-map
/// baseline (dense bound disabled — the configuration this bench has
/// always measured); `fast` is the production AcmPolicy with its default
/// dense fast path and lookup memo; `dense` is the full N x N table.
struct PolicyPair {
  minix::AcmPolicy sparse;
  minix::AcmPolicy fast;
  minix::DenseAcm dense;

  PolicyPair(int n, int out_degree, std::uint64_t seed) : dense(n) {
    sparse.set_dense_bound(-1);
    mkbas::sim::Rng rng(seed);
    for (int src = 0; src < n; ++src) {
      for (int e = 0; e < out_degree; ++e) {
        const int dst = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(n)));
        const std::uint64_t mask = rng.next_u64() & 0xFF;
        sparse.allow_mask(src, dst, mask);
        fast.allow_mask(src, dst, mask);
        dense.allow_mask(src, dst, mask);
      }
    }
  }
};

}  // namespace

static void BM_SparseAcmLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  PolicyPair p(n, degree, 42);
  mkbas::sim::Rng rng(7);
  std::uint64_t allowed = 0;
  for (auto _ : state) {
    const int src = static_cast<int>(rng.next_below(n));
    const int dst = static_cast<int>(rng.next_below(n));
    const int type = static_cast<int>(rng.next_below(8));
    allowed += p.sparse.allowed(src, dst, type) ? 1 : 0;
  }
  benchmark::DoNotOptimize(allowed);
  state.counters["bytes"] =
      static_cast<double>(p.sparse.memory_footprint_bytes());
}
BENCHMARK(BM_SparseAcmLookup)
    ->Args({8, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({1024, 32});

// The production configuration: dense fast path for ids 0..63, memoized
// sparse fallback above. At n=8/64 every probe is an array load; at
// n>=256 most probes fall through to the memo + map.
static void BM_FastAcmLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  PolicyPair p(n, degree, 42);
  mkbas::sim::Rng rng(7);
  std::uint64_t allowed = 0;
  for (auto _ : state) {
    const int src = static_cast<int>(rng.next_below(n));
    const int dst = static_cast<int>(rng.next_below(n));
    const int type = static_cast<int>(rng.next_below(8));
    allowed += p.fast.allowed(src, dst, type) ? 1 : 0;
  }
  benchmark::DoNotOptimize(allowed);
  state.counters["bytes"] =
      static_cast<double>(p.fast.memory_footprint_bytes());
}
BENCHMARK(BM_FastAcmLookup)
    ->Args({8, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({1024, 32});

static void BM_DenseAcmLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  PolicyPair p(n, degree, 42);
  mkbas::sim::Rng rng(7);
  std::uint64_t allowed = 0;
  for (auto _ : state) {
    const int src = static_cast<int>(rng.next_below(n));
    const int dst = static_cast<int>(rng.next_below(n));
    const int type = static_cast<int>(rng.next_below(8));
    allowed += p.dense.allowed(src, dst, type) ? 1 : 0;
  }
  benchmark::DoNotOptimize(allowed);
  state.counters["bytes"] =
      static_cast<double>(p.dense.memory_footprint_bytes());
}
BENCHMARK(BM_DenseAcmLookup)
    ->Args({8, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({1024, 32});

// Denied-by-absence lookups (the common case for an attacker's probes).
static void BM_SparseAcmLookupMiss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PolicyPair p(n, 2, 42);
  mkbas::sim::Rng rng(9);
  std::uint64_t denied = 0;
  for (auto _ : state) {
    // Probe outside the populated id range: guaranteed miss.
    const int src = n + static_cast<int>(rng.next_below(n));
    const int dst = n + static_cast<int>(rng.next_below(n));
    denied += p.sparse.allowed(src, dst, 1) ? 0 : 1;
  }
  benchmark::DoNotOptimize(denied);
}
BENCHMARK(BM_SparseAcmLookupMiss)->Arg(64)->Arg(1024);

// Kill-policy audit lookups (PM's per-kill check).
static void BM_AcmKillAudit(benchmark::State& state) {
  minix::AcmPolicy acm;
  for (int i = 0; i < 64; ++i) acm.allow_kill(i, i + 1);
  mkbas::sim::Rng rng(11);
  std::uint64_t allowed = 0;
  for (auto _ : state) {
    const int src = static_cast<int>(rng.next_below(128));
    const int dst = static_cast<int>(rng.next_below(128));
    allowed += acm.kill_allowed(src, dst) ? 1 : 0;
  }
  benchmark::DoNotOptimize(allowed);
}
BENCHMARK(BM_AcmKillAudit);

// ---- Machine-readable summary ----
//
// After the google-benchmark suite, measure the sparse/dense trade-off
// at a representative size directly (fixed iteration count, steady
// clock) and print one JSON line for scripts and CI to consume.

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  constexpr int kN = 1024;
  constexpr int kDegree = 4;
  constexpr std::uint64_t kIters = 1000000;
  PolicyPair p(kN, kDegree, 42);

  auto time_lookups = [&](auto& policy) {
    mkbas::sim::Rng rng(7);
    std::uint64_t allowed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      const int src = static_cast<int>(rng.next_below(kN));
      const int dst = static_cast<int>(rng.next_below(kN));
      const int type = static_cast<int>(rng.next_below(8));
      allowed += policy.allowed(src, dst, type) ? 1 : 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(allowed);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(kIters);
  };

  const double sparse_ns = time_lookups(p.sparse);
  const double fast_ns = time_lookups(p.fast);
  const double dense_ns = time_lookups(p.dense);
  std::printf(
      "{\"bench\":\"bench_acm\",\"n\":%d,\"degree\":%d,"
      "\"sparse_ns_per_lookup\":%.2f,\"fast_ns_per_lookup\":%.2f,"
      "\"dense_ns_per_lookup\":%.2f,"
      "\"sparse_bytes\":%llu,\"fast_bytes\":%llu,\"dense_bytes\":%llu}\n",
      kN, kDegree, sparse_ns, fast_ns, dense_ns,
      static_cast<unsigned long long>(p.sparse.memory_footprint_bytes()),
      static_cast<unsigned long long>(p.fast.memory_footprint_bytes()),
      static_cast<unsigned long long>(p.dense.memory_footprint_bytes()));
  return 0;
}
