// N — the network fabric. One JSON artifact (BENCH_net.json):
//
//  1. Fabric throughput: an 8-zone benign building run for 20 virtual
//     minutes; datagrams delivered per wall-second is the host-dependent
//     signal (gated relatively, like the campaign bench).
//  2. End-to-end COV latency p99 at the head-end, in *virtual* time —
//     a pure function of (topology, seed), so the gate compares it
//     byte-for-byte on any host.
//  3. Determinism: the same building twice, and the four-cell fabric
//     campaign at --jobs 1 vs --jobs N; every divergence is a failure
//     here, before the regression checker ever sees the file.
//  4. City scale: a 10,000-zone hierarchical building (gateway-only
//     zones, capture/tracing/collect off) through the lookahead engine.
//     The regression gate requires >= 50x the 8-zone seed throughput —
//     the whole point of replacing the epoch barrier.
//  5. Campus sharding: the same multi-building campus at --jobs 1 and
//     --jobs N must replay the same trace hash and counters.
//
// The last stdout line is the JSON summary.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"
#include "core/fabric_run.hpp"
#include "core/hash.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  int zones = 8;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  std::string out = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zones") == 0 && i + 1 < argc) {
      zones = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }

  std::printf("N: BACnet/IP fabric\n");

  core::FabricOptions opts;
  opts.zones = zones;
  opts.seed = 5;
  opts.duration = sim::minutes(20);
  opts.link.loss = 0.01;  // exercise the loss path in the hot loop too

  const auto t0 = Clock::now();
  const auto r1 = core::run_fabric(opts);
  const auto t1 = Clock::now();
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  const auto r2 = core::run_fabric(opts);

  const bool replays = r1.trace_hash == r2.trace_hash &&
                       r1.metrics_json == r2.metrics_json;
  std::printf("building       : %d zones, %.1f virtual min, %.2f s wall\n",
              zones, sim::to_seconds(opts.duration) / 60.0, wall_s);
  const double rate =
      wall_s > 0 ? static_cast<double>(r1.delivered) / wall_s : 0;
  std::printf("throughput     : %llu datagrams delivered, %.0f msg/s\n",
              static_cast<unsigned long long>(r1.delivered), rate);
  std::printf("cov            : %llu notifications, p99 %.3f ms "
              "(virtual)\n",
              static_cast<unsigned long long>(r1.cov_count),
              r1.cov_p99_us / 1000.0);
  std::printf("replay         : %s\n",
              replays ? "byte-identical" : "DIVERGED");

  // The campaign path: four attack cells over a smaller building, fanned
  // across the worker pool, must merge to the sequential bytes.
  core::FabricOptions camp = opts;
  camp.zones = 4;
  camp.duration = sim::minutes(12);
  const auto cells = core::fabric_matrix_cells(camp.zones, camp);
  const auto seq = core::run_campaign(cells, 1);
  const auto par = core::run_campaign(cells, jobs);
  const bool campaign_det = seq.summary_json() == par.summary_json();
  std::printf("campaign       : %zu cells, --jobs %d, %s\n", cells.size(),
              jobs, campaign_det ? "deterministic" : "DIVERGED");

  // City arm: 10k gateway-only zones over 25 floor head-ends, every
  // observability sink that allocates per datagram turned off. This is
  // the configuration the lookahead engine exists for; the epoch
  // barrier's epochs x nodes cost makes it uncompetitive here.
  core::FabricOptions city;
  city.zones = 10000;
  city.topology = mkbas::net::TopologySpec::Kind::kTree;
  city.floors = 25;
  city.seed = 5;
  city.duration = sim::minutes(10);
  city.lite_zones = true;
  city.capture = false;
  city.net_trace = false;
  city.trace_spans = false;
  city.collect = false;
  const auto t2 = Clock::now();
  const auto cr = core::run_fabric(city);
  const auto t3 = Clock::now();
  const double city_wall_s = std::chrono::duration<double>(t3 - t2).count();
  const double city_rate =
      city_wall_s > 0 ? static_cast<double>(cr.delivered) / city_wall_s : 0;
  std::printf("city           : %d zones / %d floors, %.1f virtual min, "
              "%.2f s wall\n",
              city.zones, city.floors,
              sim::to_seconds(city.duration) / 60.0, city_wall_s);
  std::printf("city throughput: %llu datagrams, %.0f msg/s, "
              "%llu causality violations\n",
              static_cast<unsigned long long>(cr.delivered), city_rate,
              static_cast<unsigned long long>(cr.causality_violations));

  // Campus arm: 3 buildings are 3 independent components; shard them
  // across the pool and demand the sequential bytes back.
  core::FabricOptions campus;
  campus.zones = 1200;
  campus.topology = mkbas::net::TopologySpec::Kind::kCampus;
  campus.buildings = 3;
  campus.floors = 4;
  campus.seed = 5;
  campus.duration = sim::minutes(10);
  campus.lite_zones = true;
  campus.capture = false;
  campus.net_trace = false;
  campus.trace_spans = false;
  campus.collect = false;
  campus.jobs = 1;
  const auto campus_seq = core::run_fabric(campus);
  campus.jobs = jobs;
  const auto campus_par = core::run_fabric(campus);
  const bool campus_det =
      campus_seq.trace_hash == campus_par.trace_hash &&
      campus_seq.delivered == campus_par.delivered &&
      campus_seq.cov_count == campus_par.cov_count;
  std::printf("campus         : %d zones / %d buildings, --jobs 1 vs %d, "
              "%s\n",
              campus.zones, campus.buildings, jobs,
              campus_det ? "deterministic" : "DIVERGED");

  const bool deterministic = replays && campaign_det && campus_det &&
                             cr.causality_violations == 0;
  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_net\",\"zones\":%d,\"jobs\":%d,\"cores\":%u,"
      "\"delivered\":%llu,\"wall_s\":%.3f,\"msgs_per_sec\":%.1f,"
      "\"cov_count\":%llu,\"cov_p99_ms\":%.3f,"
      "\"city_zones\":%d,\"city_delivered\":%llu,\"city_wall_s\":%.3f,"
      "\"city_msgs_per_sec\":%.1f,\"city_trace_hash\":\"%s\","
      "\"deterministic\":%s,\"trace_hash\":\"%s\"}",
      zones, jobs, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(r1.delivered), wall_s, rate,
      static_cast<unsigned long long>(r1.cov_count), r1.cov_p99_us / 1000.0,
      city.zones, static_cast<unsigned long long>(cr.delivered), city_wall_s,
      city_rate, core::hex64(cr.trace_hash).c_str(),
      deterministic ? "true" : "false", core::hex64(r1.trace_hash).c_str());
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  return deterministic ? 0 : 1;
}
