// N — the network fabric. One JSON artifact (BENCH_net.json):
//
//  1. Fabric throughput: an 8-zone benign building run for 20 virtual
//     minutes; datagrams delivered per wall-second is the host-dependent
//     signal (gated relatively, like the campaign bench).
//  2. End-to-end COV latency p99 at the head-end, in *virtual* time —
//     a pure function of (topology, seed), so the gate compares it
//     byte-for-byte on any host.
//  3. Determinism: the same building twice, and the four-cell fabric
//     campaign at --jobs 1 vs --jobs N; every divergence is a failure
//     here, before the regression checker ever sees the file.
//
// The last stdout line is the JSON summary.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"
#include "core/fabric_run.hpp"
#include "core/hash.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  int zones = 8;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  std::string out = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--zones") == 0 && i + 1 < argc) {
      zones = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }

  std::printf("N: BACnet/IP fabric\n");

  core::FabricOptions opts;
  opts.zones = zones;
  opts.seed = 5;
  opts.duration = sim::minutes(20);
  opts.link.loss = 0.01;  // exercise the loss path in the hot loop too

  const auto t0 = Clock::now();
  const auto r1 = core::run_fabric(opts);
  const auto t1 = Clock::now();
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  const auto r2 = core::run_fabric(opts);

  const bool replays = r1.trace_hash == r2.trace_hash &&
                       r1.metrics_json == r2.metrics_json;
  std::printf("building       : %d zones, %.1f virtual min, %.2f s wall\n",
              zones, sim::to_seconds(opts.duration) / 60.0, wall_s);
  const double rate =
      wall_s > 0 ? static_cast<double>(r1.delivered) / wall_s : 0;
  std::printf("throughput     : %llu datagrams delivered, %.0f msg/s\n",
              static_cast<unsigned long long>(r1.delivered), rate);
  std::printf("cov            : %llu notifications, p99 %.3f ms "
              "(virtual)\n",
              static_cast<unsigned long long>(r1.cov_count),
              r1.cov_p99_us / 1000.0);
  std::printf("replay         : %s\n",
              replays ? "byte-identical" : "DIVERGED");

  // The campaign path: four attack cells over a smaller building, fanned
  // across the worker pool, must merge to the sequential bytes.
  core::FabricOptions camp = opts;
  camp.zones = 4;
  camp.duration = sim::minutes(12);
  const auto cells = core::fabric_matrix_cells(camp.zones, camp);
  const auto seq = core::run_campaign(cells, 1);
  const auto par = core::run_campaign(cells, jobs);
  const bool campaign_det = seq.summary_json() == par.summary_json();
  std::printf("campaign       : %zu cells, --jobs %d, %s\n", cells.size(),
              jobs, campaign_det ? "deterministic" : "DIVERGED");

  const bool deterministic = replays && campaign_det;
  char json[512];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_net\",\"zones\":%d,\"jobs\":%d,\"cores\":%u,"
      "\"delivered\":%llu,\"wall_s\":%.3f,\"msgs_per_sec\":%.1f,"
      "\"cov_count\":%llu,\"cov_p99_ms\":%.3f,"
      "\"deterministic\":%s,\"trace_hash\":\"%s\"}",
      zones, jobs, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(r1.delivered), wall_s, rate,
      static_cast<unsigned long long>(r1.cov_count), r1.cov_p99_us / 1000.0,
      deterministic ? "true" : "false", core::hex64(r1.trace_hash).c_str());
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  return deterministic ? 0 : 1;
}
