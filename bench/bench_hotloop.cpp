// L — the zero-alloc hot loop. One JSON artifact (BENCH_hotloop.json).
//
// Two arms:
//
//   pingpong — the MINIX sendrec round-trip with the full observability
//       stack on (flow spans, ring-mode trace, IPC latency histogram),
//       configured the way a long campaign cell runs: trace ring, span
//       ring, lineage lane reserved. A counting global operator new
//       measures heap allocations inside a steady-state window that
//       starts only after a warmup has filled every ring and plateaued
//       every freelist. The gate (bench/check_regression.py, kind
//       bench_hotloop) requires exactly ZERO allocations in the window
//       — one alloc per message would fail loudly — and a wall-clock
//       floor of 2x the pre-rework campaign baseline (46,771 msg/s).
//
//   roombank — physics::RoomBank (struct-of-arrays, OutdoorSpec
//       evaluated inline) against the same rooms stepped as scalar
//       RoomModel objects. Every tick of the equivalence pass must be
//       bit-identical (memcmp over the temperature arrays, both the
//       single-sub-step fast path and the large-dt sub-step path);
//       the timing passes report rooms stepped per second each way.
//
// The last stdout line is the JSON summary.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "minix/kernel.hpp"
#include "physics/room.hpp"
#include "sim/machine.hpp"

// ---- counting global allocator ---------------------------------------
//
// Overrides the global operator new/delete for the whole binary. The
// counters are the measurement; allocation behaviour is unchanged.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace sim = mkbas::sim;
namespace minix = mkbas::minix;
namespace physics = mkbas::physics;

namespace {

minix::AcmPolicy open_policy() {
  minix::AcmPolicy acm;
  acm.allow_mask(10, 11, ~0ULL);
  acm.allow_mask(11, 10, ~0ULL);
  return acm;
}

struct PingPong {
  std::uint64_t msgs = 0;          // delivered messages in the window
  std::uint64_t steady_allocs = 0; // operator new calls in the window
  std::uint64_t steady_frees = 0;
  double wall_s = 0;
  double msgs_per_sec() const { return wall_s > 0 ? msgs / wall_s : 0; }
};

PingPong run_pingpong(std::uint64_t seed) {
  sim::Machine m(seed);
  // Campaign-cell observability configuration: everything on, bounded.
  m.trace().set_capacity(4096);
  m.spans().set_capacity(4096);
  minix::MinixKernel k(m, open_policy());

  auto ops = std::make_shared<std::uint64_t>(0);
  const minix::Endpoint server = k.srv_fork2("server", 10, [&k] {
    for (;;) {
      minix::Message msg;
      if (k.ipc_receive(minix::Endpoint::any(), msg) !=
          minix::IpcResult::kOk) {
        continue;
      }
      minix::Message reply;
      reply.m_type = 0;
      k.ipc_senda(msg.source(), reply);
    }
  });
  k.srv_fork2("client", 11, [&k, server, ops] {
    for (;;) {
      minix::Message msg;
      msg.m_type = 1;
      if (k.ipc_sendrec(server, msg) == minix::IpcResult::kOk) ++*ops;
    }
  });

  // Warmup long enough to fill the 4096-slot rings several times over
  // and plateau every freelist/vector, then a measured steady window.
  const sim::Duration warm = sim::msec(100);
  const sim::Duration window = sim::msec(400);

  PingPong r;
  std::uint64_t a0 = 0, f0 = 0, ops0 = 0;
  std::chrono::steady_clock::time_point t0;
  m.at(warm, [&] {
    // The lineage index is the one hot-path append that grows without
    // bound (it survives ring eviction by design). Budget it for the
    // window from the warmup's observed span rate, with 2x headroom —
    // the reserve happens before the measured window opens.
    const double scale =
        static_cast<double>(window) / static_cast<double>(warm);
    m.spans().reserve(static_cast<std::size_t>(
        static_cast<double>(m.spans().total_begun()) * (1.0 + 2.0 * scale)));
    ops0 = *ops;
    t0 = std::chrono::steady_clock::now();
    a0 = g_allocs.load(std::memory_order_relaxed);
    f0 = g_frees.load(std::memory_order_relaxed);
  });
  m.at(warm + window, [&] {
    const auto t1 = std::chrono::steady_clock::now();
    r.msgs = (*ops - ops0) * 2;  // request + reply per round trip
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.steady_allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    r.steady_frees = g_frees.load(std::memory_order_relaxed) - f0;
  });
  m.run_for(warm + window + sim::msec(1));
  return r;
}

struct BankResult {
  bool equal = true;
  std::uint64_t rooms = 0;
  std::uint64_t steady_allocs = 0;
  double scalar_rooms_per_sec = 0;
  double bank_rooms_per_sec = 0;
  double speedup() const {
    return scalar_rooms_per_sec > 0 ? bank_rooms_per_sec / scalar_rooms_per_sec
                                    : 0;
  }
};

physics::RoomModel::Params room_params(sim::Rng& rng) {
  physics::RoomModel::Params p;
  p.capacitance_j_per_k = 1.0e5 + static_cast<double>(rng.next_u64() % 2000) * 100.0;
  p.loss_w_per_k = 40.0 + static_cast<double>(rng.next_u64() % 100);
  p.initial_temp_c = 12.0 + static_cast<double>(rng.next_u64() % 160) * 0.1;
  return p;
}

physics::OutdoorSpec room_outdoor(sim::Rng& rng) {
  return (rng.next_u64() & 1) != 0
             ? physics::OutdoorSpec::diurnal(8.0, 6.0)
             : physics::OutdoorSpec::constant(
                   4.0 + static_cast<double>(rng.next_u64() % 12));
}

BankResult run_roombank(std::size_t rooms, int ticks) {
  BankResult r;
  r.rooms = rooms;

  sim::Rng rng(0xB00C5EED);
  std::vector<physics::RoomModel> scalar;
  std::vector<double> heaters(rooms), disturbances(rooms);
  physics::RoomBank bank;
  scalar.reserve(rooms);
  for (std::size_t i = 0; i < rooms; ++i) {
    const auto params = room_params(rng);
    const auto outdoor = room_outdoor(rng);
    scalar.emplace_back(params);
    scalar.back().set_outdoor(outdoor);
    bank.add(params, outdoor);
    heaters[i] = static_cast<double>(rng.next_u64() % 2000);
    disturbances[i] = static_cast<double>(rng.next_u64() % 400) - 200.0;
    bank.set_heater_w(i, heaters[i]);
    bank.set_disturbance_w(i, disturbances[i]);
    scalar[i].set_disturbance_w(disturbances[i]);
  }

  // Equivalence: every tick bit-identical, on both integration paths —
  // 1 s ticks take the single-sub-step fast path, 90 s ticks the
  // sub-stepped general path.
  auto check = [&](sim::Duration dt, int n, sim::Time start) {
    sim::Time now = start;
    for (int tick = 0; tick < n; ++tick) {
      now += dt;
      for (std::size_t i = 0; i < rooms; ++i) {
        scalar[i].step(dt, heaters[i], now);
      }
      bank.step_all(dt, now);
      for (std::size_t i = 0; i < rooms; ++i) {
        const double a = scalar[i].temperature_c();
        const double b = bank.temperature_c(i);
        if (std::memcmp(&a, &b, sizeof a) != 0) r.equal = false;
      }
    }
    return now;
  };
  sim::Time now = check(sim::sec(1), ticks, 0);
  now = check(sim::sec(90), 8, now);

  // Timing: same workload, separately. The bank pass also proves the
  // steady-state step allocates nothing.
  const int reps = 200;
  const auto s0 = std::chrono::steady_clock::now();
  for (int tick = 0; tick < reps; ++tick) {
    now += sim::sec(1);
    for (std::size_t i = 0; i < rooms; ++i) {
      scalar[i].step(sim::sec(1), heaters[i], now);
    }
  }
  const auto s1 = std::chrono::steady_clock::now();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto b0 = std::chrono::steady_clock::now();
  for (int tick = 0; tick < reps; ++tick) {
    now += sim::sec(1);
    bank.step_all(sim::sec(1), now);
  }
  const auto b1 = std::chrono::steady_clock::now();
  r.steady_allocs = g_allocs.load(std::memory_order_relaxed) - a0;

  const double scalar_s = std::chrono::duration<double>(s1 - s0).count();
  const double bank_s = std::chrono::duration<double>(b1 - b0).count();
  const double total = static_cast<double>(rooms) * reps;
  r.scalar_rooms_per_sec = scalar_s > 0 ? total / scalar_s : 0;
  r.bank_rooms_per_sec = bank_s > 0 ? total / bank_s : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_hotloop.json";
  int reps = 3;
  std::size_t rooms = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rooms") == 0 && i + 1 < argc) {
      rooms = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }

  std::printf("L: zero-alloc hot loop (MINIX sendrec + RoomBank)\n");

  // Keep the fastest pass (least scheduler noise) but the WORST
  // allocation count: zero must mean zero on every repetition.
  PingPong best;
  std::uint64_t worst_allocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const PingPong p = run_pingpong(42 + static_cast<std::uint64_t>(rep));
    if (rep == 0 || p.msgs_per_sec() > best.msgs_per_sec()) best = p;
    if (p.steady_allocs > worst_allocs) worst_allocs = p.steady_allocs;
  }
  const BankResult bank = run_roombank(rooms, 64);

  std::printf("pingpong: %llu msgs in %.3f s -> %.0f msg/s, "
              "%llu allocs / %llu frees in steady window (worst %llu)\n",
              static_cast<unsigned long long>(best.msgs), best.wall_s,
              best.msgs_per_sec(),
              static_cast<unsigned long long>(best.steady_allocs),
              static_cast<unsigned long long>(best.steady_frees),
              static_cast<unsigned long long>(worst_allocs));
  std::printf("roombank: %llu rooms, bit-equal %s, scalar %.2fM "
              "room-steps/s, bank %.2fM room-steps/s (%.2fx), "
              "%llu allocs in steady steps\n",
              static_cast<unsigned long long>(bank.rooms),
              bank.equal ? "yes" : "NO",
              bank.scalar_rooms_per_sec / 1e6, bank.bank_rooms_per_sec / 1e6,
              bank.speedup(),
              static_cast<unsigned long long>(bank.steady_allocs));

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_hotloop\",\"bank_equal\":%s,"
      "\"bank_rooms\":%llu,\"bank_rooms_per_sec\":%.1f,"
      "\"bank_speedup\":%.3f,\"bank_steady_allocs\":%llu,"
      "\"msgs\":%llu,\"msgs_per_sec\":%.1f,"
      "\"scalar_rooms_per_sec\":%.1f,\"schema_version\":1,"
      "\"steady_allocs\":%llu,\"steady_frees\":%llu,"
      "\"worst_steady_allocs\":%llu}",
      bank.equal ? "true" : "false",
      static_cast<unsigned long long>(bank.rooms), bank.bank_rooms_per_sec,
      bank.speedup(),
      static_cast<unsigned long long>(bank.steady_allocs),
      static_cast<unsigned long long>(best.msgs), best.msgs_per_sec(),
      bank.scalar_rooms_per_sec,
      static_cast<unsigned long long>(best.steady_allocs),
      static_cast<unsigned long long>(best.steady_frees),
      static_cast<unsigned long long>(worst_allocs));
  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
  }
  std::printf("%s\n", json);
  const bool ok = bank.equal && worst_allocs == 0 && bank.steady_allocs == 0;
  return ok ? 0 : 1;
}
