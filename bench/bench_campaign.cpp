// C — the campaign engine and the kernel hot paths it leans on.
//
// Three measurements, one JSON artifact (BENCH_campaign.json):
//  1. ACM lookup latency: pure sparse map vs the production dense+memo
//     fast path, at the MINIX system size (every ac_id in dense range).
//  2. seL4 capability path resolution: full CNode-chain walk vs the
//     pre-resolved path cache.
//  3. A 16-seed benign sweep (every cell a full virtual-hour MINIX run)
//     executed sequentially and with --jobs N work-stealing threads;
//     merged metrics and trace hashes must be byte-identical, and the
//     wall-clock ratio is the campaign speedup.
//
// Speedup is bounded by physical cores: the JSON records "cores" so the
// regression checker only compares like with like (single-thread
// messages/sec is the machine-independent signal; speedup is only
// meaningful when the core count matches the baseline's).
//
// The last stdout line is the JSON summary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "minix/acm.hpp"
#include "sel4/kernel.hpp"
#include "sim/rng.hpp"

namespace core = mkbas::core;
namespace minix = mkbas::minix;
namespace sel4 = mkbas::sel4;
namespace sim = mkbas::sim;

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point t0, Clock::time_point t1,
                  std::uint64_t iters) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

/// Sparse-baseline vs fast-path ACM lookup at the scale the scenarios
/// actually run (a BAS controller has ~8 protected processes, every
/// ac_id inside the dense range). bench_acm covers the large-n regimes.
void bench_acm(double* sparse_ns, double* fast_ns) {
  constexpr int kN = 8;
  constexpr int kDegree = 4;
  constexpr std::uint64_t kIters = 2000000;
  minix::AcmPolicy sparse;
  sparse.set_dense_bound(-1);
  minix::AcmPolicy fast;
  sim::Rng fill(42);
  for (int src = 0; src < kN; ++src) {
    for (int e = 0; e < kDegree; ++e) {
      const int dst = static_cast<int>(fill.next_below(kN));
      const std::uint64_t mask = fill.next_u64() & 0xFF;
      sparse.allow_mask(src, dst, mask);
      fast.allow_mask(src, dst, mask);
    }
  }
  // Latency, not throughput: the probe ids derive from an LCG state that
  // the previous verdict feeds back into, so consecutive lookups form one
  // dependency chain that out-of-order execution can't overlap — matching
  // the kernel's real use, where the verdict gates the very next action.
  // Best-of-five reps drops scheduler noise.
  auto measure = [&](const minix::AcmPolicy& p) {
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
      std::uint64_t x = 0x243F6A8885A308D3ULL;
      const auto t0 = Clock::now();
      for (std::uint64_t i = 0; i < kIters; ++i) {
        const int src = static_cast<int>(x % kN);
        const int dst = static_cast<int>((x >> 8) % kN);
        const int type = static_cast<int>((x >> 16) & 7);
        const bool a = p.allowed(src, dst, type);
        x = x * 6364136223846793005ULL +
            (a ? 1442695040888963407ULL : 0x9E3779B97F4A7C15ULL);
      }
      const auto t1 = Clock::now();
      // Keep the loop honest without google-benchmark's DoNotOptimize.
      volatile std::uint64_t sink = x;
      (void)sink;
      best = std::min(best, ns_between(t0, t1, kIters));
    }
    return best;
  };
  *sparse_ns = measure(sparse);
  *fast_ns = measure(fast);
}

/// Capability path resolution through a deep CSpace (a chain of eight
/// CNodes, each holding the next in slot 0 — the multi-level addressing
/// bench T4 exercises), probed with the cache disabled (every call walks
/// the chain) and enabled (every call after the first is a hash probe).
void bench_cap_path(double* walk_ns, double* cached_ns) {
  sim::Machine m;
  sel4::Sel4Kernel k(m);
  constexpr std::uint64_t kIters = 200000;
  constexpr int kDepth = 8;
  double walk = 0, cached = 0;
  k.boot_root([&] {
    using Slot = sel4::Sel4Kernel::Slot;
    constexpr Slot kUntyped = sel4::Sel4Kernel::kRootUntypedSlot;
    // Scratch slots 10..10+kDepth-1 hold the chain CNodes; link each
    // CNode's slot 0 to the next one.
    for (int i = 0; i < kDepth; ++i) {
      k.retype(kUntyped, sel4::ObjType::kCNode, 10 + i, 4);
    }
    for (int i = 0; i + 1 < kDepth; ++i) {
      k.cnode_copy_into(10 + i, 10 + i + 1, 0, sel4::CapRights::all());
    }
    std::vector<Slot> path = {10};
    for (int i = 0; i + 1 < kDepth; ++i) path.push_back(0);
    k.set_path_cache_enabled(false);
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) k.probe_path(path);
    auto t1 = Clock::now();
    walk = ns_between(t0, t1, kIters);

    k.set_path_cache_enabled(true);
    k.probe_path(path);  // warm the single entry
    t0 = Clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) k.probe_path(path);
    t1 = Clock::now();
    cached = ns_between(t0, t1, kIters);
  });
  m.run();
  *walk_ns = walk;
  *cached_ns = cached;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 16;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  std::string out = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }

  std::printf("C: campaign engine + kernel hot paths\n");

  double acm_sparse_ns = 0, acm_fast_ns = 0;
  bench_acm(&acm_sparse_ns, &acm_fast_ns);
  std::printf("acm lookup     : sparse %.2f ns, fast %.2f ns\n",
              acm_sparse_ns, acm_fast_ns);

  double cap_walk_ns = 0, cap_cached_ns = 0;
  bench_cap_path(&cap_walk_ns, &cap_cached_ns);
  std::printf("cap probe_path : walk %.2f ns, cached %.2f ns\n",
              cap_walk_ns, cap_cached_ns);

  const auto cells =
      core::seed_sweep_cells(core::Platform::kMinix, {}, 1, seeds);
  std::printf("sweep          : %zu cells (MINIX benign, seeds 1..%d)\n",
              cells.size(), seeds);

  const auto seq = core::run_campaign(cells, 1);
  std::printf("sequential     : %.2f s wall\n", seq.wall_seconds);
  const auto par = core::run_campaign(cells, jobs);
  std::printf("--jobs %-8d: %.2f s wall, %llu steals\n", jobs,
              par.wall_seconds,
              static_cast<unsigned long long>(par.steals));

  const bool deterministic = seq.summary_json() == par.summary_json();
  std::printf("deterministic  : %s\n",
              deterministic ? "yes (summaries byte-identical)" : "NO");

  // Messages processed, from the merged registries (identical for both
  // runs when deterministic): every MINIX IPC delivery records latency.
  mkbas::obs::MetricsRegistry merged;
  for (const auto& c : seq.cells) {
    if (c.metrics) merged.merge_from(*c.metrics);
  }
  const std::uint64_t messages =
      merged.histogram("minix.ipc.latency", {1.0}).count();
  const double seq_rate =
      seq.wall_seconds > 0 ? static_cast<double>(messages) / seq.wall_seconds
                           : 0;
  const double par_rate =
      par.wall_seconds > 0 ? static_cast<double>(messages) / par.wall_seconds
                           : 0;
  const double speedup =
      par.wall_seconds > 0 ? seq.wall_seconds / par.wall_seconds : 0;
  std::printf("throughput     : %.0f msg/s sequential, %.0f msg/s parallel "
              "(%.2fx)\n",
              seq_rate, par_rate, speedup);

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"bench_campaign\",\"cells\":%zu,\"jobs\":%d,"
      "\"cores\":%u,\"seq_wall_s\":%.3f,\"par_wall_s\":%.3f,"
      "\"speedup\":%.3f,\"steals\":%llu,\"messages\":%llu,"
      "\"msgs_per_sec_seq\":%.1f,\"msgs_per_sec_par\":%.1f,"
      "\"acm_sparse_ns\":%.2f,\"acm_fast_ns\":%.2f,"
      "\"cap_walk_ns\":%.2f,\"cap_cached_ns\":%.2f,"
      "\"deterministic\":%s,\"merged_trace_hash\":\"%016llx\"}",
      cells.size(), jobs, std::thread::hardware_concurrency(),
      seq.wall_seconds, par.wall_seconds, speedup,
      static_cast<unsigned long long>(par.steals),
      static_cast<unsigned long long>(messages), seq_rate, par_rate,
      acm_sparse_ns, acm_fast_ns, cap_walk_ns, cap_cached_ns,
      deterministic ? "true" : "false",
      static_cast<unsigned long long>(seq.merged_trace_hash));

  if (!out.empty()) {
    std::ofstream f(out);
    f << json << "\n";
    if (!f) std::fprintf(stderr, "warning: could not write %s\n", out.c_str());
  }
  std::printf("%s\n", json);
  return deterministic ? 0 : 1;
}
