// FIG3 — reproduces the paper's Fig. 3: "Fine-grained IPC Using Access
// Control Matrix", the App1/App2/App3 example, including the worked
// example in the text (App2 sending type 2 vs type 1 to App1).
#include <cstdio>

#include "minix/acm.hpp"

using mkbas::minix::AcmPolicy;

namespace {

void print_bitmap(const AcmPolicy& acm, int src, int dst) {
  // The figure draws 4-bit maps over message types 3..0.
  char bits[5];
  for (int t = 0; t < 4; ++t) {
    bits[3 - t] = acm.allowed(src, dst, t) ? '1' : '0';
  }
  bits[4] = '\0';
  std::printf("  %d -> %d : %s\n", src, dst, bits);
}

}  // namespace

int main() {
  std::printf("FIG3: fine-grained IPC using the access control matrix\n");
  std::printf("======================================================\n\n");
  std::printf(
      "App1 (ac_id 100) RPCs: 1=app1_f1() 2=app1_f2() 3=app1_f3()\n"
      "App2 (ac_id 101) RPCs: none public\n"
      "App3 (ac_id 102) RPCs: 1=app3_f1() 2=app3_f2() 3=app3_f3()\n"
      "Type 0 is the reserved acknowledgment.\n\n");

  // Policy from the figure:
  //   App2 may invoke App1's f2() and f3(); app1_f1() only by App3;
  //   all acknowledgment messages between communicating pairs allowed.
  AcmPolicy acm;
  acm.allow(101, 100, {0, 2, 3});     // App2 -> App1: ack, f2, f3
  acm.allow(102, 100, {0, 1, 2, 3});  // App3 -> App1: ack, f1, f2, f3
  acm.allow(100, 101, {0});           // App1 -> App2: ack only
  acm.allow(100, 102, {0, 1, 3});     // App1 -> App3 (figure: m_type 0,1,3)
  acm.allow(101, 102, {0, 1});        // App2 -> App3 (figure: m_type 0,1)

  std::printf("Access control matrix (bitmaps over m_type 3..0):\n");
  const int acs[] = {100, 101, 102};
  for (int src : acs) {
    for (int dst : acs) {
      if (src != dst) print_bitmap(acm, src, dst);
    }
  }

  std::printf("\nWorked example from the text:\n");
  std::printf(
      "  App2 sends m_type=2 to App1 (bitmap 1101): %s\n",
      acm.allowed(101, 100, 2) ? "ALLOWED" : "DENIED");
  std::printf(
      "  App2 sends m_type=1 to App1:               %s (request dropped)\n",
      acm.allowed(101, 100, 1) ? "ALLOWED" : "DENIED");
  std::printf(
      "  App3 sends m_type=1 to App1:               %s (f1 reserved for "
      "App3)\n",
      acm.allowed(102, 100, 1) ? "ALLOWED" : "DENIED");

  std::printf("\nFull decision table:\n  src  dst  type  decision\n");
  for (int src : acs) {
    for (int dst : acs) {
      if (src == dst) continue;
      for (int t = 0; t <= 3; ++t) {
        std::printf("  %d  %d  %d     %s\n", src, dst, t,
                    acm.allowed(src, dst, t) ? "allow" : "deny");
      }
    }
  }
  std::printf("\nmatrix cells stored: %zu (sparse), footprint ~%zu bytes\n",
              acm.cell_count(), acm.memory_footprint_bytes());
  return 0;
}
