// EXT1 — extension experiment: the BSL-3 containment suite (the paper's
// Fig. 1 "Biosafety Level 3 Lab", from the same Biosecurity Research
// Institute case study as the temperature scenario), attacked through a
// compromised management interface, with and without the ACM.
//
// Expected shape: with the generated ACM, every injection is dropped and
// containment holds; on the permissive "legacy flat controller", the fan
// stops, both doors are forced, the lab goes positive and the controller
// is killed.
#include <cstdio>

#include "bas/bsl3_scenario.hpp"

namespace bas = mkbas::bas;
namespace minix = mkbas::minix;
namespace sim = mkbas::sim;

using bas::Bsl3Policy;
using bas::Bsl3Scenario;

namespace {

void attack(Bsl3Scenario& sc, int* denials, int* deliveries) {
  auto& k = sc.kernel();
  auto& m = sc.machine();
  const minix::Endpoint ctl = sc.endpoint_of("contCtlProc");
  const minix::Endpoint fan = sc.endpoint_of("exhaustFanProc");
  const minix::Endpoint doors = sc.endpoint_of("doorCtlProc");
  const sim::Time until = m.now() + sim::minutes(10);
  while (m.now() < until) {
    minix::Message stop_fan;
    stop_fan.m_type = Bsl3Scenario::MTypes::kData;
    stop_fan.put_f64(0, 0.0);
    (k.ipc_sendnb(fan, stop_fan) == minix::IpcResult::kOk ? ++*deliveries
                                                          : ++*denials);
    minix::Message fake;
    fake.m_type = Bsl3Scenario::MTypes::kData;
    fake.put_f64(0, -35.0);
    fake.put_f64(8, -15.0);
    (k.ipc_sendnb(ctl, fake) == minix::IpcResult::kOk ? ++*deliveries
                                                      : ++*denials);
    for (int door = 0; door < 2; ++door) {
      minix::Message open;
      open.m_type = Bsl3Scenario::MTypes::kData;
      open.put_i32(0, door);
      open.put_i32(4, 1);
      (k.ipc_sendnb(doors, open) == minix::IpcResult::kOk ? ++*deliveries
                                                          : ++*denials);
    }
    m.sleep_for(sim::msec(500));
  }
  k.pm_kill(ctl);
}

}  // namespace

int main() {
  std::printf(
      "EXT1: BSL-3 containment suite under management-interface "
      "compromise\n"
      "=================================================================="
      "\n"
      "attack at t=10min: stop exhaust fan, spoof pressure, force both\n"
      "doors, kill the controller. Run ends at t=25min.\n\n");

  for (const auto policy :
       {Bsl3Policy::kAcmEnforced, Bsl3Policy::kPermissive}) {
    sim::Machine m;
    Bsl3Scenario sc(m, {}, policy);
    int denials = 0, deliveries = 0;
    sc.arm_mgmt_attack(sim::minutes(10), [&](Bsl3Scenario& s) {
      attack(s, &denials, &deliveries);
    });
    m.run_until(sim::minutes(25));
    const auto safety = Bsl3Scenario::check_safety(
        sc.history(), m.trace(), sc.config(), sim::minutes(25));

    std::printf("--- %s ---\n", policy == Bsl3Policy::kAcmEnforced
                                    ? "MINIX3 + generated ACM"
                                    : "legacy flat controller (no ACM)");
    std::printf("  injections: %d delivered, %d denied by the kernel\n",
                deliveries, denials);
    std::printf("  pressure trace (lab Pa):");
    for (sim::Time t = sim::minutes(5); t <= sim::minutes(25);
         t += sim::minutes(5)) {
      for (const auto& s : sc.history()) {
        if (s.time >= t) {
          std::printf("  t=%lldmin %.1f", t / sim::minutes(1), s.lab_pa);
          break;
        }
      }
    }
    std::printf("\n  verdict: %s\n\n", safety.summary().c_str());
  }
  std::printf(
      "Same controller code, same attack; the only difference is the\n"
      "kernel-enforced IPC policy compiled from the AADL model.\n");
  return 0;
}
