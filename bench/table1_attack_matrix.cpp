// T1 — regenerates the paper's central result (§IV.D): the attack-outcome
// matrix across Linux, security-enhanced MINIX 3 and seL4/CAmkES, for
// arbitrary-code-execution and root-privilege attackers, plus the
// fork-quota ablation the paper proposes as future work.
//
// The matrix runs on the campaign engine: each of the ~31 rows is an
// independent cell fanned across hardware threads (`--jobs N`, default
// 1). Row order and content are identical for every jobs value.
//
// Expected shape (paper): every spoof/kill attack succeeds on Linux and
// physically disrupts the plant; all are blocked on both microkernels,
// with or without root; the fork bomb is the one MINIX weakness, fixed by
// the ACM quota extension.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "campaign/campaign.hpp"

int main(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    }
  }
  std::printf(
      "T1: attack outcomes across platforms (paper section IV.D)\n"
      "==========================================================\n"
      "workload: temperature-control scenario; web interface compromised\n"
      "at t=12min; run ends at t=32min. 'primitive' is the syscall-level\n"
      "outcome; 'physical world' is the ground-truth safety verdict.\n\n");
  const auto rows = mkbas::core::run_attack_matrix({}, jobs);
  std::printf("%s", mkbas::core::format_attack_table(rows).c_str());
  std::printf(
      "\nNotes:\n"
      " * Linux rows with privilege=root run against the well-configured\n"
      "   deployment (per-process accounts + queue ACLs) — root defeats\n"
      "   it anyway, as in the paper's second simulation.\n"
      " * MINIX3+ACM root rows are identical to code-exec rows: user\n"
      "   privilege is not tied to IPC on that platform (section IV.D.2).\n"
      " * seL4 has no root to escalate to (section IV.D.3).\n"
      " * fork-bomb on MINIX succeeds (the paper's admitted limitation)\n"
      "   unless the ACM fork quota — their proposed fix — is enabled.\n");
  return 0;
}
