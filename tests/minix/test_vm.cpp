#include "minix/vm.hpp"

#include <gtest/gtest.h>

namespace minix = mkbas::minix;
namespace sim = mkbas::sim;

using minix::AcmPolicy;
using minix::Endpoint;
using minix::MinixKernel;
using minix::VmClient;
using minix::VmServer;

namespace {

AcmPolicy vm_policy(std::initializer_list<int> acs) {
  AcmPolicy acm;
  for (int a : acs) {
    acm.allow_mask(a, MinixKernel::kPmAcId, ~0ULL);
    acm.allow_mask(MinixKernel::kPmAcId, a, ~0ULL);
    acm.allow_mask(a, VmServer::kVmAcId, ~0ULL);
    acm.allow_mask(VmServer::kVmAcId, a, ~0ULL);
  }
  return acm;
}

}  // namespace

TEST(MinixVm, GrowFreeUsageRoundTrip) {
  sim::Machine m;
  MinixKernel k(m, vm_policy({10}));
  VmServer vm(k);
  std::size_t mid = 0, end = 0;
  k.srv_fork2("app", 10, [&] {
    VmClient c(k, vm.endpoint());
    ASSERT_TRUE(c.brk_grow(1 << 20));
    ASSERT_TRUE(c.brk_grow(1 << 20));
    mid = c.usage();
    ASSERT_TRUE(c.brk_free(1 << 20));
    end = c.usage();
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(mid, 2u << 20);
  EXPECT_EQ(end, 1u << 20);
  EXPECT_EQ(vm.pool_free(), VmServer::kDefaultPoolBytes - (1 << 20));
}

TEST(MinixVm, PhysicalPoolIsExhaustible) {
  sim::Machine m;
  MinixKernel k(m, vm_policy({10, 11}));
  VmServer vm(k, /*pool=*/4 << 20);
  bool bomb_hit_wall = false;
  bool victim_denied = false;
  k.srv_fork2("membomb", 10, [&] {
    VmClient c(k, vm.endpoint());
    for (int i = 0; i < 64; ++i) {
      if (!c.brk_grow(1 << 20)) {
        bomb_hit_wall = true;
        break;
      }
    }
    m.sleep_for(sim::sec(1));
  });
  k.srv_fork2("victim", 11, [&] {
    m.sleep_for(sim::msec(100));
    VmClient c(k, vm.endpoint());
    victim_denied = !c.brk_grow(1 << 20);
  });
  m.run_until(sim::sec(2));
  // Without quotas the bomb starves everyone — the fork-bomb problem,
  // reproduced for memory.
  EXPECT_TRUE(bomb_hit_wall);
  EXPECT_TRUE(victim_denied);
}

TEST(MinixVm, QuotaContainsTheMemoryBomb) {
  sim::Machine m;
  MinixKernel k(m, vm_policy({10, 11}));
  VmServer vm(k, /*pool=*/4 << 20);
  vm.set_quota(10, 1 << 20);  // the untrusted ac gets 1 MiB
  int grows = 0;
  bool victim_ok = false;
  k.srv_fork2("membomb", 10, [&] {
    VmClient c(k, vm.endpoint());
    while (c.brk_grow(256 << 10)) ++grows;
    m.sleep_for(sim::sec(1));
  });
  k.srv_fork2("victim", 11, [&] {
    m.sleep_for(sim::msec(100));
    VmClient c(k, vm.endpoint());
    victim_ok = c.brk_grow(2 << 20);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(grows, 4);  // 4 * 256 KiB = the 1 MiB quota
  EXPECT_TRUE(victim_ok);
  EXPECT_GE(m.trace().count_tag("vm.quota_deny"), 1u);
}

TEST(MinixVm, QuotaIsPerAcIdNotPerProcess) {
  // Children share the parent's ac_id (sealed assignment), so spawning
  // helpers does not multiply the budget.
  sim::Machine m;
  AcmPolicy acm = vm_policy({10});
  MinixKernel k(m, std::move(acm));
  VmServer vm(k, 16 << 20);
  vm.set_quota(10, 1 << 20);
  int total_grows = 0;
  k.srv_fork2("parent", 10, [&] {
    k.seal_ac_assignment();
    for (int c = 0; c < 3; ++c) {
      k.fork2("child", 99 /*ignored: sealed*/, [&] {
        VmClient vc(k, vm.endpoint());
        while (vc.brk_grow(256 << 10)) ++total_grows;
        m.sleep_for(sim::sec(1));
      });
    }
    m.sleep_for(sim::sec(1));
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(total_grows, 4);  // one shared 1 MiB budget across children
}

TEST(MinixVm, FreeingMoreThanOwnedIsClamped) {
  sim::Machine m;
  MinixKernel k(m, vm_policy({10}));
  VmServer vm(k, 4 << 20);
  std::size_t usage = 1;
  k.srv_fork2("app", 10, [&] {
    VmClient c(k, vm.endpoint());
    ASSERT_TRUE(c.brk_grow(1 << 20));
    ASSERT_TRUE(c.brk_free(100 << 20));  // silly free: clamped
    usage = c.usage();
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(usage, 0u);
  EXPECT_EQ(vm.pool_free(), 4u << 20);  // pool never over-credited
}
