#include "minix/kernel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace minix = mkbas::minix;
namespace sim = mkbas::sim;

using minix::AcmPolicy;
using minix::Endpoint;
using minix::IpcResult;
using minix::Message;
using minix::MinixKernel;

namespace {

/// Policy where the listed ac_ids may exchange any message type with each
/// other and with PM (convenient default for IPC plumbing tests).
AcmPolicy open_policy(std::initializer_list<int> acs) {
  AcmPolicy acm;
  for (int a : acs) {
    for (int b : acs) acm.allow_mask(a, b, ~0ULL);
    acm.allow_mask(a, MinixKernel::kPmAcId, ~0ULL);
    acm.allow_mask(MinixKernel::kPmAcId, a, ~0ULL);
  }
  return acm;
}

}  // namespace

TEST(MinixKernel, SynchronousRendezvousDeliversSenderFirst) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  double received = 0.0;
  Endpoint recv_ep;

  // Sender runs first (spawn order), blocks in send; receiver picks it up.
  recv_ep = k.srv_fork2("recv", 11, [&] {
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    received = msg.get_f64(0);
  });
  k.srv_fork2("send", 10, [&] {
    Message msg;
    msg.m_type = 1;
    msg.put_f64(0, 21.5);
    ASSERT_EQ(k.ipc_send(recv_ep, msg), IpcResult::kOk);
  });
  m.run();
  EXPECT_DOUBLE_EQ(received, 21.5);
}

TEST(MinixKernel, SynchronousRendezvousDeliversReceiverFirst) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  int received_type = -1;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    received_type = msg.m_type;
  });
  k.srv_fork2("send", 10, [&] {
    m.sleep_for(sim::msec(5));  // let the receiver block first
    Message msg;
    msg.m_type = 7;
    ASSERT_EQ(k.ipc_send(recv_ep, msg), IpcResult::kOk);
  });
  m.run();
  EXPECT_EQ(received_type, 7);
}

TEST(MinixKernel, KernelStampsTrueSenderIdentity) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  Endpoint seen_source;
  Endpoint sender_ep;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    seen_source = msg.source();
  });
  sender_ep = k.srv_fork2("spoofer", 10, [&] {
    Message msg;
    msg.m_type = 1;
    // Forge the source field; the kernel must overwrite it on delivery.
    msg.m_source = Endpoint::make(99, 99).raw();
    ASSERT_EQ(k.ipc_send(recv_ep, msg), IpcResult::kOk);
  });
  m.run();
  EXPECT_EQ(seen_source, sender_ep);
}

TEST(MinixKernel, AcmDeniesDisallowedType) {
  sim::Machine m;
  AcmPolicy acm;
  acm.allow(10, 11, {0, 2});  // type 1 not granted
  MinixKernel k(m, std::move(acm));
  IpcResult denied = IpcResult::kOk, allowed = IpcResult::kNotAllowed;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    Message msg;
    k.ipc_receive(Endpoint::any(), msg);
  });
  k.srv_fork2("send", 10, [&] {
    Message msg;
    msg.m_type = 1;
    denied = k.ipc_send(recv_ep, msg);
    msg.m_type = 2;
    allowed = k.ipc_send(recv_ep, msg);
  });
  m.run();
  EXPECT_EQ(denied, IpcResult::kNotAllowed);
  EXPECT_EQ(allowed, IpcResult::kOk);
  EXPECT_GE(m.trace().count_tag("acm.deny"), 1u);
}

TEST(MinixKernel, ReceiveFromSpecificSourceFilters) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11, 12}));
  std::vector<int> order;
  Endpoint wanted_ep;
  Endpoint recv_ep = k.srv_fork2("recv", 12, [&] {
    // Wait until both senders are queued, then receive from `wanted` only.
    m.sleep_for(sim::msec(10));
    Message msg;
    ASSERT_EQ(k.ipc_receive(wanted_ep, msg), IpcResult::kOk);
    order.push_back(msg.m_type);
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    order.push_back(msg.m_type);
  });
  k.srv_fork2("other", 10, [&] {
    Message msg;
    msg.m_type = 1;
    k.ipc_send(recv_ep, msg);
  });
  wanted_ep = k.srv_fork2("wanted", 11, [&] {
    Message msg;
    msg.m_type = 2;
    k.ipc_send(recv_ep, msg);
  });
  m.run();
  // The specific receive must pick the later-queued but matching sender.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(MinixKernel, NonBlockingSendReturnsNotReady) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult r = IpcResult::kOk;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    m.sleep_for(sim::sec(1));  // not receiving
  });
  k.srv_fork2("send", 10, [&] {
    Message msg;
    msg.m_type = 1;
    r = k.ipc_sendnb(recv_ep, msg);
  });
  m.run();
  EXPECT_EQ(r, IpcResult::kNotReady);
}

TEST(MinixKernel, NonBlockingSendDeliversToWaitingReceiver) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult send_r = IpcResult::kNotReady;
  int got = -1;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    got = msg.m_type;
  });
  k.srv_fork2("send", 10, [&] {
    m.sleep_for(sim::msec(1));
    Message msg;
    msg.m_type = 9;
    send_r = k.ipc_sendnb(recv_ep, msg);
  });
  m.run();
  EXPECT_EQ(send_r, IpcResult::kOk);
  EXPECT_EQ(got, 9);
}

TEST(MinixKernel, AsyncSendQueuesWhenReceiverBusy) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult send_r = IpcResult::kNotReady;
  int got = -1;
  Endpoint recv_ep = k.srv_fork2("recv", 11, [&] {
    m.sleep_for(sim::msec(10));
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    got = msg.m_type;
  });
  k.srv_fork2("send", 10, [&] {
    Message msg;
    msg.m_type = 4;
    send_r = k.ipc_senda(recv_ep, msg);
  });
  m.run();
  EXPECT_EQ(send_r, IpcResult::kOk);
  EXPECT_EQ(got, 4);
}

TEST(MinixKernel, SendRecActsAsRpc) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  double answer = 0.0;
  Endpoint server_ep = k.srv_fork2("server", 11, [&] {
    Message req;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), req), IpcResult::kOk);
    Message reply;
    reply.m_type = 0;
    reply.put_f64(0, req.get_f64(0) * 2.0);
    ASSERT_EQ(k.ipc_senda(req.source(), reply), IpcResult::kOk);
    Message next;
    k.ipc_receive(Endpoint::any(), next);  // park
  });
  k.srv_fork2("client", 10, [&] {
    Message msg;
    msg.m_type = 1;
    msg.put_f64(0, 21.0);
    ASSERT_EQ(k.ipc_sendrec(server_ep, msg), IpcResult::kOk);
    answer = msg.get_f64(0);
  });
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(answer, 42.0);
}

TEST(MinixKernel, SendToDeadEndpointFails) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult r = IpcResult::kOk;
  Endpoint victim = k.srv_fork2("victim", 11, [] {});
  k.srv_fork2("send", 10, [&] {
    m.sleep_for(sim::msec(5));  // victim exits first
    Message msg;
    msg.m_type = 1;
    r = k.ipc_send(victim, msg);
  });
  m.run();
  EXPECT_EQ(r, IpcResult::kDeadSrcDst);
}

TEST(MinixKernel, BlockedSenderUnblocksWhenPeerDies) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult r = IpcResult::kOk;
  Endpoint victim = k.srv_fork2("victim", 11, [&] {
    m.sleep_for(sim::msec(10));
    // exits without ever receiving
  });
  k.srv_fork2("send", 10, [&] {
    Message msg;
    msg.m_type = 1;
    r = k.ipc_send(victim, msg);  // blocks, then peer dies
  });
  m.run();
  EXPECT_EQ(r, IpcResult::kDeadSrcDst);
}

TEST(MinixKernel, BlockedReceiverUnblocksWhenPeerDies) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult r = IpcResult::kOk;
  Endpoint peer = k.srv_fork2("peer", 11, [&] { m.sleep_for(sim::msec(5)); });
  k.srv_fork2("recv", 10, [&] {
    Message msg;
    r = k.ipc_receive(peer, msg);  // blocks on a peer that exits
  });
  m.run();
  EXPECT_EQ(r, IpcResult::kDeadSrcDst);
}

TEST(MinixKernel, StaleEndpointGenerationIsRejected) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11, 12}));
  IpcResult r = IpcResult::kOk;
  // Fill-and-free a slot so a new process reuses it at a new generation.
  Endpoint old_ep = k.srv_fork2("ephemeral", 11, [] {});
  k.srv_fork2("sender", 10, [&] {
    m.sleep_for(sim::msec(5));  // ephemeral exits; replacement spawns
    Message msg;
    msg.m_type = 1;
    r = k.ipc_send(old_ep, msg);  // old generation must not resolve
  });
  m.at(sim::msec(2), [&] {
    // Reuse the freed slot (slot allocation is first-free).
    k.srv_fork2("replacement", 12,
                [&] { m.sleep_for(sim::sec(1)); });
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(r, IpcResult::kDeadSrcDst);
}

TEST(MinixKernel, SendDeadlockCycleIsDetected) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult second = IpcResult::kOk;
  Endpoint a_ep, b_ep;
  a_ep = k.srv_fork2("a", 10, [&] {
    Message msg;
    msg.m_type = 1;
    k.ipc_send(b_ep, msg);  // blocks: b never receives
  });
  b_ep = k.srv_fork2("b", 11, [&] {
    m.sleep_for(sim::msec(5));
    Message msg;
    msg.m_type = 1;
    second = k.ipc_send(a_ep, msg);  // would close the cycle
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(second, IpcResult::kDeadlock);
}

TEST(MinixKernel, SendToSelfIsDeadlockError) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  IpcResult r = IpcResult::kOk;
  k.srv_fork2("narcissist", 10, [&] {
    Message msg;
    msg.m_type = 1;
    r = k.ipc_send(k.self(), msg);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, IpcResult::kDeadlock);
}

TEST(MinixKernel, NotifyIsDeliveredBeforeQueuedSenders) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11, 12}));
  std::vector<int> types;
  Endpoint recv_ep = k.srv_fork2("recv", 12, [&] {
    m.sleep_for(sim::msec(10));
    Message msg;
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    types.push_back(msg.m_type);
    ASSERT_EQ(k.ipc_receive(Endpoint::any(), msg), IpcResult::kOk);
    types.push_back(msg.m_type);
  });
  k.srv_fork2("sender", 10, [&] {
    Message msg;
    msg.m_type = 5;
    k.ipc_send(recv_ep, msg);  // queued synchronous sender
  });
  k.srv_fork2("notifier", 11, [&] {
    m.sleep_for(sim::msec(5));
    k.ipc_notify(recv_ep);
  });
  m.run();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], minix::kNotifyMType);
  EXPECT_EQ(types[1], 5);
}

TEST(MinixKernel, Fork2CreatesChildWithAcId) {
  sim::Machine m;
  AcmPolicy acm = open_policy({10, 20});
  MinixKernel k(m, std::move(acm));
  bool child_ran = false;
  int child_ac = -1;
  k.srv_fork2("parent", 10, [&] {
    auto res = k.fork2("child", 20, [&] {
      child_ran = true;
      m.sleep_for(sim::sec(10));  // stay alive for the parent's inspection
    });
    ASSERT_EQ(res.status, IpcResult::kOk);
    child_ac = k.ac_id_of(res.child);
  });
  m.run_until(sim::sec(1));
  EXPECT_TRUE(child_ran);
  EXPECT_EQ(child_ac, 20);
}

TEST(MinixKernel, PmKillHonoursAcmKillPolicy) {
  sim::Machine m;
  AcmPolicy acm = open_policy({10, 11, 12});
  acm.allow_kill(10, 12);  // only "admin" may kill the victim
  MinixKernel k(m, std::move(acm));
  IpcResult denied = IpcResult::kOk, granted = IpcResult::kNotAllowed;
  Endpoint victim = k.srv_fork2("victim", 12, [&] {
    Message msg;
    k.ipc_receive(Endpoint::any(), msg);  // park forever
  });
  k.srv_fork2("attacker", 11, [&] {
    denied = k.pm_kill(victim);
  });
  k.srv_fork2("admin", 10, [&] {
    m.sleep_for(sim::msec(10));
    granted = k.pm_kill(victim);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(denied, IpcResult::kNotAllowed);
  EXPECT_EQ(granted, IpcResult::kOk);
  EXPECT_FALSE(k.is_live(victim));
  EXPECT_GE(m.trace().count_tag("acm.kill_deny"), 1u);
}

TEST(MinixKernel, ForkQuotaStopsForkBomb) {
  sim::Machine m;
  AcmPolicy acm = open_policy({66});
  acm.set_quotas_enabled(true);
  acm.set_fork_quota(66, 3);
  MinixKernel k(m, std::move(acm));
  int successes = 0;
  IpcResult last = IpcResult::kOk;
  k.srv_fork2("bomb", 66, [&] {
    for (int i = 0; i < 10; ++i) {
      auto res = k.fork2("spawnling", 66,
                         [&] { m.sleep_for(sim::sec(10)); });
      if (res.status == IpcResult::kOk) {
        ++successes;
      } else {
        last = res.status;
        break;
      }
    }
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(last, IpcResult::kQuotaExceeded);
}

TEST(MinixKernel, ForkBombSucceedsWithoutQuotas) {
  // The paper concedes this limitation: without quotas the web interface
  // can exhaust the process table.
  sim::Machine m;
  AcmPolicy acm = open_policy({66});
  MinixKernel k(m, std::move(acm));
  int successes = 0;
  k.srv_fork2("bomb", 66, [&] {
    for (int i = 0; i < MinixKernel::kNumSlots + 10; ++i) {
      auto res =
          k.fork2("spawnling", 66, [&] { m.sleep_for(sim::sec(60)); });
      if (res.status != IpcResult::kOk) break;
      ++successes;
    }
  });
  m.run_until(sim::sec(5));
  // Table has kNumSlots entries; PM + bomb occupy two.
  EXPECT_GE(successes, MinixKernel::kNumSlots - 3);
}

TEST(MinixKernel, LookupFindsLiveProcesses) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  Endpoint ep = k.srv_fork2("svc", 10, [&] { m.sleep_for(sim::sec(1)); });
  EXPECT_EQ(k.lookup("svc"), ep);
  EXPECT_EQ(k.lookup("nope"), Endpoint::none());
  m.run_until(sim::sec(2));
  EXPECT_EQ(k.lookup("svc"), Endpoint::none());  // gone after exit
}

TEST(MinixKernel, WaitLookupRetriesUntilRegistration) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  Endpoint found = Endpoint::none();
  k.srv_fork2("early", 10, [&] {
    found = k.wait_lookup("late", sim::sec(2));
  });
  m.at(sim::msec(100), [&] {
    k.srv_fork2("late", 11, [&] { m.sleep_for(sim::sec(5)); });
  });
  m.run_until(sim::sec(3));
  EXPECT_TRUE(found.valid());
}

TEST(MinixKernel, PmExitRetiresProcess) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  Endpoint ep = k.srv_fork2("quitter", 10, [&] { k.pm_exit(0); });
  m.run_until(sim::sec(1));
  EXPECT_FALSE(k.is_live(ep));
  EXPECT_GE(m.trace().count_tag("pm.exit"), 1u);
}

TEST(MinixKernel, KernelKillCleansUpIpcState) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  IpcResult sender_result = IpcResult::kOk;
  Endpoint victim = k.srv_fork2("victim", 11, [&] {
    m.sleep_for(sim::sec(10));
  });
  k.srv_fork2("sender", 10, [&] {
    Message msg;
    msg.m_type = 1;
    sender_result = k.ipc_send(victim, msg);  // blocks on victim
  });
  m.at(sim::msec(10), [&] { k.kernel_kill(victim); });
  m.run_until(sim::sec(1));
  EXPECT_EQ(sender_result, IpcResult::kDeadSrcDst);
  EXPECT_FALSE(k.is_live(victim));
}
