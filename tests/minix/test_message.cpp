#include "minix/message.hpp"

#include <gtest/gtest.h>

namespace minix = mkbas::minix;

TEST(Endpoint, EncodesSlotAndGeneration) {
  const auto ep = minix::Endpoint::make(5, 3);
  EXPECT_EQ(ep.slot(), 5);
  EXPECT_EQ(ep.generation(), 3);
  EXPECT_TRUE(ep.valid());
}

TEST(Endpoint, DifferentGenerationsDiffer) {
  EXPECT_NE(minix::Endpoint::make(5, 3), minix::Endpoint::make(5, 4));
  EXPECT_NE(minix::Endpoint::make(5, 3), minix::Endpoint::make(6, 3));
  EXPECT_EQ(minix::Endpoint::make(5, 3), minix::Endpoint::make(5, 3));
}

TEST(Endpoint, AnyAndNoneAreDistinctAndInvalid) {
  EXPECT_TRUE(minix::Endpoint::any().is_any());
  EXPECT_FALSE(minix::Endpoint::any().valid());
  EXPECT_FALSE(minix::Endpoint::none().valid());
  EXPECT_NE(minix::Endpoint::any(), minix::Endpoint::none());
}

TEST(Endpoint, RoundTripsThroughRaw) {
  const auto ep = minix::Endpoint::make(123, 77);
  EXPECT_EQ(minix::Endpoint(ep.raw()), ep);
}

TEST(Message, IsExactly64Bytes) { EXPECT_EQ(sizeof(minix::Message), 64u); }

TEST(Message, TypedPayloadRoundTrip) {
  minix::Message m;
  m.put_i32(0, -42);
  m.put_f64(8, 21.375);
  m.put_str(16, "hello");
  EXPECT_EQ(m.get_i32(0), -42);
  EXPECT_DOUBLE_EQ(m.get_f64(8), 21.375);
  EXPECT_EQ(m.get_str(16), "hello");
}

TEST(Message, OutOfRangePayloadAccessIsSafe) {
  minix::Message m;
  m.put_f64(52, 1.0);  // would overrun the 56-byte payload: ignored
  EXPECT_DOUBLE_EQ(m.get_f64(52), 0.0);
  m.put_str(60, "x");  // offset beyond payload: ignored
  EXPECT_EQ(m.get_str(60), "");
}

TEST(Message, LongStringsAreTruncatedNotOverrun) {
  minix::Message m;
  const std::string longstr(100, 'a');
  m.put_str(0, longstr);
  const std::string back = m.get_str(0);
  EXPECT_EQ(back.size(), minix::Message::kPayloadBytes - 1);
  EXPECT_EQ(back, std::string(minix::Message::kPayloadBytes - 1, 'a'));
}

TEST(Message, SourceDefaultsToNone) {
  minix::Message m;
  EXPECT_FALSE(m.source().valid());
}
