#include "minix/fs.hpp"

#include <gtest/gtest.h>

namespace minix = mkbas::minix;
namespace sim = mkbas::sim;

using minix::AcmPolicy;
using minix::Endpoint;
using minix::FsClient;
using minix::FsServer;
using minix::IpcResult;
using minix::MinixKernel;

namespace {

/// ACM allowing the listed app ac_ids full access to PM and the FS.
AcmPolicy fs_policy(std::initializer_list<int> acs) {
  AcmPolicy acm;
  for (int a : acs) {
    acm.allow_mask(a, MinixKernel::kPmAcId, ~0ULL);
    acm.allow_mask(MinixKernel::kPmAcId, a, ~0ULL);
    acm.allow_mask(a, FsServer::kFsAcId, ~0ULL);
    acm.allow_mask(FsServer::kFsAcId, a, ~0ULL);
  }
  return acm;
}

}  // namespace

TEST(MinixFs, CreateWriteReadRoundTrip) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10}));
  FsServer fs(k);
  std::string back;
  k.srv_fork2("app", 10, [&] {
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/var/log/ctl.log", true);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(c.write(fd, "hello "), IpcResult::kOk);
    ASSERT_EQ(c.write(fd, "world"), IpcResult::kOk);
    ASSERT_EQ(c.read_all(fd, &back), IpcResult::kOk);
    ASSERT_EQ(c.close(fd), IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(back, "hello world");
  ASSERT_NE(fs.contents("/var/log/ctl.log"), nullptr);
  EXPECT_EQ(*fs.contents("/var/log/ctl.log"), "hello world");
}

TEST(MinixFs, ChunkedWritesHandleLongData) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10}));
  FsServer fs(k);
  const std::string big(500, 'x');
  std::string back;
  k.srv_fork2("app", 10, [&] {
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/big", true);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(c.write(fd, big), IpcResult::kOk);
    EXPECT_EQ(c.stat_size(fd), 500);
    ASSERT_EQ(c.read_all(fd, &back), IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(back, big);
}

TEST(MinixFs, BulkWriteThroughGrant) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10}));
  FsServer fs(k);
  const std::string big(2000, 'y');
  k.srv_fork2("app", 10, [&] {
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/bulk", true);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(c.write_bulk(fd, big), IpcResult::kOk);
    EXPECT_EQ(c.stat_size(fd), 2000);
  });
  m.run_until(sim::sec(2));
  ASSERT_NE(fs.contents("/bulk"), nullptr);
  EXPECT_EQ(*fs.contents("/bulk"), big);
}

TEST(MinixFs, OpenMissingWithoutCreateFails) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10}));
  FsServer fs(k);
  int fd = 0;
  k.srv_fork2("app", 10, [&] {
    FsClient c(k, fs.endpoint());
    fd = c.open("/does/not/exist", false);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(fd, -1);
}

TEST(MinixFs, OnlyOwnerMayWrite) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10, 11}));
  FsServer fs(k);
  IpcResult other_write = IpcResult::kOk;
  std::string other_read;
  k.srv_fork2("owner", 10, [&] {
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/owned", true);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(c.write(fd, "secretless telemetry"), IpcResult::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.srv_fork2("other", 11, [&] {
    m.sleep_for(sim::msec(100));
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/owned", false);
    ASSERT_GE(fd, 0);
    other_write = c.write(fd, "tamper");
    ASSERT_EQ(c.read_all(fd, &other_read), IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(other_write, IpcResult::kNotAllowed);
  EXPECT_EQ(other_read, "secretless telemetry");  // reads allowed
}

TEST(MinixFs, FdsAreNotTransferable) {
  // A process cannot use an fd another process opened: the FS binds fds
  // to the opener's endpoint.
  sim::Machine m;
  MinixKernel k(m, fs_policy({10, 11}));
  FsServer fs(k);
  int stolen_fd = -1;
  int stat_result = 0;
  k.srv_fork2("opener", 10, [&] {
    FsClient c(k, fs.endpoint());
    stolen_fd = c.open("/file", true);
    m.sleep_for(sim::sec(1));
  });
  k.srv_fork2("thief", 11, [&] {
    m.sleep_for(sim::msec(100));
    FsClient c(k, fs.endpoint());
    stat_result = c.stat_size(stolen_fd);
  });
  m.run_until(sim::sec(2));
  EXPECT_GE(stolen_fd, 0);
  EXPECT_EQ(stat_result, -1);
}

TEST(MinixFs, AcmGatesWhoCanReachTheFs) {
  sim::Machine m;
  // ac 12 has no row to the FS at all.
  AcmPolicy acm = fs_policy({10});
  acm.allow_mask(12, MinixKernel::kPmAcId, ~0ULL);
  acm.allow_mask(MinixKernel::kPmAcId, 12, ~0ULL);
  MinixKernel k(m, std::move(acm));
  FsServer fs(k);
  int fd = 0;
  k.srv_fork2("pariah", 12, [&] {
    FsClient c(k, fs.endpoint());
    fd = c.open("/anything", true);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(fd, -1);
  EXPECT_GE(m.trace().count_tag("acm.deny"), 1u);
}

TEST(MinixFs, ReadBeyondEndReturnsEmpty) {
  sim::Machine m;
  MinixKernel k(m, fs_policy({10}));
  FsServer fs(k);
  std::string back = "sentinel";
  k.srv_fork2("app", 10, [&] {
    FsClient c(k, fs.endpoint());
    const int fd = c.open("/empty", true);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(c.read_all(fd, &back), IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(back, "");
}
