#include "minix/acm.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace minix = mkbas::minix;

TEST(Acm, DefaultDeniesEverything) {
  minix::AcmPolicy acm;
  EXPECT_FALSE(acm.allowed(100, 101, 0));
  EXPECT_FALSE(acm.allowed(0, 0, 0));
}

TEST(Acm, AllowIsPerTypeAndDirectional) {
  minix::AcmPolicy acm;
  acm.allow(100, 101, {0, 2});
  EXPECT_TRUE(acm.allowed(100, 101, 0));
  EXPECT_FALSE(acm.allowed(100, 101, 1));
  EXPECT_TRUE(acm.allowed(100, 101, 2));
  // Direction matters: the reverse edge was never granted.
  EXPECT_FALSE(acm.allowed(101, 100, 0));
}

TEST(Acm, PaperFigure3Example) {
  // The exact example from Fig. 3: App1=100, App2=101, App3=102.
  // App2 may invoke App1's f2() and f3() (types 2, 3) but not f1();
  // App1's f1() may only be invoked by App3; acknowledgments (type 0)
  // are allowed between all communicating pairs.
  minix::AcmPolicy acm;
  acm.allow(101, 100, {0, 2, 3});  // App2 -> App1
  acm.allow(102, 100, {0, 1, 2, 3});  // App3 -> App1
  acm.allow(100, 101, {0});  // App1 -> App2 (ack only)
  acm.allow(100, 102, {0, 1, 3});  // App1 -> App3
  acm.allow(101, 102, {0, 1});  // App2 -> App3

  // "Suppose App2 tries to send a message with message type 2 to App1 ...
  //  the message will be allowed."
  EXPECT_TRUE(acm.allowed(101, 100, 2));
  // "if the message type is 1 the message will be denied."
  EXPECT_FALSE(acm.allowed(101, 100, 1));
  // app1_f1() is reserved for App3.
  EXPECT_TRUE(acm.allowed(102, 100, 1));
  // App2 has no publicly available procedures beyond ACK.
  EXPECT_TRUE(acm.allowed(100, 101, 0));
  EXPECT_FALSE(acm.allowed(100, 101, 1));
}

TEST(Acm, OutOfRangeTypesAreDenied) {
  minix::AcmPolicy acm;
  acm.allow_mask(1, 2, ~0ULL);
  EXPECT_TRUE(acm.allowed(1, 2, 63));
  EXPECT_FALSE(acm.allowed(1, 2, 64));
  EXPECT_FALSE(acm.allowed(1, 2, -1));
}

TEST(Acm, AllowAccumulates) {
  minix::AcmPolicy acm;
  acm.allow(1, 2, {0});
  acm.allow(1, 2, {5});
  EXPECT_TRUE(acm.allowed(1, 2, 0));
  EXPECT_TRUE(acm.allowed(1, 2, 5));
  EXPECT_EQ(acm.cell_count(), 1u);
}

TEST(Acm, KillPolicyIsSeparateFromMessagePolicy) {
  minix::AcmPolicy acm;
  acm.allow(1, 2, {0, 1, 2, 3});
  EXPECT_FALSE(acm.kill_allowed(1, 2));
  acm.allow_kill(1, 2);
  EXPECT_TRUE(acm.kill_allowed(1, 2));
  EXPECT_FALSE(acm.kill_allowed(2, 1));
}

TEST(Acm, ForkQuota) {
  minix::AcmPolicy acm;
  EXPECT_FALSE(acm.fork_quota(7).has_value());
  acm.set_fork_quota(7, 3);
  ASSERT_TRUE(acm.fork_quota(7).has_value());
  EXPECT_EQ(*acm.fork_quota(7), 3);
  EXPECT_FALSE(acm.quotas_enabled());
  acm.set_quotas_enabled(true);
  EXPECT_TRUE(acm.quotas_enabled());
}

TEST(Acm, SparseFootprintScalesWithEdgesNotProcesses) {
  minix::AcmPolicy sparse;
  // A 1000-process system with a 10-edge policy.
  for (int i = 0; i < 10; ++i) sparse.allow(i, i + 1, {0, 1});
  minix::DenseAcm dense(1000);
  for (int i = 0; i < 10; ++i) dense.allow_mask(i, i + 1, 0b11);
  EXPECT_LT(sparse.memory_footprint_bytes(),
            dense.memory_footprint_bytes() / 100);
}

// Property sweep: decisions must exactly reflect the constructed policy.
class AcmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcmPropertyTest, DecisionsMatchConstructedPolicy) {
  mkbas::sim::Rng rng(GetParam());
  minix::AcmPolicy acm;
  minix::DenseAcm dense(32);
  // Build a random policy over 32 ac_ids and 8 message types, mirrored
  // into the dense reference implementation.
  for (int edge = 0; edge < 60; ++edge) {
    const int src = static_cast<int>(rng.next_below(32));
    const int dst = static_cast<int>(rng.next_below(32));
    const std::uint64_t mask = rng.next_u64() & 0xFF;
    acm.allow_mask(src, dst, mask);
    dense.allow_mask(src, dst, mask);
  }
  for (int src = 0; src < 32; ++src) {
    for (int dst = 0; dst < 32; ++dst) {
      for (int type = 0; type < 8; ++type) {
        ASSERT_EQ(acm.allowed(src, dst, type), dense.allowed(src, dst, type))
            << "src=" << src << " dst=" << dst << " type=" << type;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcmPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 99u, 1234u,
                                           5678u));

// ---- Dense fast path + per-sender memo (the per-message hot path) ----

TEST(AcmFastPath, DefaultDenseBoundCoversMinixScale) {
  minix::AcmPolicy acm;
  EXPECT_EQ(acm.dense_bound(), minix::AcmPolicy::kDefaultDenseBound);
}

TEST(AcmFastPath, DisabledBoundFallsBackToPureSparse) {
  minix::AcmPolicy acm;
  acm.set_dense_bound(-1);
  acm.allow(1, 2, {3});
  EXPECT_TRUE(acm.allowed(1, 2, 3));
  EXPECT_FALSE(acm.allowed(1, 2, 4));
  EXPECT_FALSE(acm.allowed(2, 1, 3));
}

TEST(AcmFastPath, ReprojectsExistingCellsWhenBoundChanges) {
  minix::AcmPolicy acm;
  acm.set_dense_bound(-1);
  acm.allow(5, 6, {1});     // lands in the sparse map only
  acm.set_dense_bound(31);  // must re-project into the dense table
  EXPECT_TRUE(acm.allowed(5, 6, 1));
  acm.set_dense_bound(3);   // 5/6 now out of dense range: sparse again
  EXPECT_TRUE(acm.allowed(5, 6, 1));
}

TEST(AcmFastPath, MemoInvalidatedByPolicyMutation) {
  minix::AcmPolicy acm;  // ids above the bound use the memoized map path
  const int src = 100, dst = 101;
  acm.allow(src, dst, {1});
  EXPECT_TRUE(acm.allowed(src, dst, 1));
  EXPECT_TRUE(acm.memo_valid(src, dst));
  // Runtime grant (what enable_reincarnation does): the memoized mask is
  // stale the instant the policy changes.
  acm.allow(src, dst, {2});
  EXPECT_FALSE(acm.memo_valid(src, dst));
  EXPECT_TRUE(acm.allowed(src, dst, 2));
}

TEST(AcmFastPath, MemoInvalidatedForDyingProcess) {
  minix::AcmPolicy acm;
  acm.allow(100, 101, {1});
  acm.allow(200, 201, {1});
  EXPECT_TRUE(acm.allowed(100, 101, 1));
  EXPECT_TRUE(acm.allowed(200, 201, 1));
  acm.invalidate_ac(101);  // 101 died (as receiver of the first memo)
  EXPECT_FALSE(acm.memo_valid(100, 101));
  EXPECT_TRUE(acm.memo_valid(200, 201));  // unrelated memo survives
}

TEST(AcmFastPath, MissesAreMemoizedButStayCorrect) {
  minix::AcmPolicy acm;
  const int src = 100, dst = 101;
  EXPECT_FALSE(acm.allowed(src, dst, 1));  // miss memoized as mask 0
  EXPECT_TRUE(acm.memo_valid(src, dst));
  acm.allow(src, dst, {1});  // grant must invalidate the memoized miss
  EXPECT_TRUE(acm.allowed(src, dst, 1));
}

TEST(AcmFastPath, FootprintAccountsForDenseStorage) {
  minix::AcmPolicy with_dense;
  minix::AcmPolicy no_dense;
  no_dense.set_dense_bound(-1);
  with_dense.allow(1, 2, {0});
  no_dense.allow(1, 2, {0});
  const std::size_t n =
      static_cast<std::size_t>(minix::AcmPolicy::kDefaultDenseBound) + 1;
  EXPECT_GE(with_dense.memory_footprint_bytes(),
            no_dense.memory_footprint_bytes() + n * n * sizeof(std::uint64_t));
}

// Property sweep across the dense/sparse boundary: the fast-path policy
// must agree with a pure-sparse twin everywhere — ids below the bound
// (dense array), above it (memoized map), negative, and out-of-range
// message types.
class AcmFastPathPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcmFastPathPropertyTest, FastAndSparseAgreeAcrossTheBound) {
  mkbas::sim::Rng rng(GetParam());
  minix::AcmPolicy fast;
  fast.set_dense_bound(15);  // ids 0..15 dense, 16..23 memoized sparse
  minix::AcmPolicy sparse;
  sparse.set_dense_bound(-1);
  for (int edge = 0; edge < 80; ++edge) {
    const int src = static_cast<int>(rng.next_below(24));
    const int dst = static_cast<int>(rng.next_below(24));
    const std::uint64_t mask = rng.next_u64() & 0xFFFF;
    fast.allow_mask(src, dst, mask);
    sparse.allow_mask(src, dst, mask);
  }
  for (int src = -1; src < 24; ++src) {
    for (int dst = -1; dst < 24; ++dst) {
      for (int type : {-1, 0, 3, 15, 63, 64}) {
        ASSERT_EQ(fast.allowed(src, dst, type),
                  sparse.allowed(src, dst, type))
            << "src=" << src << " dst=" << dst << " type=" << type;
      }
      ASSERT_EQ(fast.mask(src, dst), sparse.mask(src, dst))
          << "src=" << src << " dst=" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcmFastPathPropertyTest,
                         ::testing::Values(7u, 21u, 63u, 404u, 9001u));
