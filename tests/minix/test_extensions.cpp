// MINIX extensions: memory grants (§III.A) and the reincarnation server
// (the "self-repairing" behaviour MINIX is known for).
#include <gtest/gtest.h>

#include "minix/kernel.hpp"

namespace minix = mkbas::minix;
namespace sim = mkbas::sim;

using minix::AcmPolicy;
using minix::Endpoint;
using minix::IpcResult;
using minix::MinixKernel;

namespace {

AcmPolicy open_policy(std::initializer_list<int> acs) {
  AcmPolicy acm;
  for (int a : acs) {
    for (int b : acs) acm.allow_mask(a, b, ~0ULL);
    acm.allow_mask(a, MinixKernel::kPmAcId, ~0ULL);
    acm.allow_mask(MinixKernel::kPmAcId, a, ~0ULL);
  }
  return acm;
}

}  // namespace

TEST(MinixGrants, SafecopyFromGrantedRegion) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared{1, 2, 3, 4, 5, 6, 7, 8};
  MinixKernel::GrantId grant = -1;
  std::vector<std::uint8_t> got(4, 0);
  Endpoint reader_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(reader_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::sec(1));  // keep the buffer alive
  });
  reader_ep = k.srv_fork2("reader", 11, [&] {
    m.sleep_for(sim::msec(10));
    ASSERT_EQ(k.safecopy_from(owner_ep, grant, 2, got.data(), 4),
              IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{3, 4, 5, 6}));
}

TEST(MinixGrants, SafecopyToWritesThroughGrant) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared(8, 0);
  MinixKernel::GrantId grant = -1;
  Endpoint writer_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(writer_ep, shared.data(), shared.size(),
                           {.read = false, .write = true});
    m.sleep_for(sim::sec(1));
  });
  writer_ep = k.srv_fork2("writer", 11, [&] {
    m.sleep_for(sim::msec(10));
    const std::uint8_t data[3] = {9, 8, 7};
    ASSERT_EQ(k.safecopy_to(owner_ep, grant, 5, data, 3), IpcResult::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(shared[5], 9);
  EXPECT_EQ(shared[6], 8);
  EXPECT_EQ(shared[7], 7);
}

TEST(MinixGrants, WrongGranteeIsDenied) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11, 12}));
  std::vector<std::uint8_t> shared(8, 42);
  MinixKernel::GrantId grant = -1;
  IpcResult thief_result = IpcResult::kOk;
  Endpoint friend_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(friend_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::sec(1));
  });
  friend_ep = k.srv_fork2("friend", 11, [&] { m.sleep_for(sim::sec(1)); });
  k.srv_fork2("thief", 12, [&] {
    m.sleep_for(sim::msec(10));
    std::uint8_t buf[4];
    thief_result = k.safecopy_from(owner_ep, grant, 0, buf, 4);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(thief_result, IpcResult::kNotAllowed);
}

TEST(MinixGrants, BoundsAreChecked) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared(8, 0);
  MinixKernel::GrantId grant = -1;
  IpcResult oob = IpcResult::kOk, wrap = IpcResult::kOk;
  Endpoint reader_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(reader_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::sec(1));
  });
  reader_ep = k.srv_fork2("reader", 11, [&] {
    m.sleep_for(sim::msec(10));
    std::uint8_t buf[16];
    oob = k.safecopy_from(owner_ep, grant, 6, buf, 4);  // 6+4 > 8
    wrap = k.safecopy_from(owner_ep, grant, 1000, buf, 1);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(oob, IpcResult::kNotAllowed);
  EXPECT_EQ(wrap, IpcResult::kNotAllowed);
}

TEST(MinixGrants, AccessModeIsEnforced) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared(8, 0);
  MinixKernel::GrantId grant = -1;
  IpcResult write_result = IpcResult::kOk;
  Endpoint peer_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(peer_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::sec(1));
  });
  peer_ep = k.srv_fork2("peer", 11, [&] {
    m.sleep_for(sim::msec(10));
    const std::uint8_t data[1] = {1};
    write_result = k.safecopy_to(owner_ep, grant, 0, data, 1);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(write_result, IpcResult::kNotAllowed);
}

TEST(MinixGrants, RevokedGrantStopsWorking) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared(8, 0);
  MinixKernel::GrantId grant = -1;
  IpcResult after_revoke = IpcResult::kOk;
  Endpoint peer_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(peer_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::msec(50));
    ASSERT_EQ(k.grant_revoke(grant), IpcResult::kOk);
    m.sleep_for(sim::sec(1));
  });
  peer_ep = k.srv_fork2("peer", 11, [&] {
    std::uint8_t buf[2];
    m.sleep_for(sim::msec(10));
    ASSERT_EQ(k.safecopy_from(owner_ep, grant, 0, buf, 2), IpcResult::kOk);
    m.sleep_for(sim::msec(100));  // owner revokes meanwhile
    after_revoke = k.safecopy_from(owner_ep, grant, 0, buf, 2);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(after_revoke, IpcResult::kBadEndpoint);
}

TEST(MinixGrants, GrantsDieWithTheGranter) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10, 11}));
  std::vector<std::uint8_t> shared(8, 0);
  MinixKernel::GrantId grant = -1;
  IpcResult after_death = IpcResult::kOk;
  Endpoint peer_ep, owner_ep;
  owner_ep = k.srv_fork2("owner", 10, [&] {
    grant = k.grant_create(peer_ep, shared.data(), shared.size(),
                           {.read = true, .write = false});
    m.sleep_for(sim::msec(50));  // then exits
  });
  peer_ep = k.srv_fork2("peer", 11, [&] {
    std::uint8_t buf[2];
    m.sleep_for(sim::msec(200));  // owner is gone by now
    after_death = k.safecopy_from(owner_ep, grant, 0, buf, 2);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(after_death, IpcResult::kDeadSrcDst);
}

TEST(MinixRs, RestartsKilledSystemProcess) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  k.enable_reincarnation(sim::msec(100));
  int incarnations = 0;
  const Endpoint first = k.srv_fork2("driver", 10, [&] {
    ++incarnations;
    m.sleep_for(sim::minutes(10));
  });
  m.run_until(sim::msec(50));
  k.kernel_kill(first);
  m.run_until(sim::sec(2));
  EXPECT_EQ(incarnations, 2);
  EXPECT_EQ(k.restarts(), 1);
  const Endpoint second = k.lookup("driver");
  ASSERT_TRUE(second.valid());
  EXPECT_NE(second, first);  // new endpoint (new generation/slot)
}

TEST(MinixRs, RestartsCrashedProcess) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  k.enable_reincarnation(sim::msec(100));
  int incarnations = 0;
  k.srv_fork2("flaky", 10, [&] {
    if (++incarnations == 1) throw std::runtime_error("segfault");
    m.sleep_for(sim::minutes(10));
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(incarnations, 2);
  EXPECT_TRUE(k.lookup("flaky").valid());
}

TEST(MinixRs, VoluntaryExitIsNotRestarted) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  k.enable_reincarnation(sim::msec(100));
  int incarnations = 0;
  k.srv_fork2("oneshot", 10, [&] {
    ++incarnations;
    k.pm_exit(0);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(incarnations, 1);
  EXPECT_EQ(k.restarts(), 0);
}

TEST(MinixRs, ProcessesLoadedBeforeEnableAreNotManaged) {
  sim::Machine m;
  MinixKernel k(m, open_policy({10}));
  int incarnations = 0;
  const Endpoint ep = k.srv_fork2("legacy", 10, [&] {
    ++incarnations;
    m.sleep_for(sim::minutes(10));
  });
  k.enable_reincarnation(sim::msec(100));
  m.run_until(sim::msec(50));
  k.kernel_kill(ep);
  m.run_until(sim::sec(2));
  EXPECT_EQ(incarnations, 1);
}
