#include "sel4/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sel4 = mkbas::sel4;
namespace sim = mkbas::sim;

using sel4::CapRights;
using sel4::ObjType;
using sel4::Sel4Error;
using sel4::Sel4Kernel;
using sel4::Sel4Msg;

using Slot = Sel4Kernel::Slot;
constexpr Slot kUntyped = Sel4Kernel::kRootUntypedSlot;

TEST(Sel4, BootRootHoldsInitialCaps) {
  sim::Machine m;
  Sel4Kernel k(m);
  bool cnode_ok = false, untyped_ok = false, slot5_empty = true;
  k.boot_root([&] {
    cnode_ok = k.probe_own_slot(Sel4Kernel::kRootCNodeSlot);
    untyped_ok = k.probe_own_slot(kUntyped);
    slot5_empty = !k.probe_own_slot(5);
  });
  m.run();
  EXPECT_TRUE(cnode_ok);
  EXPECT_TRUE(untyped_ok);
  EXPECT_TRUE(slot5_empty);
}

TEST(Sel4, RetypeCreatesEndpointCap) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  bool present = false;
  k.boot_root([&] {
    r = k.retype(kUntyped, ObjType::kEndpoint, 10);
    present = k.probe_own_slot(10);
  });
  m.run();
  EXPECT_EQ(r, Sel4Error::kOk);
  EXPECT_TRUE(present);
}

TEST(Sel4, RetypeIntoOccupiedSlotFails) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    r = k.retype(kUntyped, ObjType::kEndpoint, 10);
  });
  m.run();
  EXPECT_EQ(r, Sel4Error::kSlotOccupied);
}

TEST(Sel4, UntypedBudgetIsExhaustible) {
  sim::Machine m;
  Sel4Kernel k(m);
  int created = 0;
  Sel4Error last = Sel4Error::kOk;
  k.boot_root([&] {
    for (Slot s = 10; s < Sel4Kernel::kDefaultCNodeSlots; ++s) {
      // Huge CNodes burn through the 4 MiB untyped quickly.
      const Sel4Error r = k.retype(kUntyped, ObjType::kCNode, s, 1 << 16);
      if (r != Sel4Error::kOk) {
        last = r;
        break;
      }
      ++created;
    }
  });
  m.run();
  EXPECT_GT(created, 0);
  EXPECT_EQ(last, Sel4Error::kUntypedExhausted);
}

namespace {

/// Boot helper: create a child thread, install `caps` (src slot in root,
/// dest slot in child, rights, badge), resume it.
struct CapPlan {
  Slot src;
  Slot dest;
  CapRights rights;
  std::uint64_t badge = 0;
};

void start_child(Sel4Kernel& k, const std::string& name,
                 std::function<void()> body, const std::vector<CapPlan>& caps,
                 Slot tcb_slot, Slot cnode_slot, int priority = 7) {
  ASSERT_EQ(k.create_thread(kUntyped, name, std::move(body), priority,
                            tcb_slot, cnode_slot),
            Sel4Error::kOk);
  for (const auto& c : caps) {
    ASSERT_EQ(k.cnode_copy_into(cnode_slot, c.src, c.dest, c.rights, c.badge),
              Sel4Error::kOk);
  }
  ASSERT_EQ(k.tcb_resume(tcb_slot), Sel4Error::kOk);
}

}  // namespace

TEST(Sel4, SendRecvAcrossThreads) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::uint64_t got = 0;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      Sel4Msg msg;
      auto rr = k.recv(2, msg);
      ASSERT_EQ(rr.status, Sel4Error::kOk);
      got = msg.mr(0);
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "send", [&] {
      Sel4Msg msg;
      msg.label = 1;
      msg.push(12345);
      ASSERT_EQ(k.send(2, msg), Sel4Error::kOk);
    }, {{10, 2, CapRights::w()}}, 22, 23);
  });
  m.run();
  EXPECT_EQ(got, 12345u);
}

TEST(Sel4, SendWithoutWriteRightIsDenied) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "sender", [&] {
      Sel4Msg msg;
      r = k.send(2, msg);  // read-only cap: must be refused
    }, {{10, 2, CapRights::r()}}, 20, 21);
  });
  m.run();
  EXPECT_EQ(r, Sel4Error::kNoRights);
  EXPECT_GE(m.trace().count_tag("cap.deny"), 1u);
}

TEST(Sel4, RecvWithoutReadRightIsDenied) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      Sel4Msg msg;
      r = k.recv(2, msg).status;
    }, {{10, 2, CapRights::w()}}, 20, 21);
  });
  m.run();
  EXPECT_EQ(r, Sel4Error::kNoRights);
}

TEST(Sel4, BadgesIdentifyClients) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::vector<std::uint64_t> badges;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "server", [&] {
      for (int i = 0; i < 2; ++i) {
        Sel4Msg msg;
        auto rr = k.recv(2, msg);
        ASSERT_EQ(rr.status, Sel4Error::kOk);
        badges.push_back(rr.badge);
      }
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "client-a", [&] {
      Sel4Msg msg;
      k.send(2, msg);
    }, {{10, 2, CapRights::w(), /*badge=*/77}}, 22, 23);
    start_child(k, "client-b", [&] {
      m.sleep_for(sim::msec(1));
      Sel4Msg msg;
      k.send(2, msg);
    }, {{10, 2, CapRights::w(), /*badge=*/88}}, 24, 25);
  });
  m.run();
  ASSERT_EQ(badges.size(), 2u);
  EXPECT_EQ(badges[0], 77u);
  EXPECT_EQ(badges[1], 88u);
}

TEST(Sel4, CallAndReplyFormAnRpc) {
  sim::Machine m;
  Sel4Kernel k(m);
  double answer = 0.0;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "server", [&] {
      for (;;) {
        Sel4Msg req;
        if (k.recv(2, req).status != Sel4Error::kOk) break;
        Sel4Msg rep;
        rep.push_f64(req.mr_f64(0) * 2.0);
        if (k.reply(rep) != Sel4Error::kOk) break;
      }
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "client", [&] {
      Sel4Msg msg;
      msg.push_f64(21.0);
      ASSERT_EQ(k.call(2, msg), Sel4Error::kOk);
      answer = msg.mr_f64(0);
    }, {{10, 2, CapRights::wg()}}, 22, 23);
  });
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(answer, 42.0);
}

TEST(Sel4, CallWithoutGrantIsDenied) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "client", [&] {
      Sel4Msg msg;
      r = k.call(2, msg);  // write-only, no grant: Call refused
    }, {{10, 2, CapRights::w()}}, 20, 21);
  });
  m.run();
  EXPECT_EQ(r, Sel4Error::kNoRights);
}

TEST(Sel4, ReplyWithoutPendingCallerFails) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] { r = k.reply(Sel4Msg{}); });
  m.run();
  EXPECT_EQ(r, Sel4Error::kNoReplyCap);
}

TEST(Sel4, ReplyCapIsOneTime) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error second = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "server", [&] {
      Sel4Msg req;
      ASSERT_EQ(k.recv(2, req).status, Sel4Error::kOk);
      ASSERT_EQ(k.reply(Sel4Msg{}), Sel4Error::kOk);
      second = k.reply(Sel4Msg{});  // consumed: must fail
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "client", [&] {
      Sel4Msg msg;
      k.call(2, msg);
    }, {{10, 2, CapRights::wg()}}, 22, 23);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(second, Sel4Error::kNoReplyCap);
}

TEST(Sel4, CallerUnblocksWithErrorWhenServerDies) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "server", [&] {
      Sel4Msg req;
      ASSERT_EQ(k.recv(2, req).status, Sel4Error::kOk);
      // exits without replying
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "client", [&] {
      Sel4Msg msg;
      r = k.call(2, msg);
    }, {{10, 2, CapRights::wg()}}, 22, 23);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Sel4Error::kDeleted);
}

TEST(Sel4, NonBlockingVariantsReturnNotReady) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error s = Sel4Error::kOk, rv = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    Sel4Msg msg;
    s = k.nbsend(10, msg);
    rv = k.nbrecv(10, msg).status;
  });
  m.run();
  EXPECT_EQ(s, Sel4Error::kNotReady);
  EXPECT_EQ(rv, Sel4Error::kNotReady);
}

TEST(Sel4, RightsDerivationOnlyShrinks) {
  sim::Machine m;
  Sel4Kernel k(m);
  bool send_denied = false;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    // Derive a read-only copy, then try to re-derive full rights from it.
    ASSERT_EQ(k.cnode_copy(10, 11, CapRights::r()), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy(11, 12, CapRights::all()), Sel4Error::kOk);
    // Slot 12 must still be read-only: sending through it fails.
    Sel4Msg msg;
    send_denied = (k.nbsend(12, msg) == Sel4Error::kNoRights);
  });
  m.run();
  EXPECT_TRUE(send_denied);
}

TEST(Sel4, CapTransferRequiresGrant) {
  sim::Machine m;
  Sel4Kernel k(m);
  bool received_without_grant = true;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      k.set_receive_slot(5);
      Sel4Msg msg;
      ASSERT_EQ(k.recv(2, msg).status, Sel4Error::kOk);
      received_without_grant = k.probe_own_slot(5);
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "send", [&] {
      Sel4Msg msg;
      msg.transfer_cap_slot = 3;  // try to send away our cap to ep 11
      ASSERT_EQ(k.send(2, msg), Sel4Error::kOk);
    }, {{10, 2, CapRights::w()}, {11, 3, CapRights::all()}}, 22, 23);
  });
  m.run();
  // Without grant on the endpoint cap, the transfer silently fails.
  EXPECT_FALSE(received_without_grant);
  EXPECT_GE(m.trace().count_tag("cap.transfer_deny"), 1u);
}

TEST(Sel4, CapTransferWithGrantSucceeds) {
  sim::Machine m;
  Sel4Kernel k(m);
  bool received = false;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      k.set_receive_slot(5);
      Sel4Msg msg;
      ASSERT_EQ(k.recv(2, msg).status, Sel4Error::kOk);
      received = k.probe_own_slot(5);
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "send", [&] {
      Sel4Msg msg;
      msg.transfer_cap_slot = 3;
      ASSERT_EQ(k.send(2, msg), Sel4Error::kOk);
    }, {{10, 2, CapRights::wg()}, {11, 3, CapRights::all()}}, 22, 23);
  });
  m.run();
  EXPECT_TRUE(received);
  EXPECT_GE(m.trace().count_tag("cap.transfer"), 1u);
}

TEST(Sel4, BruteForceFindsOnlyGrantedCaps) {
  // §IV.D.3: "a simple brute-forcing program which attempts to enumerate
  // all the seL4 capability slots ... was unsuccessful in finding any
  // additional capabilities."
  sim::Machine m;
  Sel4Kernel k(m);
  std::vector<Slot> found;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 12), Sel4Error::kOk);
    start_child(k, "attacker", [&] {
      const int n = k.cspace_slots();
      for (Slot s = 0; s < n; ++s) {
        if (k.probe_own_slot(s)) found.push_back(s);
      }
    }, {{10, 2, CapRights::wg()}}, 20, 21);
  });
  m.run();
  // Exactly the one endpoint cap the bootstrap installed; nothing else.
  EXPECT_EQ(found, (std::vector<Slot>{2}));
}

TEST(Sel4, NotificationSignalAndWait) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::uint64_t bits = 0;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kNotification, 10), Sel4Error::kOk);
    start_child(k, "waiter", [&] {
      ASSERT_EQ(k.wait(2, &bits), Sel4Error::kOk);
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "signaller", [&] {
      m.sleep_for(sim::msec(1));
      ASSERT_EQ(k.signal(2), Sel4Error::kOk);
    }, {{10, 2, CapRights::w(), /*badge=*/0b100}}, 22, 23);
  });
  m.run();
  EXPECT_EQ(bits, 0b100u);
}

TEST(Sel4, ProbePathWalksChainedCNodes) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error deep = Sel4Error::kEmptySlot, missing = Sel4Error::kOk;
  k.boot_root([&] {
    // Build a 3-level chain: root[30] -> cnodeA[4] -> cnodeB[7] = endpoint
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 30, 16), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 31, 16), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 32), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy_into(30, 31, 4, CapRights::all()), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy_into(31, 32, 7, CapRights::all()), Sel4Error::kOk);
    deep = k.probe_path({30, 4, 7});
    missing = k.probe_path({30, 4, 8});
  });
  m.run();
  EXPECT_EQ(deep, Sel4Error::kOk);
  EXPECT_EQ(missing, Sel4Error::kEmptySlot);
}

TEST(Sel4, MoveLeavesSourceEmpty) {
  sim::Machine m;
  Sel4Kernel k(m);
  bool src_empty = false, dst_full = false;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_move(10, 11), Sel4Error::kOk);
    src_empty = !k.probe_own_slot(10);
    dst_full = k.probe_own_slot(11);
  });
  m.run();
  EXPECT_TRUE(src_empty);
  EXPECT_TRUE(dst_full);
}

TEST(Sel4, DeletingLastCapWakesBlockedThreads) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      Sel4Msg msg;
      r = k.recv(2, msg).status;
    }, {{10, 2, CapRights::r()}}, 20, 21);
    m.sleep_for(sim::msec(5));
    // Delete both caps to the endpoint (root's and... the child still has
    // one, so delete only revokes when the last reference goes).
    ASSERT_EQ(k.cnode_delete(10), Sel4Error::kOk);
  });
  m.run_until(sim::msec(50));
  // Child still holds a cap, so it stays blocked (no spurious wake).
  EXPECT_EQ(r, Sel4Error::kOk);
}

TEST(Sel4, SuspendAndResumeViaTcbCap) {
  sim::Machine m;
  Sel4Kernel k(m);
  int beats = 0;
  k.boot_root([&] {
    start_child(k, "worker", [&] {
      for (;;) {
        ++beats;
        m.sleep_for(sim::msec(10));
      }
    }, {}, 20, 21);
    m.sleep_for(sim::msec(100));
    const int before = beats;
    ASSERT_EQ(k.tcb_suspend(20), Sel4Error::kOk);
    m.sleep_for(sim::msec(100));
    EXPECT_LE(beats - before, 1);  // effectively frozen
    ASSERT_EQ(k.tcb_resume(20), Sel4Error::kOk);
    m.sleep_for(sim::msec(100));
    EXPECT_GE(beats - before, 8);  // running again
  });
  m.run_until(sim::sec(1));
  EXPECT_GT(beats, 0);
}

TEST(Sel4, SuspendWithoutTcbCapIsImpossible) {
  // The only "kill-adjacent" primitive needs a TCB capability; a
  // component given none (like the web interface) cannot even name the
  // target.
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "attacker", [&] {
      r = k.tcb_suspend(2);  // its one cap is an endpoint, not a TCB
    }, {{10, 2, CapRights::wg()}}, 20, 21);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Sel4Error::kWrongType);
}

TEST(Sel4, ReplyRecvServesBackToBack) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::vector<std::uint64_t> served;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "server", [&] {
      Sel4Msg req;
      auto rr = k.recv(2, req);
      while (rr.status == Sel4Error::kOk) {
        served.push_back(req.mr(0));
        Sel4Msg rep;
        rep.push(req.mr(0) * 10);
        rr = k.reply_recv(2, rep, req);  // the canonical server loop
      }
    }, {{10, 2, CapRights::r()}}, 20, 21);
    start_child(k, "client", [&] {
      for (std::uint64_t i = 1; i <= 3; ++i) {
        Sel4Msg msg;
        msg.push(i);
        ASSERT_EQ(k.call(2, msg), Sel4Error::kOk);
        EXPECT_EQ(msg.mr(0), i * 10);
      }
    }, {{10, 2, CapRights::wg()}}, 22, 23);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(served, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Sel4, FrameReadWriteRespectRights) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error ro_write = Sel4Error::kOk;
  std::uint8_t got = 0;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kFrame, 10), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy(10, 11, CapRights::r()), Sel4Error::kOk);
    const std::uint8_t v = 0xAB;
    ASSERT_EQ(k.frame_write(10, 100, &v, 1), Sel4Error::kOk);
    ASSERT_EQ(k.frame_read(11, 100, &got, 1), Sel4Error::kOk);
    ro_write = k.frame_write(11, 0, &v, 1);
    // Bounds are enforced.
    EXPECT_EQ(k.frame_write(10, Sel4Kernel::kFrameBytes, &v, 1),
              Sel4Error::kTruncated);
  });
  m.run();
  EXPECT_EQ(got, 0xAB);
  EXPECT_EQ(ro_write, Sel4Error::kNoRights);
}

TEST(Sel4, RevokeStripsAllCopiesEverywhere) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error blocked_recv = Sel4Error::kOk;
  bool child_cap_gone = false;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy(10, 11, CapRights::all()), Sel4Error::kOk);
    start_child(k, "recv", [&] {
      Sel4Msg msg;
      blocked_recv = k.recv(2, msg).status;  // blocks; then revoked
      child_cap_gone = !k.probe_own_slot(2);
    }, {{10, 2, CapRights::r()}}, 20, 21);
    m.sleep_for(sim::msec(5));
    ASSERT_EQ(k.cnode_revoke(11), Sel4Error::kOk);
    // Both root copies and the child's cap must be gone.
    EXPECT_FALSE(k.probe_own_slot(10));
    EXPECT_FALSE(k.probe_own_slot(11));
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(blocked_recv, Sel4Error::kDeleted);
  EXPECT_TRUE(child_cap_gone);
}

TEST(Sel4, RevokeOfEmptySlotFails) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error r = Sel4Error::kOk;
  k.boot_root([&] { r = k.cnode_revoke(40); });
  m.run();
  EXPECT_EQ(r, Sel4Error::kEmptySlot);
}

TEST(Sel4, ThreadDeathPurgesEndpointQueues) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::uint64_t got = 999;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 10), Sel4Error::kOk);
    start_child(k, "dying-sender", [&] {
      Sel4Msg msg;
      msg.push(111);
      k.send(2, msg);  // queues; killed before pickup
    }, {{10, 2, CapRights::w()}}, 20, 21);
    start_child(k, "late-recv", [&] {
      m.sleep_for(sim::msec(20));
      Sel4Msg msg;
      auto rr = k.nbrecv(2, msg);
      got = (rr.status == Sel4Error::kOk) ? msg.mr(0) : 0;
    }, {{10, 2, CapRights::r()}}, 22, 23);
  });
  m.at(sim::msec(5), [&] {
    // Kill the queued sender directly (simulated fault).
    for (auto* p : m.live_processes()) {
      if (p->name() == "dying-sender") m.kill(p);
    }
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(got, 0u);  // queue was purged; nothing to receive
}

// ---- Path-resolution cache (the capability-lookup hot path) ----

TEST(Sel4PathCache, RepeatProbeHitsCache) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::uint64_t hits = 0, misses = 0;
  Sel4Error first = Sel4Error::kOk, second = Sel4Error::kBadSlot;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 10, 4), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy_into(10, 11, 0, CapRights::all()),
              Sel4Error::kOk);
    const std::vector<Slot> path = {10, 0};
    first = k.probe_path(path);
    second = k.probe_path(path);
    hits = k.path_cache_hits();
    misses = k.path_cache_misses();
  });
  m.run();
  EXPECT_EQ(first, Sel4Error::kOk);
  EXPECT_EQ(second, Sel4Error::kOk);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(Sel4PathCache, SlotWriteInvalidatesNegativeVerdict) {
  // A cached kEmptySlot must not survive the slot being filled: the
  // cache keys on cap_epoch_, which every capability mutation bumps.
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error before = Sel4Error::kOk, after = Sel4Error::kBadSlot;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 10, 4), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    const std::vector<Slot> path = {10, 1};
    before = k.probe_path(path);  // slot 1 is empty; verdict cached
    before = k.probe_path(path);  // served from cache
    ASSERT_EQ(k.cnode_copy_into(10, 11, 1, CapRights::all()),
              Sel4Error::kOk);
    after = k.probe_path(path);
  });
  m.run();
  EXPECT_EQ(before, Sel4Error::kEmptySlot);
  EXPECT_EQ(after, Sel4Error::kOk);
}

TEST(Sel4PathCache, DeleteInvalidatesPositiveVerdict) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error before = Sel4Error::kBadSlot, after = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 10, 4), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy_into(10, 11, 0, CapRights::all()),
              Sel4Error::kOk);
    const std::vector<Slot> path = {10, 0};
    before = k.probe_path(path);
    before = k.probe_path(path);  // cached kOk
    ASSERT_EQ(k.cnode_delete(10), Sel4Error::kOk);
    after = k.probe_path(path);   // root slot gone: must not report kOk
  });
  m.run();
  EXPECT_EQ(before, Sel4Error::kOk);
  EXPECT_NE(after, Sel4Error::kOk);
}

TEST(Sel4PathCache, RevokeInvalidatesDerivedPath) {
  sim::Machine m;
  Sel4Kernel k(m);
  Sel4Error before = Sel4Error::kBadSlot, after = Sel4Error::kOk;
  k.boot_root([&] {
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 10, 4), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    // Derive the copy inside the CNode from the root's endpoint cap.
    ASSERT_EQ(k.cnode_copy_into(10, 11, 0, CapRights::all()),
              Sel4Error::kOk);
    const std::vector<Slot> path = {10, 0};
    before = k.probe_path(path);
    before = k.probe_path(path);  // cached kOk
    ASSERT_EQ(k.cnode_revoke(11), Sel4Error::kOk);  // sweeps the child
    after = k.probe_path(path);
  });
  m.run();
  EXPECT_EQ(before, Sel4Error::kOk);
  EXPECT_NE(after, Sel4Error::kOk);
}

TEST(Sel4PathCache, DisabledCacheCountsNothingAndStaysCorrect) {
  sim::Machine m;
  Sel4Kernel k(m);
  std::uint64_t hits = 0, misses = 0;
  Sel4Error r1 = Sel4Error::kBadSlot, r2 = Sel4Error::kBadSlot;
  k.boot_root([&] {
    k.set_path_cache_enabled(false);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kCNode, 10, 4), Sel4Error::kOk);
    ASSERT_EQ(k.retype(kUntyped, ObjType::kEndpoint, 11), Sel4Error::kOk);
    ASSERT_EQ(k.cnode_copy_into(10, 11, 0, CapRights::all()),
              Sel4Error::kOk);
    const std::vector<Slot> path = {10, 0};
    r1 = k.probe_path(path);
    r2 = k.probe_path(path);
    hits = k.path_cache_hits();
    misses = k.path_cache_misses();
  });
  m.run();
  EXPECT_EQ(r1, Sel4Error::kOk);
  EXPECT_EQ(r2, Sel4Error::kOk);
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(misses, 0u);
}
