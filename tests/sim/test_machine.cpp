#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace sim = mkbas::sim;

TEST(Machine, RunsASingleProcessToCompletion) {
  sim::Machine m;
  int ran = 0;
  m.spawn("p", [&] { ran = 1; });
  m.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(m.live_count(), 0);
}

TEST(Machine, SpawnReturnsDistinctPids) {
  sim::Machine m;
  auto* a = m.spawn("a", [] {});
  auto* b = m.spawn("b", [] {});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->pid(), b->pid());
  m.run();
}

TEST(Machine, PriorityOrderIsRespected) {
  sim::Machine m;
  std::vector<std::string> order;
  m.spawn("low", [&] { order.push_back("low"); }, 9);
  m.spawn("high", [&] { order.push_back("high"); }, 2);
  m.spawn("mid", [&] { order.push_back("mid"); }, 5);
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "low");
}

TEST(Machine, FifoWithinPriorityLevel) {
  sim::Machine m;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    m.spawn("p" + std::to_string(i), [&order, i] { order.push_back(i); });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Machine, VirtualClockAdvancesOnSleep) {
  sim::Machine m;
  sim::Time woke_at = -1;
  m.spawn("sleeper", [&] {
    m.sleep_for(sim::sec(5));
    woke_at = m.now();
  });
  m.run();
  EXPECT_EQ(woke_at, sim::sec(5));
}

TEST(Machine, SleepersWakeInDeadlineOrder) {
  sim::Machine m;
  std::vector<int> order;
  m.spawn("late", [&] {
    m.sleep_for(sim::msec(20));
    order.push_back(20);
  });
  m.spawn("early", [&] {
    m.sleep_for(sim::msec(10));
    order.push_back(10);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

TEST(Machine, RunUntilStopsTheClockAtTheLimit) {
  sim::Machine m;
  bool woke = false;
  m.spawn("sleeper", [&] {
    m.sleep_for(sim::sec(100));
    woke = true;
  });
  m.run_until(sim::sec(10));
  EXPECT_FALSE(woke);
  EXPECT_EQ(m.now(), sim::sec(10));
  m.run_until(sim::sec(200));
  EXPECT_TRUE(woke);
}

TEST(Machine, RunForIsRelative) {
  sim::Machine m;
  m.run_for(sim::sec(3));
  EXPECT_EQ(m.now(), sim::sec(3));
  m.run_for(sim::sec(4));
  EXPECT_EQ(m.now(), sim::sec(7));
}

TEST(Machine, DriverCallbackFiresAtTheRequestedTime) {
  sim::Machine m;
  sim::Time fired_at = -1;
  m.at(sim::sec(2), [&] { fired_at = m.now(); });
  m.run_until(sim::sec(5));
  EXPECT_EQ(fired_at, sim::sec(2));
}

TEST(Machine, PeriodicCallbackFiresRepeatedly) {
  sim::Machine m;
  int fires = 0;
  m.every(sim::sec(1), sim::sec(1), [&] { ++fires; });
  m.run_until(sim::sec(5) + sim::msec(500));
  EXPECT_EQ(fires, 5);
}

TEST(Machine, BlockAndMakeReadyRoundTrip) {
  sim::Machine m;
  sim::Process* waiter = nullptr;
  bool resumed = false;
  waiter = m.spawn("waiter", [&] {
    m.block_current("test-wait");
    resumed = true;
  });
  m.spawn("waker", [&] { m.make_ready(waiter); }, 9);
  m.run();
  EXPECT_TRUE(resumed);
}

TEST(Machine, KillUnblocksAndUnwindsABlockedProcess) {
  sim::Machine m;
  bool after_block = false;
  auto* p = m.spawn("victim", [&] {
    m.block_current("forever");
    after_block = true;  // must never execute
  });
  m.at(sim::sec(1), [&] { m.kill(p); });
  m.run_until(sim::sec(2));
  EXPECT_FALSE(after_block);
  EXPECT_EQ(p->state(), sim::ProcState::kZombie);
  EXPECT_EQ(m.trace().count_tag("proc.killed"), 1u);
}

TEST(Machine, KillIsObservedAtNextKernelEntry) {
  sim::Machine m;
  int loops = 0;
  sim::Process* victim = nullptr;
  victim = m.spawn("spinner", [&] {
    for (;;) {
      m.enter_kernel();  // charges time; observes kills
      ++loops;
      m.sleep_for(sim::msec(1));
    }
  });
  m.at(sim::msec(10), [&] { m.kill(victim); });
  m.run_until(sim::msec(50));
  EXPECT_GT(loops, 0);
  EXPECT_EQ(victim->state(), sim::ProcState::kZombie);
}

TEST(Machine, ExitHooksRunOnRetirement) {
  sim::Machine m;
  bool hook_ran = false;
  m.spawn("p", [&] {
    m.current()->add_exit_hook([&](sim::Process&) { hook_ran = true; });
  });
  m.run();
  EXPECT_TRUE(hook_ran);
}

TEST(Machine, ExitHooksRunWhenKilled) {
  sim::Machine m;
  bool hook_ran = false;
  auto* p = m.spawn("p", [&] {
    m.current()->add_exit_hook([&](sim::Process&) { hook_ran = true; });
    m.block_current("forever");
  });
  m.at(1, [&] { m.kill(p); });
  m.run_until(10);
  EXPECT_TRUE(hook_ran);
}

TEST(Machine, CrashIsRecordedNotPropagated) {
  sim::Machine m;
  auto* p = m.spawn("bad", [] { throw std::runtime_error("boom"); });
  m.run();
  EXPECT_TRUE(p->crashed());
  EXPECT_EQ(p->crash_reason(), "boom");
  EXPECT_EQ(m.trace().count_tag("proc.crash"), 1u);
}

TEST(Machine, ProcessExitUnwindsCleanly) {
  sim::Machine m;
  auto* p = m.spawn("quitter", [] { throw mkbas::sim::ProcessExit{0}; });
  m.run();
  EXPECT_FALSE(p->crashed());
  EXPECT_EQ(m.trace().count_tag("proc.exit"), 1u);
}

TEST(Machine, ProcessTableIsBounded) {
  sim::Machine m;
  // Fill the table with blocked processes, then one more must be rejected.
  for (int i = 0; i < sim::Machine::kMaxProcs; ++i) {
    ASSERT_NE(m.spawn("f" + std::to_string(i),
                      [&] { m.block_current("parked"); }),
              nullptr);
  }
  EXPECT_EQ(m.spawn("overflow", [] {}), nullptr);
  EXPECT_EQ(m.trace().count_tag("proc.table_full"), 1u);
}

TEST(Machine, ContextSwitchesAreCounted) {
  sim::Machine m;
  m.spawn("a", [&] {
    for (int i = 0; i < 3; ++i) m.yield();
  });
  m.spawn("b", [&] {
    for (int i = 0; i < 3; ++i) m.yield();
  });
  m.run();
  EXPECT_GE(m.context_switches(), 6u);
}

TEST(Machine, ChargePreemptsWhenHigherPriorityWakes) {
  sim::Machine m;
  std::vector<std::string> order;
  m.spawn("high", [&] {
    m.sleep_for(sim::msec(5));
    order.push_back("high");
  }, 2);
  m.spawn("low", [&] {
    // Burns 10ms of CPU in 1ms slices; the high-priority wakeup at 5ms
    // must preempt it before it finishes.
    for (int i = 0; i < 10; ++i) m.charge(sim::msec(1));
    order.push_back("low");
  }, 9);
  m.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
}

TEST(Machine, RunUntilPausesCpuBoundProcesses) {
  // A process that never blocks must still return control to the driver
  // at the virtual-time limit, and resume on the next run.
  sim::Machine m;
  std::int64_t iterations = 0;
  m.spawn("spinner", [&] {
    for (;;) {
      m.charge(sim::usec(10));
      ++iterations;
    }
  });
  m.run_until(sim::msec(1));
  EXPECT_EQ(m.now(), sim::msec(1));
  const auto first = iterations;
  EXPECT_NEAR(static_cast<double>(first), 100.0, 2.0);
  m.run_until(sim::msec(2));
  EXPECT_NEAR(static_cast<double>(iterations - first), 100.0, 2.0);
}

TEST(Machine, RunUntilInThePastReturnsImmediately) {
  sim::Machine m;
  m.run_until(sim::sec(1));
  m.spawn("spinner", [&] {
    for (;;) m.charge(sim::usec(10));
  });
  m.run_until(sim::msec(500));  // in the past: must not hang
  EXPECT_EQ(m.now(), sim::sec(1));
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Machine m(42);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
      m.spawn("p" + std::to_string(i), [&m, &order, i] {
        for (int k = 0; k < 3; ++k) {
          order.push_back(i);
          m.sleep_for(sim::msec(1 + i));
        }
      });
    }
    m.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Machine, DestructorReapsBlockedProcesses) {
  auto m = std::make_unique<sim::Machine>();
  m->spawn("stuck", [&] { m->block_current("forever"); });
  m->run_until(sim::msec(1));
  m.reset();  // must not hang or crash
  SUCCEED();
}

TEST(Machine, SpawnFromProcessContextWorks) {
  sim::Machine m;
  bool child_ran = false;
  m.spawn("parent", [&] {
    m.spawn("child", [&] { child_ran = true; });
  });
  m.run();
  EXPECT_TRUE(child_ran);
}

TEST(Machine, SuspendFreezesAndResumeContinues) {
  sim::Machine m;
  int beats = 0;
  auto* p = m.spawn("worker", [&] {
    for (;;) {
      ++beats;
      m.sleep_for(sim::msec(10));
    }
  });
  m.run_until(sim::msec(100));
  const int before = beats;
  m.suspend(p);
  m.run_until(sim::msec(300));
  EXPECT_LE(beats - before, 1);
  m.resume(p);
  m.run_until(sim::msec(500));
  EXPECT_GE(beats - before, 10);
}

TEST(Machine, KillOverridesSuspension) {
  sim::Machine m;
  auto* p = m.spawn("worker", [&] {
    for (;;) m.sleep_for(sim::msec(10));
  });
  m.run_until(sim::msec(50));
  m.suspend(p);
  m.kill(p);
  m.run_until(sim::msec(100));
  EXPECT_EQ(p->state(), sim::ProcState::kZombie);
}

TEST(Machine, ManyTimersFireInOrderUnderLoad) {
  sim::Machine m(5);
  std::vector<int> fired;
  sim::Rng rng(99);
  // 200 timers with random deadlines; they must fire sorted by time.
  std::vector<std::pair<sim::Time, int>> deadlines;
  for (int i = 0; i < 200; ++i) {
    deadlines.push_back({sim::msec(1 + rng.next_below(1000)), i});
  }
  for (auto& [t, id] : deadlines) {
    m.at(t, [&fired, id = id] { fired.push_back(id); });
  }
  // Plus busy processes churning the scheduler meanwhile.
  for (int i = 0; i < 4; ++i) {
    m.spawn("busy" + std::to_string(i), [&] {
      for (;;) {
        m.charge(sim::usec(500));
        m.yield();
      }
    });
  }
  m.run_until(sim::sec(2));
  ASSERT_EQ(fired.size(), 200u);
  std::sort(deadlines.begin(), deadlines.end());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], deadlines[i].second) << "at index " << i;
  }
}

TEST(Machine, HundredProcessChurnStaysConsistent) {
  sim::Machine m(3);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    m.spawn("p" + std::to_string(i), [&m, &completed, i] {
      for (int k = 0; k < 10; ++k) {
        m.sleep_for(sim::msec(1 + (i * 7 + k) % 13));
      }
      ++completed;
    }, i % sim::Machine::kNumPriorities);
  }
  m.run();
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(m.live_count(), 0);
}

TEST(Machine, RngIsDeterministic) {
  sim::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Machine, RngGaussianIsCentered) {
  sim::Rng r(123);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += r.next_gaussian();
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.05);
}

TEST(Machine, ReadyBitmapSurvivesChurnAcrossAllPriorities) {
  // Regression test for the O(1) bitmap scheduler: hammer every priority
  // level with sleeps, suspends and resumes, and check that execution
  // order still follows strict priority (0 first) with nothing starved or
  // lost — a desynced ready-bitmap would either skip a level entirely or
  // pick an empty one and crash.
  sim::Machine m;
  std::vector<int> order;
  std::vector<sim::Process*> procs;
  for (int prio = sim::Machine::kNumPriorities - 1; prio >= 0; --prio) {
    procs.push_back(m.spawn("p" + std::to_string(prio), [&, prio] {
      for (int beat = 0; beat < 3; ++beat) {
        order.push_back(prio);
        m.sleep_for(sim::msec(10));
      }
    }, prio));
  }
  // All sleepers wake at the same instants; each wave must drain in
  // priority order even though spawn order was reversed.
  m.run_until(sim::msec(5));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(
                              sim::Machine::kNumPriorities));
  for (int i = 0; i < sim::Machine::kNumPriorities; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }

  // Suspend a band in the middle; the bitmap must keep serving the rest.
  for (sim::Process* p : procs) {
    if (p->priority() >= 4 && p->priority() < 8) m.suspend(p);
  }
  m.run_until(sim::msec(15));
  for (std::size_t i = sim::Machine::kNumPriorities; i < order.size(); ++i) {
    EXPECT_TRUE(order[i] < 4 || order[i] >= 8) << "suspended prio ran";
  }

  // Resume and drain: every process finishes its three beats.
  for (sim::Process* p : procs) {
    if (p->suspended()) m.resume(p);
  }
  m.run();
  EXPECT_EQ(order.size(),
            static_cast<std::size_t>(3 * sim::Machine::kNumPriorities));
}
