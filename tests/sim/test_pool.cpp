// FixedPool: the arena behind the hot loop's per-message state (fabric
// Exec slots and friends). What matters: LIFO slot recycling (cache-warm
// reuse), 0xDD poisoning between lives, bounded pools shedding load by
// returning nullptr, and the destructor reclaiming objects that were
// still live — a machine shutting down can drop unfired timers that own
// pooled pointers.
#include "sim/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace sim = mkbas::sim;

namespace {

struct Tracked {
  static int live;
  std::uint64_t payload;
  explicit Tracked(std::uint64_t p) : payload(p) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(FixedPool, AcquireConstructsReleaseDestroys) {
  Tracked::live = 0;
  sim::FixedPool<Tracked> pool(4);
  Tracked* a = pool.acquire(0xAAULL);
  Tracked* b = pool.acquire(0xBBULL);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(Tracked::live, 2);
  EXPECT_EQ(a->payload, 0xAAULL);
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.high_water(), 2u);
}

TEST(FixedPool, LifoReuseReturnsTheSlotJustReleased) {
  sim::FixedPool<Tracked> pool(8);
  Tracked* a = pool.acquire(1ULL);
  Tracked* b = pool.acquire(2ULL);
  pool.release(b);
  // The freelist is LIFO: the hottest slot comes back first.
  Tracked* c = pool.acquire(3ULL);
  EXPECT_EQ(c, b);
  pool.release(a);
  pool.release(c);
  Tracked* d = pool.acquire(4ULL);
  EXPECT_EQ(d, c);
  pool.release(d);
}

TEST(FixedPool, SteadyChurnNeverGrowsPastHighWater) {
  sim::FixedPool<Tracked> pool(16);
  std::vector<Tracked*> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.acquire(7ULL));
  for (Tracked* p : held) pool.release(p);
  const std::size_t chunks = pool.chunk_count();
  // A long churn bounded by the high-water mark stays inside the arena.
  for (int round = 0; round < 10000; ++round) {
    Tracked* p = pool.acquire(static_cast<std::uint64_t>(round));
    Tracked* q = pool.acquire(static_cast<std::uint64_t>(round) + 1);
    pool.release(q);
    pool.release(p);
  }
  EXPECT_EQ(pool.chunk_count(), chunks);
  EXPECT_EQ(pool.high_water(), 10u);
}

TEST(FixedPool, ReleasedStorageIsPoisoned) {
  sim::FixedPool<Tracked> pool(4);
  Tracked* p = pool.acquire(0x1122334455667788ULL);
  auto* bytes = reinterpret_cast<const unsigned char*>(p);
  pool.release(p);
  // The object is gone but the slot's storage must read back as poison —
  // a use-after-release sees 0xDD..., and the next acquire asserts on any
  // byte something scribbled meanwhile.
  for (std::size_t i = 0; i < sizeof(Tracked); ++i) {
    ASSERT_EQ(bytes[i], sim::FixedPool<Tracked>::kPoison) << "byte " << i;
  }
  Tracked* q = pool.acquire(5ULL);  // poison check passes on a clean slot
  EXPECT_EQ(q, p);
  pool.release(q);
}

TEST(FixedPool, BoundedPoolReturnsNullOnExhaustion) {
  sim::FixedPool<Tracked> pool(2, 4);  // 2-slot chunks, at most 4 slots
  std::vector<Tracked*> held;
  for (int i = 0; i < 4; ++i) {
    Tracked* p = pool.acquire(static_cast<std::uint64_t>(i));
    ASSERT_NE(p, nullptr);
    held.push_back(p);
  }
  EXPECT_EQ(pool.acquire(99ULL), nullptr);  // shed, don't grow
  EXPECT_EQ(pool.capacity(), 4u);
  pool.release(held.back());
  held.pop_back();
  EXPECT_NE(pool.acquire(100ULL), nullptr);  // a freed slot serves again
  for (Tracked* p : held) pool.release(p);
  EXPECT_EQ(pool.in_use(), 1u);  // the one acquired after the release
}

TEST(FixedPool, DestructorDestroysLiveObjects) {
  Tracked::live = 0;
  {
    sim::FixedPool<Tracked> pool(8);
    pool.acquire(1ULL);
    pool.acquire(2ULL);
    Tracked* c = pool.acquire(3ULL);
    pool.release(c);
    EXPECT_EQ(Tracked::live, 2);
    // Two objects deliberately still live when the pool dies.
  }
  EXPECT_EQ(Tracked::live, 0);
}

}  // namespace
