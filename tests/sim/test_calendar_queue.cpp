// CalendarQueue vs std::priority_queue: the calendar queue replaced the
// heap under Machine's timer wheel, and the simulator's determinism
// battery hangs off the fire order being *identical* — (when, seq)
// ascending, ties broken by insertion sequence. These tests drive both
// structures with the same randomized workloads (16 seeds) and demand
// the same pop order, interleaving pushes and pops so resizes, cache
// refills and the far-future sweep all get exercised.
#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim = mkbas::sim;

namespace {

struct Ev {
  sim::Time when = 0;
  std::uint64_t seq = 0;
};

struct EvLater {
  // std::priority_queue is a max-heap; invert to pop the minimum.
  bool operator()(const Ev& a, const Ev& b) const {
    return a.when != b.when ? a.when > b.when : a.seq > b.seq;
  }
};

using RefQueue = std::priority_queue<Ev, std::vector<Ev>, EvLater>;

// Pop everything from both queues, asserting identical (when, seq) pairs.
void drain_and_compare(sim::CalendarQueue<Ev>& cq, RefQueue& ref) {
  while (!ref.empty()) {
    ASSERT_FALSE(cq.empty());
    const Ev want = ref.top();
    ref.pop();
    EXPECT_EQ(cq.min_when(), want.when);
    EXPECT_EQ(cq.top().when, want.when);
    EXPECT_EQ(cq.top().seq, want.seq);
    const Ev got = cq.pop();
    ASSERT_EQ(got.when, want.when);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(cq.empty());
  EXPECT_EQ(cq.min_when(), sim::kTimeNever);
}

TEST(CalendarQueue, EmptyBasics) {
  sim::CalendarQueue<Ev> cq;
  EXPECT_TRUE(cq.empty());
  EXPECT_EQ(cq.size(), 0u);
  EXPECT_EQ(cq.min_when(), sim::kTimeNever);
}

TEST(CalendarQueue, FifoAmongEqualTimes) {
  // Equal `when` must pop in seq order — the scheduler's FIFO guarantee
  // for timers armed at the same instant.
  sim::CalendarQueue<Ev> cq;
  for (std::uint64_t s = 0; s < 100; ++s) {
    cq.push({sim::msec(5), s});
  }
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_EQ(cq.pop().seq, s);
  }
}

TEST(CalendarQueue, MatchesHeapOnRandomWorkload16Seeds) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    sim::Rng rng(seed * 0x9E3779B97F4A7C15ULL);
    sim::CalendarQueue<Ev> cq;
    RefQueue ref;
    std::uint64_t seq = 0;
    sim::Time now = 0;  // monotone lower bound, like the machine clock

    for (int step = 0; step < 4000; ++step) {
      const std::uint64_t dice = rng.next_u64() % 100;
      if (dice < 60 || ref.empty()) {
        // Push at now + jitter; occasionally far future (sparse bucket
        // lap + direct sweep), occasionally immediate (same-day churn).
        std::uint64_t jitter = rng.next_u64() % 100;
        sim::Duration delta = jitter < 5    ? sim::minutes(60 * (1 + jitter))
                              : jitter < 20 ? sim::usec(rng.next_u64() % 50)
                                            : sim::msec(rng.next_u64() % 200);
        Ev e{now + delta, seq++};
        cq.push(e);
        ref.push(e);
      } else {
        ASSERT_FALSE(cq.empty()) << "seed " << seed << " step " << step;
        const Ev want = ref.top();
        ref.pop();
        EXPECT_EQ(cq.min_when(), want.when);
        const Ev got = cq.pop();
        ASSERT_EQ(got.when, want.when) << "seed " << seed << " step " << step;
        ASSERT_EQ(got.seq, want.seq) << "seed " << seed << " step " << step;
        now = got.when;  // virtual clock advances to the fired event
      }
    }
    drain_and_compare(cq, ref);
  }
}

TEST(CalendarQueue, ShrinkRebuildKeepsOrder) {
  // Grow past several resizes, then drain to force the quarter-occupancy
  // shrink rebuilds; order must survive every geometry change.
  sim::CalendarQueue<Ev> cq;
  RefQueue ref;
  sim::Rng rng(77);
  for (std::uint64_t s = 0; s < 3000; ++s) {
    Ev e{static_cast<sim::Time>(rng.next_u64() % (1ULL << 40)), s};
    cq.push(e);
    ref.push(e);
  }
  drain_and_compare(cq, ref);
}

TEST(CalendarQueue, FarFutureCluster) {
  // All events a calendar year past the first pop: exercises the
  // fruitless forward lap -> direct_min_sweep fallback.
  sim::CalendarQueue<Ev> cq;
  RefQueue ref;
  cq.push({sim::usec(1), 0});
  ref.push({sim::usec(1), 0});
  for (std::uint64_t s = 1; s <= 64; ++s) {
    Ev e{sim::sec(86400) * 365 + sim::sec(static_cast<std::int64_t>(s % 7)), s};
    cq.push(e);
    ref.push(e);
  }
  drain_and_compare(cq, ref);
}

}  // namespace
