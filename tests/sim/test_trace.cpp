#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sim = mkbas::sim;

TEST(Trace, EmitAndQueryByTag) {
  sim::TraceLog log;
  log.emit(10, 1, sim::TraceKind::kIpc, "send", "a->b");
  log.emit(20, 2, sim::TraceKind::kIpc, "recv", "b<-a");
  log.emit(30, 1, sim::TraceKind::kIpc, "send", "a->c");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count_tag("send"), 2u);
  auto sends = log.with_tag("send");
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].time, 10);
  EXPECT_EQ(sends[1].time, 30);
}

TEST(Trace, FindFirstReturnsEarliestMatch) {
  sim::TraceLog log;
  log.emit(10, 1, sim::TraceKind::kSecurity, "acm.deny", "x");
  log.emit(20, 1, sim::TraceKind::kSecurity, "acm.deny", "y");
  const auto* ev = log.find_first(
      [](const sim::TraceEvent& e) { return e.what() == "acm.deny"; });
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->detail, "x");
}

TEST(Trace, FindFirstReturnsNullWhenAbsent) {
  sim::TraceLog log;
  EXPECT_EQ(log.find_first([](const sim::TraceEvent&) { return true; }),
            nullptr);
}

TEST(Trace, DumpRendersOneLinePerEvent) {
  sim::TraceLog log;
  log.emit(5, 3, sim::TraceKind::kDevice, "sensor.sample", "21.5C");
  log.emit(6, -1, sim::TraceKind::kNetwork, "http.get");
  std::ostringstream os;
  log.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("pid=3"), std::string::npos);
  EXPECT_NE(text.find("sensor.sample"), std::string::npos);
  EXPECT_NE(text.find("21.5C"), std::string::npos);
  EXPECT_NE(text.find("http.get"), std::string::npos);
}

TEST(Trace, DumpFiltersByKind) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send");
  log.emit(2, 1, sim::TraceKind::kAttack, "spoof");
  std::ostringstream os;
  log.dump(os, sim::TraceKind::kAttack);
  EXPECT_EQ(os.str().find("send"), std::string::npos);
  EXPECT_NE(os.str().find("spoof"), std::string::npos);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(sim::to_string(sim::TraceKind::kSecurity), "sec");
  EXPECT_STREQ(sim::to_string(sim::TraceKind::kAttack), "atk");
}

TEST(Trace, ClearEmptiesTheLog) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(Trace, TagInterningIsStableAndIdempotent) {
  auto& reg = sim::TagRegistry::instance();
  const auto a = reg.intern("trace_test.tag_a");
  const auto b = reg.intern("trace_test.tag_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("trace_test.tag_a"), a);
  EXPECT_EQ(reg.name(a), "trace_test.tag_a");
  std::uint32_t id = 0;
  EXPECT_TRUE(reg.try_lookup("trace_test.tag_b", &id));
  EXPECT_EQ(id, b);
}

TEST(Trace, CountTagOfNeverEmittedTagIsZeroWithoutInterning) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send");
  const auto before = sim::TagRegistry::instance().size();
  EXPECT_EQ(log.count_tag("trace_test.never_emitted_anywhere"), 0u);
  EXPECT_TRUE(log.with_tag("trace_test.never_emitted_anywhere").empty());
  EXPECT_EQ(sim::TagRegistry::instance().size(), before);
}

TEST(Trace, InternedEmitMatchesStringQueries) {
  sim::TraceLog log;
  const auto tag = sim::TagRegistry::instance().intern("acm.deny");
  log.emit(5, 2, sim::TraceKind::kSecurity, tag, "by id");
  EXPECT_EQ(log.count_tag("acm.deny"), 1u);
  EXPECT_EQ(log.count_tag(tag), 1u);
  EXPECT_EQ(log.events().back().what(), "acm.deny");
}

TEST(Trace, RingBufferEvictsOldestFirst) {
  sim::TraceLog log;
  log.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    log.emit(i, 1, sim::TraceKind::kIpc, "send", std::to_string(i));
  }
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events().front().detail, "2");  // 0 and 1 evicted
  EXPECT_EQ(log.events().back().detail, "4");
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.total_emitted(), 5u);
}

TEST(Trace, SetCapacityTrimsAnOverFullLog) {
  sim::TraceLog log;
  for (int i = 0; i < 10; ++i) {
    log.emit(i, 1, sim::TraceKind::kIpc, "send", std::to_string(i));
  }
  log.set_capacity(4);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.events().front().detail, "6");
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.total_emitted(), 10u);
}

TEST(Trace, RingBufferKeepsExactTagCountsForSurvivors) {
  sim::TraceLog log;
  log.set_capacity(2);
  log.emit(1, 1, sim::TraceKind::kSecurity, "acm.deny");
  log.emit(2, 1, sim::TraceKind::kSecurity, "acm.allow");
  log.emit(3, 1, sim::TraceKind::kSecurity, "acm.deny");
  EXPECT_EQ(log.count_tag("acm.deny"), 1u);  // the t=1 denial was evicted
  EXPECT_EQ(log.count_tag("acm.allow"), 1u);
}

TEST(Trace, DumpFiltersByTag) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send", "keep");
  log.emit(2, 1, sim::TraceKind::kIpc, "recv", "drop");
  std::ostringstream os;
  log.dump(os, std::string("send"));
  EXPECT_NE(os.str().find("keep"), std::string::npos);
  EXPECT_EQ(os.str().find("drop"), std::string::npos);
}

TEST(Trace, ZeroCapacityMeansUnbounded) {
  sim::TraceLog log;
  log.set_capacity(2);
  log.set_capacity(0);
  for (int i = 0; i < 100; ++i) {
    log.emit(i, 1, sim::TraceKind::kIpc, "send");
  }
  EXPECT_EQ(log.size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);
}

// Regression: clear() used to discard events without counting them as
// dropped, so an exporter that snapshots-and-clears silently broke the
// accounting invariant below.
TEST(Trace, AccountingInvariantSurvivesClearAndEviction) {
  sim::TraceLog log;
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.emit(i, 1, sim::TraceKind::kIpc, "send");
  }
  // 10 emitted, ring kept 4, evicted 6.
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.total_emitted(), log.size() + log.dropped());

  log.clear();  // the snapshot-and-clear pattern
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 10u);  // the 4 cleared events now count too
  EXPECT_EQ(log.total_emitted(), log.size() + log.dropped());

  for (int i = 0; i < 3; ++i) {
    log.emit(i, 1, sim::TraceKind::kIpc, "send");
  }
  EXPECT_EQ(log.total_emitted(), 13u);
  EXPECT_EQ(log.total_emitted(), log.size() + log.dropped());
}

TEST(Trace, FaultKindHasAStableName) {
  EXPECT_STREQ(sim::to_string(sim::TraceKind::kFault), "fault");
}

TEST(Trace, MergeFromPreservesEventsAndAccounting) {
  sim::TraceLog a, b;
  a.emit(10, 1, sim::TraceKind::kIpc, "send", "a->b");
  b.emit(20, 2, sim::TraceKind::kIpc, "recv", "b<-a");
  b.emit(30, 2, sim::TraceKind::kIpc, "send", "b->c");
  a.merge_from(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.count_tag("send"), 2u);
  EXPECT_EQ(a.total_emitted(), 3u);
  EXPECT_EQ(a.dropped(), 0u);
  EXPECT_EQ(b.size(), 2u);  // source untouched
}

TEST(Trace, MergeFromCarriesDroppedCountsThroughTheRing) {
  sim::TraceLog src;
  src.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    src.emit(i, 1, sim::TraceKind::kIpc, "e", "");
  }
  ASSERT_EQ(src.size(), 2u);
  ASSERT_EQ(src.dropped(), 3u);

  sim::TraceLog dst;
  dst.set_capacity(3);
  dst.emit(100, 1, sim::TraceKind::kIpc, "old", "");
  dst.emit(101, 1, sim::TraceKind::kIpc, "old", "");
  dst.merge_from(src);
  // dst kept 3 of the 4 events it saw (ring evicted one) and inherits
  // src's 3 pre-merge drops; the invariant total = size + dropped holds.
  EXPECT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.dropped(), 1u + 3u);
  EXPECT_EQ(dst.total_emitted(), dst.size() + dst.dropped());
}
