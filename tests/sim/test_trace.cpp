#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sim = mkbas::sim;

TEST(Trace, EmitAndQueryByTag) {
  sim::TraceLog log;
  log.emit(10, 1, sim::TraceKind::kIpc, "send", "a->b");
  log.emit(20, 2, sim::TraceKind::kIpc, "recv", "b<-a");
  log.emit(30, 1, sim::TraceKind::kIpc, "send", "a->c");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count_tag("send"), 2u);
  auto sends = log.with_tag("send");
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].time, 10);
  EXPECT_EQ(sends[1].time, 30);
}

TEST(Trace, FindFirstReturnsEarliestMatch) {
  sim::TraceLog log;
  log.emit(10, 1, sim::TraceKind::kSecurity, "acm.deny", "x");
  log.emit(20, 1, sim::TraceKind::kSecurity, "acm.deny", "y");
  const auto* ev = log.find_first(
      [](const sim::TraceEvent& e) { return e.what == "acm.deny"; });
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->detail, "x");
}

TEST(Trace, FindFirstReturnsNullWhenAbsent) {
  sim::TraceLog log;
  EXPECT_EQ(log.find_first([](const sim::TraceEvent&) { return true; }),
            nullptr);
}

TEST(Trace, DumpRendersOneLinePerEvent) {
  sim::TraceLog log;
  log.emit(5, 3, sim::TraceKind::kDevice, "sensor.sample", "21.5C");
  log.emit(6, -1, sim::TraceKind::kNetwork, "http.get");
  std::ostringstream os;
  log.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("pid=3"), std::string::npos);
  EXPECT_NE(text.find("sensor.sample"), std::string::npos);
  EXPECT_NE(text.find("21.5C"), std::string::npos);
  EXPECT_NE(text.find("http.get"), std::string::npos);
}

TEST(Trace, DumpFiltersByKind) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send");
  log.emit(2, 1, sim::TraceKind::kAttack, "spoof");
  std::ostringstream os;
  log.dump(os, sim::TraceKind::kAttack);
  EXPECT_EQ(os.str().find("send"), std::string::npos);
  EXPECT_NE(os.str().find("spoof"), std::string::npos);
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(sim::to_string(sim::TraceKind::kSecurity), "sec");
  EXPECT_STREQ(sim::to_string(sim::TraceKind::kAttack), "atk");
}

TEST(Trace, ClearEmptiesTheLog) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}
