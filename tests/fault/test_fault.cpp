// src/fault under test: plan construction, every injection kind against
// a bare machine or a full scenario, and the reference fault campaign
// acceptance criteria (MINIX reincarnates with its ACM row intact; the
// Linux baseline stays down).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace fault = mkbas::fault;
namespace sim = mkbas::sim;
namespace core = mkbas::core;

namespace {

TEST(FaultPlan, BuildersRecordEvents) {
  fault::FaultPlan plan("p", 7);
  plan.crash(sim::sec(1), "a")
      .hang(sim::sec(2), "b", sim::msec(500))
      .drop_messages(sim::sec(3), sim::sec(1), "a", "b")
      .delay_messages(sim::sec(4), sim::sec(1), "", "b", sim::msec(10))
      .corrupt_messages(sim::sec(5), sim::sec(1), "a", "")
      .sensor_stuck_at(sim::sec(6), 99.0, sim::sec(2))
      .sensor_drift(sim::sec(7), sim::sec(3), 0.5)
      .clock_jitter(sim::sec(8), sim::sec(1), sim::msec(2));
  ASSERT_EQ(plan.events().size(), 8u);
  EXPECT_EQ(plan.events()[0].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.events()[3].dst, "b");
  EXPECT_DOUBLE_EQ(plan.events()[5].value, 99.0);
  // describe() mentions every event.
  const std::string desc = plan.describe();
  for (const auto& ev : plan.events()) {
    EXPECT_NE(desc.find(fault::to_string(ev.kind)), std::string::npos);
  }
}

TEST(CorruptBytes, DeterministicPerSeed) {
  std::uint8_t a[32], b[32], c[32];
  for (int i = 0; i < 32; ++i) a[i] = b[i] = c[i] = static_cast<uint8_t>(i);
  sim::corrupt_bytes(a, sizeof(a), 123);
  sim::corrupt_bytes(b, sizeof(b), 123);
  sim::corrupt_bytes(c, sizeof(c), 124);
  EXPECT_EQ(0, std::memcmp(a, b, sizeof(a)));
  // Different seeds flip different bits (astronomically unlikely to
  // collide for this fixed pair).
  EXPECT_NE(0, std::memcmp(a, c, sizeof(a)));
  // Degenerate calls are no-ops.
  sim::corrupt_bytes(nullptr, 0, 1);
  sim::corrupt_bytes(a, 0, 1);
  EXPECT_EQ(0, std::memcmp(a, b, sizeof(a)));
}

TEST(FaultInjector, CrashKillsTheTargetProcess) {
  sim::Machine m(1);
  std::atomic<int> beats{0};
  m.spawn("victim", [&] {
    for (;;) {
      m.sleep_for(sim::msec(100));
      ++beats;
    }
  });
  fault::FaultPlan plan("crash", 1);
  plan.crash(sim::msec(450), "victim");
  fault::FaultInjector inj(m, plan);
  inj.arm();
  m.run_until(sim::sec(2));
  EXPECT_EQ(beats.load(), 4);  // 100..400ms, then killed
  EXPECT_EQ(inj.injected(), 1u);
  EXPECT_TRUE(m.live_processes().empty());
  m.shutdown();
}

TEST(FaultInjector, CrashOfUnknownTargetIsANotedMiss) {
  sim::Machine m(1);
  fault::FaultPlan plan("miss", 1);
  plan.crash(sim::msec(10), "nobody-home");
  fault::FaultInjector inj(m, plan);
  inj.arm();
  m.run_until(sim::msec(100));
  EXPECT_EQ(inj.injected(), 0u);
  bool noted = false;
  for (const auto& ev : m.trace().events()) {
    if (ev.what() == "fault.miss") noted = true;
  }
  EXPECT_TRUE(noted);
  m.shutdown();
}

TEST(FaultInjector, HangSuspendsThenResumes) {
  sim::Machine m(1);
  std::vector<sim::Time> beat_times;
  m.spawn("victim", [&] {
    for (;;) {
      m.sleep_for(sim::msec(100));
      beat_times.push_back(m.now());
    }
  });
  fault::FaultPlan plan("hang", 1);
  plan.hang(sim::msec(350), "victim", sim::msec(400));
  fault::FaultInjector inj(m, plan);
  inj.arm();
  m.run_until(sim::sec(2));
  m.shutdown();
  // Beats at 100,200,300; then a gap spanning the hang; then beats again.
  ASSERT_GE(beat_times.size(), 5u);
  sim::Duration max_gap = 0;
  for (std::size_t i = 1; i < beat_times.size(); ++i) {
    max_gap = std::max(max_gap, beat_times[i] - beat_times[i - 1]);
  }
  EXPECT_GE(max_gap, sim::msec(400));
  EXPECT_GE(beat_times.back(), sim::msec(800));
}

TEST(FaultInjector, SensorStuckAtAndClear) {
  sim::Machine m(1);
  mkbas::bas::ScenarioConfig cfg;
  cfg.sensor_noise_sigma_c = 0.0;
  mkbas::bas::Plant plant(m, cfg);
  fault::FaultPlan plan("stuck", 1);
  plan.sensor_stuck_at(sim::sec(1), -40.0, sim::sec(2));
  fault::FaultInjector inj(m, plan);
  inj.register_sensor(&plant.sensor);
  inj.arm();
  std::vector<double> readings;
  m.every(sim::msec(500), sim::msec(500),
          [&] { readings.push_back(plant.sensor.read_temperature_c()); });
  m.run_until(sim::sec(4));
  m.shutdown();
  // Reads at 0.5s, 1.0s(stuck from here).. 3.0s(cleared at 3.0).
  ASSERT_GE(readings.size(), 7u);
  EXPECT_GT(readings[0], 0.0);          // a plausible room temperature
  EXPECT_DOUBLE_EQ(readings[2], -40.0); // 1.5s: stuck
  EXPECT_DOUBLE_EQ(readings[4], -40.0); // 2.5s: still stuck
  EXPECT_GT(readings[6], 0.0);          // 3.5s: cleared
}

TEST(FaultInjector, SensorDriftAccumulates) {
  sim::Machine m(1);
  mkbas::bas::ScenarioConfig cfg;
  cfg.sensor_noise_sigma_c = 0.0;
  mkbas::bas::Plant plant(m, cfg);
  const double before = plant.sensor.read_temperature_c();
  fault::FaultPlan plan("drift", 1);
  plan.sensor_drift(sim::sec(1), sim::sec(4), 0.5);  // +2C over 4s
  fault::FaultInjector inj(m, plan);
  inj.register_sensor(&plant.sensor);
  inj.arm();
  m.run_until(sim::sec(6));
  const double after = plant.sensor.read_temperature_c();
  m.shutdown();
  EXPECT_NEAR(after - before, 2.0, 0.3);  // room physics moves a little too
}

TEST(FaultInjector, MessageDropWindowSilencesTheLoop) {
  // Full MINIX scenario: dropping sensor->control traffic for 5s starves
  // the control loop exactly for the window, then it recovers by itself
  // (no reincarnation involved — the processes never died).
  core::RunOptions opts;
  opts.settle = sim::sec(30);
  opts.post = sim::sec(30);
  fault::FaultPlan plan("drop", 9);
  plan.drop_messages(sim::sec(20), sim::sec(5), "tempSensProc", "tempProc");
  const auto res = core::run_fault(core::Platform::kMinix, plan, opts);
  EXPECT_TRUE(res.loop_recovered);
  EXPECT_GE(res.max_ctl_gap, sim::sec(5));
  EXPECT_LT(res.max_ctl_gap, sim::sec(8));
  EXPECT_EQ(res.restarts, 0);
  EXPECT_GT(res.faults_injected, 0u);
}

TEST(FaultInjector, ClockJitterKeepsRunsDeterministic) {
  auto run_once = [] {
    sim::Machine m(77);
    std::vector<sim::Time> wakes;
    m.spawn("sleeper", [&] {
      for (int i = 0; i < 20; ++i) {
        m.sleep_for(sim::msec(100));
        wakes.push_back(m.now());
      }
    });
    fault::FaultPlan plan("jitter", 3);
    plan.clock_jitter(sim::msec(500), sim::sec(1), sim::msec(20));
    fault::FaultInjector inj(m, plan);
    inj.arm();
    m.run_until(sim::sec(3));
    m.shutdown();
    return wakes;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // same seed, same plan => identical timeline
  // And the jitter actually moved at least one wakeup off its nominal
  // 100ms grid inside the window.
  bool perturbed = false;
  for (sim::Time t : a) {
    if (t > sim::msec(500) && t <= sim::msec(1500) && t % sim::msec(100) != 0)
      perturbed = true;
  }
  EXPECT_TRUE(perturbed);
}

// ---------------------------------------------------------------------
// The reference campaign from the issue: crash the sensor driver, then
// the (attacker-facing) web interface.
// ---------------------------------------------------------------------

class ReferenceCampaign : public ::testing::Test {
 protected:
  core::RunOptions opts_;
  fault::FaultPlan plan_ = fault::reference_sensor_crash_plan();
  static constexpr sim::Time kProbeAt = sim::sec(70);

  void SetUp() override {
    opts_.settle = sim::minutes(1);
    opts_.post = sim::minutes(2);
    opts_.scenario.room.initial_temp_c =
        opts_.scenario.control.initial_setpoint_c;
  }
};

TEST_F(ReferenceCampaign, MinixReincarnatesWithinBoundedMttr) {
  const auto res = core::run_fault(core::Platform::kMinix, plan_, opts_,
                                   kProbeAt);
  EXPECT_TRUE(res.loop_recovered);
  ASSERT_GE(res.mttr, 0);
  EXPECT_GT(res.mttr, 0);
  EXPECT_LT(res.mttr, sim::sec(5));
  EXPECT_GE(res.restarts, 2);  // sensor driver + web interface
  EXPECT_EQ(res.faults_injected, 2u);
  // The restarted web interface regained its *original restricted* ACM
  // row: the spoof probe ran and landed nothing.
  EXPECT_TRUE(res.web_spoof.attempted);
  EXPECT_FALSE(res.web_spoof.primitive_succeeded);
  EXPECT_GT(res.web_spoof.attempts, 0);
  EXPECT_EQ(res.web_spoof.successes, 0);
  EXPECT_FALSE(res.safety.physically_compromised());
}

TEST_F(ReferenceCampaign, Sel4RestartsFromSpec) {
  const auto res = core::run_fault(core::Platform::kSel4, plan_, opts_,
                                   kProbeAt);
  EXPECT_TRUE(res.loop_recovered);
  ASSERT_GE(res.mttr, 0);
  EXPECT_LT(res.mttr, sim::sec(5));
  EXPECT_GE(res.restarts, 2);
  EXPECT_TRUE(res.web_spoof.attempted);
  EXPECT_FALSE(res.web_spoof.primitive_succeeded);
  EXPECT_FALSE(res.safety.physically_compromised());
}

TEST_F(ReferenceCampaign, LinuxBaselineStaysDown) {
  const auto res = core::run_fault(core::Platform::kLinux, plan_, opts_,
                                   kProbeAt);
  EXPECT_FALSE(res.loop_recovered);
  EXPECT_EQ(res.mttr, -1);
  EXPECT_EQ(res.restarts, 0);
  // The web interface died with no one to restart it, so the probe never
  // even ran.
  EXPECT_FALSE(res.web_spoof.attempted);
  EXPECT_TRUE(res.safety.physically_compromised());
  EXPECT_FALSE(res.safety.control_alive);
}

TEST_F(ReferenceCampaign, LinuxExcursionExceedsMinix) {
  // Both runs long enough for the unrecovered room to drift visibly.
  opts_.post = sim::minutes(6);
  const auto mx = core::run_fault(core::Platform::kMinix, plan_, opts_);
  const auto lx = core::run_fault(core::Platform::kLinux, plan_, opts_);
  EXPECT_GT(lx.max_excursion_after_fault_c,
            mx.max_excursion_after_fault_c + 0.5);
}

}  // namespace
