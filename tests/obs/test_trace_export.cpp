#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include "json_lite.hpp"
#include "sim/trace.hpp"

namespace obs = mkbas::obs;
namespace sim = mkbas::sim;

namespace {

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(TraceExport, EmptyLogIsStillAValidDocument) {
  sim::TraceLog log;
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, SpawnEventsNameTheProcessTracks) {
  sim::TraceLog log;
  log.emit(0, 1, sim::TraceKind::kProcess, "proc.spawn", "sensor");
  log.emit(0, 2, sim::TraceKind::kProcess, "proc.spawn", "control");
  log.emit(5, 1, sim::TraceKind::kIpc, "send");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"sensor\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"control\"}"), std::string::npos);
  // Two spawned processes plus the always-present track-0 "machine".
  EXPECT_EQ(count_substr(json, "\"process_name\""), 3u);
}

TEST(TraceExport, MachineLevelEventsGoToTrackZero) {
  sim::TraceLog log;
  log.emit(3, -1, sim::TraceKind::kDevice, "heater.failed");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"machine\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"heater.failed\",\"cat\":\"dev\""),
            std::string::npos);
}

TEST(TraceExport, SecurityDenialsBecomeInstantMarkers) {
  sim::TraceLog log;
  log.emit(1, 4, sim::TraceKind::kSecurity, "acm.deny", "2->5 t=9");
  log.emit(2, 4, sim::TraceKind::kSecurity, "acm.allow", "2->3 t=1");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  // The denial is a process-scoped instant; the allow is a normal slice.
  const auto deny_pos = json.find("\"name\":\"acm.deny\"");
  const auto allow_pos = json.find("\"name\":\"acm.allow\"");
  ASSERT_NE(deny_pos, std::string::npos);
  ASSERT_NE(allow_pos, std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"p\"", deny_pos),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\"", allow_pos), std::string::npos);
}

TEST(TraceExport, AttackEventsBecomeGlobalInstantMarkers) {
  sim::TraceLog log;
  log.emit(7, 3, sim::TraceKind::kAttack, "web.compromised", "minix");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"g\""), std::string::npos);
}

TEST(TraceExport, TimestampsPassThroughAsMicroseconds) {
  sim::TraceLog log;
  log.emit(123456, 1, sim::TraceKind::kIpc, "send");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_NE(json.find("\"ts\":123456"), std::string::npos);
}

TEST(TraceExport, DetailStringsAreEscaped) {
  sim::TraceLog log;
  log.emit(1, 1, sim::TraceKind::kIpc, "send", "a\"b");
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

TEST(TraceExport, RingEvictedSpawnFallsBackToPidName) {
  sim::TraceLog log;
  log.set_capacity(1);
  log.emit(0, 9, sim::TraceKind::kProcess, "proc.spawn", "victim");
  log.emit(1, 9, sim::TraceKind::kIpc, "send");  // evicts the spawn event
  const std::string json = obs::to_chrome_trace_json(log);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"args\":{\"name\":\"pid9\"}"), std::string::npos);
  EXPECT_EQ(json.find("victim"), std::string::npos);
}
