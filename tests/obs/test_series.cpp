#include "obs/series.hpp"

#include <gtest/gtest.h>

#include <string>

#include "json_lite.hpp"

namespace obs = mkbas::obs;
namespace sim = mkbas::sim;

TEST(SeriesWindow, AggregatesAndQuantileClampToExactMax) {
  obs::SeriesWindow w;
  w.reset(0);
  w.add(3.0);
  w.add(5.0);
  EXPECT_EQ(w.count, 2u);
  EXPECT_DOUBLE_EQ(w.sum, 8.0);
  EXPECT_DOUBLE_EQ(w.min, 3.0);
  EXPECT_DOUBLE_EQ(w.max, 5.0);
  // The log2 sketch can only name bucket upper bounds, but the export
  // must never claim a quantile above the observed maximum.
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 5.0);
  EXPECT_LE(w.quantile(0.5), 5.0);
  EXPECT_GE(w.quantile(0.5), 3.0);
}

TEST(SeriesWindow, EmptyWindowQuantileIsZero) {
  obs::SeriesWindow w;
  w.reset(7);
  EXPECT_DOUBLE_EQ(w.quantile(0.95), 0.0);
}

TEST(Series, HandlesByTheSameNameShareOneRing) {
  obs::SeriesStore store;
  obs::Series a = store.series("x", sim::sec(1), 4);
  obs::Series b = store.series("x", sim::sec(30), 64);  // args ignored
  a.record(0, 1.0);
  b.record(0, 2.0);
  EXPECT_EQ(a.samples(), 2u);
  EXPECT_EQ(b.samples(), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Series, DefaultConstructedHandleIsInert) {
  obs::Series s;
  s.record(0, 1.0);
  EXPECT_EQ(s.samples(), 0u);
}

TEST(Series, DisabledStoreRecordsNothing) {
  obs::SeriesStore store;
  obs::Series s = store.series("x", sim::sec(1), 4);
  store.set_enabled(false);
  s.record(0, 1.0);
  EXPECT_EQ(store.total_samples(), 0u);
  store.set_enabled(true);
  s.record(0, 1.0);
  EXPECT_EQ(store.total_samples(), 1u);
}

TEST(Series, RingEvictionAccountingConserves) {
  obs::SeriesStore store;
  obs::Series s = store.series("x", sim::sec(1), 4);
  // One sample in each of windows 0..9: the 4-deep ring keeps 6..9 and
  // must have evicted 6 windows carrying 6 samples.
  for (int w = 0; w < 10; ++w) s.record(sim::sec(w), 1.0);
  EXPECT_EQ(store.total_samples(), 10u);
  EXPECT_EQ(store.evicted_windows(), 6u);
  EXPECT_EQ(store.evicted_samples(), 6u);
  EXPECT_EQ(store.live_samples(), 4u);
  EXPECT_EQ(store.late_dropped(), 0u);

  // A sample older than the whole ring is dropped but still counted.
  s.record(sim::sec(0), 1.0);
  EXPECT_EQ(store.late_dropped(), 1u);
  EXPECT_EQ(store.total_samples(), 11u);
  EXPECT_EQ(store.total_samples(), store.live_samples() +
                                       store.evicted_samples() +
                                       store.late_dropped());

  // A late sample whose window is still live lands in that window.
  s.record(sim::sec(7), 2.0);
  EXPECT_EQ(store.late_dropped(), 1u);
  EXPECT_EQ(store.live_samples(), 5u);
  EXPECT_EQ(store.total_samples(), store.live_samples() +
                                       store.evicted_samples() +
                                       store.late_dropped());
}

TEST(Series, HugeGapEvictsEverythingButStaysConserved) {
  obs::SeriesStore store;
  obs::Series s = store.series("x", sim::sec(1), 4);
  for (int w = 0; w < 4; ++w) s.record(sim::sec(w), 1.0);
  s.record(sim::sec(100000), 1.0);
  EXPECT_EQ(store.evicted_windows(), 4u);
  EXPECT_EQ(store.evicted_samples(), 4u);
  EXPECT_EQ(store.live_samples(), 1u);
  EXPECT_EQ(store.total_samples(), 5u);
}

TEST(Series, MergeAlignsWindowsByIndex) {
  obs::SeriesStore a;
  obs::SeriesStore b;
  obs::Series sa = a.series("x", sim::sec(1), 8);
  obs::Series sb = b.series("x", sim::sec(1), 8);
  sa.record(sim::sec(0), 1.0);
  sa.record(sim::sec(1), 2.0);
  sb.record(sim::sec(1), 4.0);
  sb.record(sim::sec(2), 8.0);
  a.merge_from(b);
  EXPECT_EQ(a.total_samples(), 4u);
  EXPECT_EQ(a.live_samples(), 4u);
  const std::string json = a.to_json();
  ASSERT_TRUE(jsonlite::valid(json)) << json;
  // Window 1 combined both stores' samples: sum 2 + 4.
  EXPECT_NE(json.find("\"sum\":6"), std::string::npos) << json;
}

TEST(Series, ExportIsDeterministicAndVersioned) {
  auto build = [] {
    obs::SeriesStore store;
    obs::Series s = store.series("a.lat", sim::sec(1), 4);
    obs::Series t = store.series("b.lat", sim::sec(1), 4);
    for (int w = 0; w < 6; ++w) {
      s.record(sim::sec(w), 1.0 + w);
      t.record(sim::sec(w), 2.0 * w);
    }
    return store.to_json();
  };
  const std::string one = build();
  const std::string two = build();
  EXPECT_EQ(one, two);
  ASSERT_TRUE(jsonlite::valid(one)) << one;
  EXPECT_NE(one.find("\"schema_version\":"), std::string::npos);
  EXPECT_NE(one.find("\"a.lat@m0\""), std::string::npos);
  // Keys sorted: a.lat before b.lat.
  EXPECT_LT(one.find("\"a.lat@m0\""), one.find("\"b.lat@m0\""));
}

TEST(Series, RecentJsonKeepsOnlyTheNewestWindows) {
  obs::SeriesStore store;
  obs::Series s = store.series("x", sim::sec(1), 8);
  for (int w = 0; w < 6; ++w) s.record(sim::sec(w), 1.0);
  const std::string recent = store.recent_json(2);
  ASSERT_TRUE(jsonlite::valid(recent)) << recent;
  // Windows start at index*width: only starts 4s and 5s survive.
  EXPECT_EQ(recent.find("\"start\":3000000"), std::string::npos) << recent;
  EXPECT_NE(recent.find("\"start\":4000000"), std::string::npos) << recent;
  EXPECT_NE(recent.find("\"start\":5000000"), std::string::npos) << recent;
}

TEST(Series, MachineIdKeysMergedStoresApart) {
  obs::SeriesStore a;
  a.set_machine(3);
  obs::Series sa = a.series("x", sim::sec(1), 4);
  sa.record(0, 1.0);
  obs::SeriesStore merged;
  merged.merge_from(a);
  const std::string json = merged.to_json();
  EXPECT_NE(json.find("\"x@m3\""), std::string::npos) << json;
}
