#pragma once

// Minimal JSON validity checker for the observability tests — enough to
// assert that exported documents parse, without an external dependency.
// (CI additionally round-trips the runner's output through python3.)

#include <cctype>
#include <cstring>
#include <string>

namespace jsonlite {

namespace detail {

struct Parser {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool lit(const char* l) {
    const std::size_t n = std::strlen(l);
    if (static_cast<std::size_t>(end - p) < n || std::memcmp(p, l, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end &&
           (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
            *p == 'e' || *p == 'E' || *p == '+' || *p == '-')) {
      ++p;
    }
    return p > start;
  }

  bool object() {
    ++p;  // '{'
    ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++p;  // '['
    ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool value() {
    ws();
    if (p >= end) return false;
    switch (*p) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }
};

}  // namespace detail

/// True iff `s` is exactly one valid JSON value (plus whitespace).
inline bool valid(const std::string& s) {
  detail::Parser parser{s.data(), s.data() + s.size()};
  if (!parser.value()) return false;
  parser.ws();
  return parser.p == parser.end;
}

}  // namespace jsonlite
