// Prometheus text exposition: name sanitization, the counter/gauge/
// histogram mapping, empty-bucket elision, and the property the two
// producers hinge on — rendering a live MetricsRegistry and rendering
// the snapshot re-derived from its deterministic JSON artifact must be
// byte-identical.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "campaign/run_request.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace obs = mkbas::obs;

namespace {

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Minimal exposition-format validator: every line is either a comment
/// or `name[{le="..."}] value` with a legal metric name. The CI smoke
/// job re-checks this with an independent python implementation.
bool valid_exposition(const std::string& text, std::string* why) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      *why = "missing trailing newline";
      return false;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t i = 0;
    if (!(std::isalpha(static_cast<unsigned char>(line[0])) ||
          line[0] == '_' || line[0] == ':')) {
      *why = "bad name start: " + line;
      return false;
    }
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) {
        *why = "unclosed label set: " + line;
        return false;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      *why = "no sample value: " + line;
      return false;
    }
    if (i + 1 >= line.size()) {
      *why = "empty value: " + line;
      return false;
    }
  }
  return true;
}

}  // namespace

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("serve.http.latency_us"),
            "serve_http_latency_us");
  EXPECT_EQ(obs::prometheus_name("minix.ipc.latency"), "minix_ipc_latency");
  EXPECT_EQ(obs::prometheus_name("already_fine:name"), "already_fine:name");
  EXPECT_EQ(obs::prometheus_name("9starts.with.digit"),
            "_9starts_with_digit");
  EXPECT_EQ(obs::prometheus_name(""), "_");
  EXPECT_EQ(obs::prometheus_name("a-b c"), "a_b_c");
}

TEST(Prometheus, CountersAndGaugesRender) {
  obs::PromSnapshot snap;
  snap.counters.emplace_back("serve.requests", 42u);
  snap.gauges.emplace_back("serve.queue_depth", 3.0);
  const std::string out = obs::prometheus_render(snap);
  EXPECT_EQ(out,
            "# TYPE serve_requests_total counter\n"
            "serve_requests_total 42\n"
            "# TYPE serve_queue_depth gauge\n"
            "serve_queue_depth 3\n");
}

TEST(Prometheus, HistogramCumulativeBucketsAndInf) {
  obs::PromHistogram h;
  h.name = "lat.us";
  h.bounds = {1.0, 2.0, 4.0};
  h.cumulative = {5, 5, 9};  // bucket at le=2 is a plateau: elided
  h.count = 11;              // 2 overflow samples beyond the last bound
  h.sum = 30.0;
  obs::PromSnapshot snap;
  snap.histograms.push_back(h);
  const std::string out = obs::prometheus_render(snap);
  EXPECT_EQ(out,
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{le=\"1\"} 5\n"
            "lat_us_bucket{le=\"4\"} 9\n"
            "lat_us_bucket{le=\"+Inf\"} 11\n"
            "lat_us_sum 30\n"
            "lat_us_count 11\n");
}

TEST(Prometheus, RegistryRenderIsValidExposition) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("serve.requests");
  c.inc(7);
  auto g = reg.gauge("serve.queue_depth");
  g.set(2.0);
  auto h = reg.log_histogram("serve.http.latency_us.run", 2, 1e7);
  for (double v : {3.0, 57.0, 140.0, 9999.0, 5e8}) h.record(v);  // 1 overflow
  const std::string out = obs::prometheus_render(reg);
  std::string why;
  EXPECT_TRUE(valid_exposition(out, &why)) << why << "\n" << out;
  EXPECT_TRUE(contains(out, "serve_requests_total 7")) << out;
  EXPECT_TRUE(contains(out, "serve_queue_depth 2")) << out;
  EXPECT_TRUE(contains(out, "# TYPE serve_http_latency_us_run histogram"));
  // +Inf carries the overflow sample, so the configured range is honest.
  EXPECT_TRUE(contains(out, "serve_http_latency_us_run_bucket{le=\"+Inf\"} 5"))
      << out;
  EXPECT_TRUE(contains(out, "serve_http_latency_us_run_count 5")) << out;
}

TEST(Prometheus, RegistryAndJsonDerivedRendersAreByteIdentical) {
  // The daemon scrape renders the live registry; --metrics-prom-out
  // re-derives a snapshot from the deterministic metrics JSON. Same
  // metric state in, same bytes out.
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.counter("z.count").inc(0);
  reg.gauge("mid.gauge").set(-1.5);
  auto h = reg.log_histogram("ipc.latency", 2, 1e6);
  for (double v : {1.0, 2.0, 2.0, 700.0, 1e9}) h.record(v);
  auto h2 = reg.histogram("explicit.bounds", {10.0, 20.0, 30.0});
  h2.record(15.0);
  h2.record(25.0);

  const std::string live = obs::prometheus_render(reg);
  std::string err;
  const std::string derived =
      mkbas::core::prometheus_from_metrics_json(reg.to_json(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(live, derived);
  std::string why;
  EXPECT_TRUE(valid_exposition(derived, &why)) << why;
}

TEST(Prometheus, MalformedMetricsJsonIsRejected) {
  std::string err;
  EXPECT_EQ(mkbas::core::prometheus_from_metrics_json("not json", &err), "");
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_EQ(mkbas::core::prometheus_from_metrics_json("[1,2]", &err), "");
  EXPECT_FALSE(err.empty());
}
