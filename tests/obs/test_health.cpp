#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <string>

#include "json_lite.hpp"
#include "obs/series.hpp"
#include "obs/span.hpp"

namespace obs = mkbas::obs;
namespace sim = mkbas::sim;

namespace {

/// A monitor with its sinks, wired the way sim::Machine wires them.
struct Rig {
  obs::SeriesStore series;
  obs::SpanStore spans;
  obs::AuditJournal audit;
  obs::HealthMonitor health;
  obs::FlightRecorder flight;

  Rig() {
    health.wire(&series, &audit, &spans);
    flight.wire(&series, &spans, &health);
  }
};

}  // namespace

TEST(Health, WarmupSuppressesValueDetectors) {
  Rig rig;
  obs::HealthSignal s = rig.health.signal("jitter");
  // warmup = 8: the 7th sample may be wild without an alarm.
  for (int i = 0; i < 7; ++i) s.observe(sim::sec(i), 100.0);
  s.observe(sim::sec(7), 1e9);
  EXPECT_TRUE(rig.health.events().empty());
}

TEST(Health, EwmaBandFiresOnAnOutlierAfterWarmup) {
  Rig rig;
  obs::HealthSignal s = rig.health.signal("jitter");
  for (int i = 0; i < 9; ++i) s.observe(sim::sec(i), 100.0);
  s.observe(sim::sec(9), 1e9);
  ASSERT_FALSE(rig.health.events().empty());
  const obs::HealthEvent& e = rig.health.events().front();
  EXPECT_EQ(e.kind, obs::HealthEventKind::kEwma);
  EXPECT_EQ(e.time, sim::sec(9));
  EXPECT_DOUBLE_EQ(e.value, 1e9);
}

TEST(Health, BaselineFreezesWhileAlarming) {
  Rig rig;
  obs::HealthSignal s = rig.health.signal("jitter");
  for (int i = 0; i < 9; ++i) s.observe(sim::sec(i), 100.0);
  s.observe(sim::sec(9), 1e9);
  const std::size_t after_first = rig.health.events().size();
  ASSERT_GE(after_first, 1u);
  // A sustained anomaly must not be absorbed into the baseline: the
  // same outlier keeps firing instead of becoming the new normal, and
  // the baseline it is judged against has not moved toward 1e9.
  s.observe(sim::sec(10), 1e9);
  EXPECT_GT(rig.health.events().size(), after_first);
  EXPECT_DOUBLE_EQ(rig.health.events().back().baseline,
                   rig.health.events().front().baseline);
  EXPECT_LT(rig.health.events().back().baseline, 101.0);
}

TEST(Health, CusumCatchesAStepTheBandIgnores) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.ewma_k = 100.0;  // band disabled for this test
  cfg.min_sd = 1.0;
  cfg.cusum_h = 5.0;
  obs::HealthSignal s = rig.health.signal("drift", cfg);
  // Long enough for the EW mean to settle on 100 and the EW variance to
  // decay to the min_sd floor (both start at zero, alpha = 0.25).
  for (int i = 0; i < 60; ++i) s.observe(sim::sec(i), 100.0);
  ASSERT_TRUE(rig.health.events().empty());
  s.observe(sim::sec(60), 110.0);  // z = 10 >> h
  ASSERT_FALSE(rig.health.events().empty());
  EXPECT_EQ(rig.health.events().front().kind,
            obs::HealthEventKind::kCusumHigh);
}

TEST(Health, CusumLowCatchesADownwardStepOnValueSignals) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.ewma_k = 100.0;
  cfg.min_sd = 1.0;
  cfg.cusum_h = 5.0;
  obs::HealthSignal s = rig.health.signal("drop", cfg);
  for (int i = 0; i < 60; ++i) s.observe(sim::sec(i), 100.0);
  ASSERT_TRUE(rig.health.events().empty());
  s.observe(sim::sec(60), 90.0);
  ASSERT_FALSE(rig.health.events().empty());
  EXPECT_EQ(rig.health.events().front().kind,
            obs::HealthEventKind::kCusumLow);
}

TEST(Health, RateSurgeFiresWithoutWarmupWhenTheWindowCloses) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = rig.health.signal("denials", cfg);
  s.count(sim::msec(100), 10);  // window 0: over the surge threshold
  EXPECT_TRUE(rig.health.events().empty());  // window still open
  s.count(sim::sec(1) + 1, 1);               // closes window 0
  ASSERT_EQ(rig.health.events().size(), 1u);
  const obs::HealthEvent& e = rig.health.events().front();
  EXPECT_EQ(e.kind, obs::HealthEventKind::kSurge);
  EXPECT_DOUBLE_EQ(e.value, 10.0);
  EXPECT_DOUBLE_EQ(e.threshold, 5.0);
  EXPECT_EQ(e.time, sim::sec(1));  // end of the closed window
}

TEST(Health, FlushClosesTrailingRateWindows) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = rig.health.signal("denials", cfg);
  s.count(sim::msec(100), 10);
  EXPECT_TRUE(rig.health.events().empty());
  rig.health.flush(sim::sec(2));
  ASSERT_EQ(rig.health.events().size(), 1u);
  EXPECT_EQ(rig.health.events().front().kind, obs::HealthEventKind::kSurge);
  // Idempotent for a fixed time.
  rig.health.flush(sim::sec(2));
  EXPECT_EQ(rig.health.events().size(), 1u);
}

TEST(Health, IdleGapFeedsABoundedRunOfZeroWindows) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = rig.health.signal("denials", cfg);
  s.count(sim::msec(100), 10);
  s.count(sim::sec(50), 1);  // 49 empty windows in between
  // The burst window plus at most 4 materialised zero windows were fed
  // into the series — not all 49.
  EXPECT_EQ(rig.series.total_samples(), 5u);
  EXPECT_EQ(rig.health.events().size(), 1u);  // the surge, zeros are quiet
}

TEST(Health, EventsJournalIntoTheAuditTrail) {
  Rig rig;
  obs::HealthSignal s = rig.health.signal("jitter");
  for (int i = 0; i < 9; ++i) s.observe(sim::sec(i), 100.0);
  s.observe(sim::sec(9), 1e9);
  const std::string audit = rig.audit.to_json();
  ASSERT_TRUE(jsonlite::valid(audit)) << audit;
  EXPECT_NE(audit.find("health.anomaly"), std::string::npos) << audit;
  EXPECT_NE(audit.find("jitter ewma"), std::string::npos) << audit;
}

TEST(Health, ScoresPenaliseByEventKind) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = rig.health.signal("denials", cfg);
  s.count(sim::msec(1), 10);
  rig.health.flush(sim::sec(1));
  EXPECT_DOUBLE_EQ(rig.health.score(0), 75.0);  // one surge = -25
  EXPECT_DOUBLE_EQ(rig.health.score(7), 100.0);
}

TEST(Health, EventListIsBoundedAndCountsSuppressed) {
  Rig rig;
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = rig.health.signal("denials", cfg);
  for (int w = 0; w < 300; ++w) s.count(sim::sec(w), 10);
  rig.health.flush(sim::sec(300));
  EXPECT_EQ(rig.health.events().size(), obs::HealthMonitor::kMaxEvents);
  EXPECT_EQ(rig.health.suppressed(),
            300u - obs::HealthMonitor::kMaxEvents);
}

TEST(Health, ExportIsValidVersionedAndDeterministic) {
  auto build = [] {
    Rig rig;
    obs::HealthSignal s = rig.health.signal("jitter");
    for (int i = 0; i < 9; ++i) s.observe(sim::sec(i), 100.0);
    s.observe(sim::sec(9), 1e9);
    return rig.health.to_json();
  };
  const std::string one = build();
  EXPECT_EQ(one, build());
  ASSERT_TRUE(jsonlite::valid(one)) << one;
  EXPECT_NE(one.find("\"schema_version\":"), std::string::npos);
  EXPECT_NE(one.find("\"scores\":{\"m0\":"), std::string::npos) << one;
}

TEST(Health, DisabledMonitorObservesNothing) {
  Rig rig;
  obs::HealthSignal s = rig.health.signal("jitter");
  rig.health.set_enabled(false);
  for (int i = 0; i < 20; ++i) s.observe(sim::sec(i), i % 2 ? 1e9 : 0.0);
  EXPECT_TRUE(rig.health.events().empty());
  EXPECT_EQ(rig.series.total_samples(), 0u);
}

TEST(Health, MergeAggregatesEventsAndScores) {
  Rig a;
  Rig b;
  b.health.set_machine(2);
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.rate_window = sim::sec(1);
  cfg.surge = 5.0;
  obs::HealthSignal s = b.health.signal("denials", cfg);
  s.count(sim::msec(1), 10);
  b.health.flush(sim::sec(1));
  a.health.merge_from(b.health);
  EXPECT_EQ(a.health.events().size(), 1u);
  EXPECT_DOUBLE_EQ(a.health.score(2), 75.0);
  const std::string json = a.health.to_json();
  EXPECT_NE(json.find("\"m2\":75"), std::string::npos) << json;
}

TEST(Flight, TriggerSnapshotsWithCooldownAndCap) {
  Rig rig;
  rig.flight.trigger(sim::sec(1), "fault.kill", "pid 3");
  EXPECT_EQ(rig.flight.size(), 1u);
  // Same reason inside the cooldown: counted, not snapshotted.
  rig.flight.trigger(sim::sec(2), "fault.kill", "pid 4");
  EXPECT_EQ(rig.flight.size(), 1u);
  EXPECT_EQ(rig.flight.suppressed(), 1u);
  // A different reason is its own cooldown bucket.
  rig.flight.trigger(sim::sec(2), "acm.deny", "kill 10->11");
  EXPECT_EQ(rig.flight.size(), 2u);
  // Past the cooldown the same reason snapshots again.
  rig.flight.trigger(sim::sec(1) + obs::FlightRecorder::kCooldown,
                     "fault.kill", "pid 5");
  EXPECT_EQ(rig.flight.size(), 3u);
  EXPECT_EQ(rig.flight.triggers(), 4u);

  for (int i = 0; i < 20; ++i) {
    rig.flight.trigger(sim::minutes(10 + i), "r" + std::to_string(i), "");
  }
  EXPECT_EQ(rig.flight.size(), obs::FlightRecorder::kMaxSnapshots);
}

TEST(Flight, SnapshotCarriesRecentStateAndExportsValidJson) {
  Rig rig;
  obs::Series s = rig.series.series("lat", sim::sec(1), 8);
  for (int w = 0; w < 6; ++w) s.record(sim::sec(w), 10.0 + w);
  const std::uint64_t sp = rig.spans.begin(-1, sim::sec(5), "net.link");
  rig.spans.end(-1, sim::sec(6), sp);
  rig.flight.trigger(sim::sec(6), "acm.deny", "kill 10->11");
  const std::string json = rig.flight.to_json();
  ASSERT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"reason\":\"acm.deny\""), std::string::npos);
  EXPECT_NE(json.find("\"lat@m0\""), std::string::npos) << json;
  EXPECT_NE(json.find("net.link"), std::string::npos) << json;
  EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);
  // Rendered at trigger time from virtual-time state: deterministic.
  EXPECT_EQ(json, rig.flight.to_json());
}

TEST(Flight, DisabledRecorderCountsTriggersButKeepsNothing) {
  Rig rig;
  rig.flight.set_enabled(false);
  rig.flight.trigger(sim::sec(1), "fault.kill", "pid 3");
  EXPECT_EQ(rig.flight.size(), 0u);
  EXPECT_EQ(rig.flight.triggers(), 1u);
}
