// SpanStore / AuditJournal / critical-path unit lock-down: causal
// nesting, flow spans, the dropped-vs-abandoned accounting split, ring
// eviction, lineage survival, deterministic merges and the sorted-key
// JSON contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json_lite.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace obs = mkbas::obs;
namespace sim = mkbas::sim;

namespace {

std::uint32_t tag(const std::string& s) {
  return sim::TagRegistry::instance().intern(s);
}

std::string name_str(std::uint32_t t) {
  return sim::TagRegistry::instance().name(t);
}

TEST(SpanStore, ScopedSpansNestOnTheCurrentContext) {
  obs::SpanStore s;
  const std::uint64_t outer = s.begin(1, 10, "outer");
  const std::uint64_t inner = s.begin(1, 20, "inner");
  EXPECT_EQ(s.current(1).parent_span, inner);
  s.end(1, 30, inner);
  EXPECT_EQ(s.current(1).parent_span, outer);
  s.end(1, 40, outer);
  EXPECT_FALSE(s.current(1).valid());

  ASSERT_EQ(s.size(), 2u);
  const obs::Span& first = s.spans()[0];   // inner closed first
  const obs::Span& second = s.spans()[1];
  EXPECT_EQ(first.parent_span, outer);
  EXPECT_EQ(second.parent_span, 0u);       // outer roots the trace
  EXPECT_EQ(first.trace_id, second.trace_id);
  EXPECT_NE(first.trace_id, 0u);
}

TEST(SpanStore, FlowSpansCarryAnExplicitParentWithoutTouchingCurrent) {
  obs::SpanStore s;
  const std::uint64_t root = s.begin(1, 0, "root");
  const std::uint64_t hop = s.begin_flow(-1, 5, tag("hop"), s.current(1));
  EXPECT_EQ(s.current(1).parent_span, root);  // flow did not change it
  EXPECT_EQ(s.current(-1).parent_span, 0u);
  s.end_flow(9, hop);
  s.end(1, 10, root);

  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.spans()[0].parent_span, root);
  EXPECT_EQ(s.spans()[0].pid, -1);
}

TEST(SpanStore, DisabledStoreHandsOutZeroAndRecordsNothing) {
  obs::SpanStore s;
  s.set_enabled(false);
  EXPECT_EQ(s.begin(1, 0, "x"), 0u);
  EXPECT_EQ(s.begin_flow(1, 0, tag("x"), {}), 0u);
  s.end(1, 1, 0);
  s.end_flow(1, 0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.total_begun(), 0u);
  EXPECT_FALSE(s.current(1).valid());
}

TEST(SpanStore, RingEvictionIsDroppedNeverAbandoned) {
  obs::SpanStore s;
  s.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t id = s.begin(1, i, "op");
    s.end(1, i, id);
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.dropped(), 6u);
  EXPECT_EQ(s.total_abandoned(), 0u);
  EXPECT_EQ(s.total_begun(), 10u);
  EXPECT_EQ(s.total_ended(), 10u);
  // Oldest-first eviction: the survivors are the newest four.
  EXPECT_EQ(s.spans()[0].start, 6);
  EXPECT_EQ(s.spans()[3].start, 9);
}

TEST(SpanStore, SetCapacityCompactsOldestFirst) {
  obs::SpanStore s;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t id = s.begin(1, i, "op");
    s.end(1, i, id);
  }
  s.set_capacity(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 7u);
  EXPECT_EQ(s.spans()[0].start, 7);
  EXPECT_EQ(s.spans()[2].start, 9);
}

TEST(SpanStore, ProcessDeathAbandonsOpenSpansDistinctFromDropped) {
  obs::SpanStore s;
  s.begin(3, 0, "a");
  s.begin(3, 1, "b");
  s.begin(4, 2, "c");  // another process, stays open
  s.process_gone(3, 10);
  EXPECT_EQ(s.total_abandoned(), 2u);
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(s.open_count(), 1u);
  EXPECT_FALSE(s.current(3).valid());
  ASSERT_EQ(s.size(), 2u);
  for (const obs::Span& sp : s.spans()) {
    EXPECT_TRUE(sp.abandoned);
    EXPECT_EQ(sp.end, 10);
  }
}

TEST(SpanStore, ConservationInvariantsHoldUnderMixedTraffic) {
  obs::SpanStore s;
  s.set_capacity(5);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t id = s.begin(1, i, "op");
    if (i % 3 != 0) s.end(1, i, id);
  }
  s.process_gone(1, 100);  // abandons every span left open
  EXPECT_EQ(s.total_begun(),
            s.open_count() + s.total_ended() + s.total_abandoned());
  EXPECT_EQ(s.total_ended() + s.total_abandoned(), s.size() + s.dropped());
  EXPECT_GT(s.total_abandoned(), 0u);
  EXPECT_GT(s.dropped(), 0u);
}

TEST(SpanStore, LineageSurvivesRingEviction) {
  obs::SpanStore s;
  s.set_capacity(1);
  const std::uint64_t root = s.begin(1, 0, "root");
  const std::uint64_t mid = s.begin(1, 1, "mid");
  const std::uint64_t leaf = s.begin(1, 2, "leaf");
  s.end(1, 3, leaf);
  s.end(1, 4, mid);
  s.end(1, 5, root);  // ring kept only this one
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.dropped(), 2u);

  const std::vector<std::uint64_t> chain = s.chain(leaf);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], leaf);
  EXPECT_EQ(chain[2], root);
  EXPECT_EQ(s.root_of(leaf), root);
  EXPECT_EQ(name_str(s.name_of(mid)), "mid");
  EXPECT_EQ(s.start_of(mid), 1);
}

TEST(SpanStore, AliasedIdsFromAnotherHistoryReadAsNeverSeen) {
  // Same machine byte and sequence, different virtual time: the id's
  // 16-bit tag differs, so lookups treat the foreign id as unseen (the
  // same protocol limit as a remote parent that was never merged in).
  obs::SpanStore a;
  obs::SpanStore b;
  const std::uint64_t ida = a.begin(1, 1000, "a");
  const std::uint64_t idb = b.begin(1, 999999, "b");
  ASSERT_NE(ida, idb);
  EXPECT_EQ(a.name_of(idb), 0u);
  EXPECT_EQ(a.start_of(idb), -1);
  EXPECT_TRUE(a.chain(idb).empty());
  EXPECT_FALSE(a.context_of(idb).valid());
}

TEST(SpanStore, IdsAndJsonAreAPureFunctionOfTheOpSequence) {
  auto script = [](obs::SpanStore& s) {
    const std::uint64_t r = s.begin(1, 10, "root");
    const std::uint64_t f = s.begin_flow(2, 20, tag("hop"), s.current(1));
    s.end_flow(25, f);
    s.end(1, 30, r);
  };
  obs::SpanStore a;
  obs::SpanStore b;
  script(a);
  script(b);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(jsonlite::valid(a.to_json()));
}

TEST(SpanStore, EmptyStoreJsonSkeletonKeysAreSorted) {
  obs::SpanStore s;
  EXPECT_EQ(s.to_json(),
            "{\"dropped\":0,\"schema_version\":1,\"spans\":[],"
            "\"total_abandoned\":0,\"total_begun\":0,\"total_ended\":0}");
}

TEST(SpanStore, MergeFoldsLineageAndAccountingInOrder) {
  obs::SpanStore a;
  a.set_machine(1);
  obs::SpanStore b;
  b.set_machine(2);
  const std::uint64_t ra = a.begin(1, 0, "a.root");
  a.end(1, 5, ra);
  const std::uint64_t rb = b.begin(1, 0, "b.root");
  const std::uint64_t lb = b.begin(1, 2, "b.leaf");
  b.end(1, 3, lb);
  b.end(1, 4, rb);

  obs::SpanStore m1;
  m1.merge_from(a);
  m1.merge_from(b);
  obs::SpanStore m2;
  m2.merge_from(a);
  m2.merge_from(b);
  EXPECT_EQ(m1.to_json(), m2.to_json());
  EXPECT_EQ(m1.size(), 3u);
  EXPECT_EQ(m1.total_begun(), 3u);
  // Cross-machine lineage came along: the merged store can walk b's
  // chain even though b's spans were minted elsewhere.
  EXPECT_EQ(m1.root_of(lb), rb);
  EXPECT_EQ(name_str(m1.name_of(ra)), "a.root");
}

TEST(AuditJournal, SnapshotsTheCausalChainAtRecordTime) {
  obs::SpanStore s;
  obs::AuditJournal j;
  s.begin(7, 0, "web.compromised");
  s.begin(7, 1, "minix.ipc");
  s.begin(7, 2, "pm.audit");
  j.record(3, 0, 7, "acm.kill_deny", "web may not kill ctl", s,
           s.current(7));
  ASSERT_EQ(j.size(), 1u);
  const obs::AuditEntry& e = j.entries()[0];
  ASSERT_EQ(e.chain_names.size(), 3u);
  EXPECT_EQ(name_str(e.chain_names[0]), "pm.audit");
  EXPECT_EQ(name_str(e.chain_names[1]), "minix.ipc");
  EXPECT_EQ(name_str(e.chain_names[2]), "web.compromised");

  EXPECT_EQ(j.with_kind("acm.kill_deny").size(), 1u);
  EXPECT_TRUE(j.with_kind("no.such.kind").empty());
  EXPECT_TRUE(jsonlite::valid(j.to_json()));
}

TEST(CriticalPath, TelescopingHopsSumToEndToEndExactly) {
  obs::SpanStore s;
  const std::uint64_t root = s.begin(1, 0, "sensor.sample");
  const std::uint64_t hop =
      s.begin_flow(-1, 3, tag("minix.ipc"), s.context_of(root));
  const std::uint64_t leaf =
      s.begin_flow(2, 5, tag("act.apply"), s.context_of(hop));
  s.end_flow(9, leaf);
  s.end_flow(9, hop);
  s.end(1, 10, root);

  const std::string json =
      obs::critical_path_json(s, "sensor.sample", "act.apply");
  EXPECT_TRUE(jsonlite::valid(json));
  // Hop decomposition: root 0->3, hop 3->5, leaf 5->9; e2e 9.
  EXPECT_NE(json.find("\"e2e_mean_us\":9.000000"), std::string::npos);
  EXPECT_NE(json.find("\"mean_us\":3.000000,\"name\":\"sensor.sample\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mean_us\":2.000000,\"name\":\"minix.ipc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mean_us\":4.000000,\"name\":\"act.apply\""),
            std::string::npos);
  EXPECT_NE(
      json.find("\"signature\":\"sensor.sample>minix.ipc>act.apply\""),
      std::string::npos);
  EXPECT_NE(json.find("\"traces\":1"), std::string::npos);
}

TEST(CriticalPath, SkipsAbandonedLeavesAndForeignRoots) {
  obs::SpanStore s;
  // An act.apply abandoned by process death must not enter the stats.
  const std::uint64_t r1 = s.begin(1, 0, "sensor.sample");
  s.begin_flow(2, 2, tag("act.apply"), s.context_of(r1));
  s.process_gone(2, 4);
  s.end(1, 5, r1);
  // An act.apply rooted elsewhere (an attack, not a sensor) is skipped.
  const std::uint64_t r2 = s.begin(3, 0, "web.compromised");
  const std::uint64_t l2 = s.begin_flow(4, 2, tag("act.apply"),
                                        s.context_of(r2));
  s.end_flow(3, l2);
  s.end(3, 4, r2);

  const std::string json =
      obs::critical_path_json(s, "sensor.sample", "act.apply");
  EXPECT_NE(json.find("\"paths\":[]"), std::string::npos);
}

}  // namespace
