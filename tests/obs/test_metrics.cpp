#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "json_lite.hpp"

namespace obs = mkbas::obs;

TEST(Metrics, CounterHandlesByTheSameNameShareOneCell) {
  obs::MetricsRegistry reg;
  obs::Counter a = reg.counter("x.events");
  obs::Counter b = reg.counter("x.events");
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(3.0);
  h.record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, DisablingTheRegistryDropsRecordsButKeepsValues) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("c");
  obs::Histogram h = reg.histogram("h", {10.0});
  c.inc();
  h.record(1.0);
  reg.set_enabled(false);
  c.inc(100);
  h.record(1.0);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge g = reg.gauge("depth");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramBucketBoundariesAreUpperInclusive) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("lat", {10.0, 20.0});
  h.record(5.0);
  h.record(10.0);  // boundary: lands in the first bucket
  h.record(15.0);
  h.record(25.0);  // beyond the last bound: overflow, not a bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.0);
}

TEST(Metrics, LogBoundsAreStrictlyIncreasingAndReachMax) {
  const auto bounds = obs::MetricsRegistry::log_bounds(4, 1e6);
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_GE(bounds.back(), 1e6);
}

TEST(Metrics, LogHistogramCoversManyOrdersOfMagnitude) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.log_histogram("lat", 4, 1e7);
  h.record(1.0);
  h.record(1000.0);
  h.record(1e6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Metrics, ToJsonIsValidJsonWithSortedKeys) {
  obs::MetricsRegistry reg;
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("g").set(1.5);
  obs::Histogram h = reg.histogram("h", {10.0});
  h.record(3.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  const auto a_pos = json.find("a.first");
  const auto b_pos = json.find("b.second");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(a_pos, b_pos);
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.second\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, ToJsonElidesEmptyHistogramBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("h", {1.0, 2.0, 3.0});
  h.record(2.5);  // only the third bucket is populated
  const std::string json = reg.to_json();
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_EQ(json.find("\"le\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"le\":3}"), std::string::npos);
}

TEST(Metrics, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\ny"), "x\\ny");
}

// ---- merge_from (the campaign engine's cell-order reduction) ----

TEST(MetricsMerge, CountersAdd) {
  obs::MetricsRegistry a, b;
  a.counter("x").inc(3);
  b.counter("x").inc(4);
  b.counter("only_b").inc(1);
  a.merge_from(b);
  EXPECT_EQ(a.counter("x").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_EQ(b.counter("x").value(), 4u);  // source untouched
}

TEST(MetricsMerge, GaugesLastMergedWins) {
  obs::MetricsRegistry a, b;
  a.gauge("temp").set(20.0);
  b.gauge("temp").set(21.5);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.gauge("temp").value(), 21.5);
}

TEST(MetricsMerge, HistogramsAddAndWiden) {
  obs::MetricsRegistry a, b;
  auto ha = a.histogram("lat", {1.0, 10.0});
  auto hb = b.histogram("lat", {1.0, 10.0});
  ha.record(0.5);
  ha.record(5.0);
  hb.record(0.25);
  hb.record(100.0);  // overflow
  a.merge_from(b);
  EXPECT_EQ(ha.count(), 4u);
  EXPECT_EQ(ha.bucket_count(0), 2u);
  EXPECT_EQ(ha.bucket_count(1), 1u);
  EXPECT_EQ(ha.overflow(), 1u);
  EXPECT_DOUBLE_EQ(ha.sum(), 105.75);
}

TEST(MetricsMerge, HistogramBoundsMismatchThrows) {
  obs::MetricsRegistry a, b;
  a.histogram("lat", {1.0, 10.0});
  b.histogram("lat", {1.0, 20.0});
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(MetricsMerge, OrderedMergesProduceIdenticalJson) {
  // Two registries built by different "cells", merged in the same order
  // into two fresh targets: the exports must be byte-identical. This is
  // the property the parallel campaign's determinism rests on.
  auto build = [](obs::MetricsRegistry& r, int salt) {
    r.counter("ipc.delivered").inc(static_cast<std::uint64_t>(10 + salt));
    r.gauge("room.temp").set(20.0 + salt);
    auto h = r.histogram("lat", {1.0, 10.0});
    h.record(0.5 * salt);
    h.record(2.0 * salt);
  };
  obs::MetricsRegistry cell1, cell2;
  build(cell1, 1);
  build(cell2, 2);
  obs::MetricsRegistry m1, m2;
  m1.merge_from(cell1);
  m1.merge_from(cell2);
  m2.merge_from(cell1);
  m2.merge_from(cell2);
  EXPECT_EQ(m1.to_json(), m2.to_json());
  EXPECT_NE(m1.to_json().find("\"ipc.delivered\""), std::string::npos);
}
