#include "core/safety.hpp"

#include <gtest/gtest.h>

namespace core = mkbas::core;
namespace sim = mkbas::sim;
namespace bas = mkbas::bas;

using mkbas::devices::PlantSample;

namespace {

/// Build a synthetic history with 1s resolution.
std::vector<PlantSample> make_history(
    sim::Time end, const std::function<double(sim::Time)>& temp,
    const std::function<bool(sim::Time)>& alarm) {
  std::vector<PlantSample> h;
  for (sim::Time t = 0; t <= end; t += sim::sec(1)) {
    h.push_back({t, temp(t), 10.0, false, alarm(t)});
  }
  return h;
}

/// Trace with live control samples up to `until`.
sim::TraceLog make_live_trace(sim::Time until) {
  sim::TraceLog log;
  for (sim::Time t = 0; t <= until; t += sim::sec(1)) {
    log.emit(t, 1, sim::TraceKind::kControl, "ctl.sample", "", 22.0);
  }
  return log;
}

}  // namespace

TEST(Safety, NominalRunIsSafe) {
  const sim::Time end = sim::minutes(30);
  auto history = make_history(
      end, [](sim::Time) { return 22.0; }, [](sim::Time) { return false; });
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_TRUE(r.control_alive);
  EXPECT_FALSE(r.physically_compromised());
}

TEST(Safety, DeadControllerIsFlagged) {
  const sim::Time end = sim::minutes(30);
  auto history = make_history(
      end, [](sim::Time) { return 22.0; }, [](sim::Time) { return false; });
  const auto trace = make_live_trace(sim::minutes(10));  // died at 10min
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_FALSE(r.control_alive);
  EXPECT_TRUE(r.physically_compromised());
}

TEST(Safety, StartupTransientIsExempt) {
  // Rising from 18 to 22 over the first minutes: out of band but settling.
  const sim::Time end = sim::minutes(30);
  auto history = make_history(
      end,
      [](sim::Time t) {
        const double mins = static_cast<double>(t) / 60e6;
        return std::min(22.0, 18.0 + mins * 1.0);
      },
      [](sim::Time) { return false; });
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_FALSE(r.temp_excursion);
  EXPECT_FALSE(r.alarm_violation);
}

TEST(Safety, SustainedExcursionIsFlagged) {
  const sim::Time end = sim::minutes(40);
  // In band until 20min, then stuck at 28C with the alarm correctly on.
  auto history = make_history(
      end,
      [](sim::Time t) { return t < sim::minutes(20) ? 22.0 : 28.0; },
      [](sim::Time t) { return t > sim::minutes(26); });
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_TRUE(r.temp_excursion);
  EXPECT_FALSE(r.alarm_violation);  // alarm behaved
}

TEST(Safety, SilencedAlarmIsViolation) {
  const sim::Time end = sim::minutes(40);
  auto history = make_history(
      end,
      [](sim::Time t) { return t < sim::minutes(20) ? 22.0 : 28.0; },
      [](sim::Time) { return false; });  // alarm never fires
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_TRUE(r.alarm_violation);
  EXPECT_TRUE(r.physically_compromised());
}

TEST(Safety, BorderlineTemperatureDoesNotTripAlarmCheck) {
  // Hovering just past the tolerance edge (within the measurement
  // margin): no alarm violation even though the alarm stays off.
  const sim::Time end = sim::minutes(40);
  auto history = make_history(
      end, [](sim::Time) { return 22.0 - 1.6; },  // tol 1.5, margin 0.3
      [](sim::Time) { return false; });
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_FALSE(r.alarm_violation);
}

TEST(Safety, SpuriousAlarmIsFlagged) {
  const sim::Time end = sim::minutes(30);
  auto history = make_history(
      end, [](sim::Time) { return 22.0; },
      [](sim::Time t) { return t > sim::minutes(10); });  // alarm in band
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_TRUE(r.spurious_alarm);
}

TEST(Safety, SetpointChangeGetsSettleAllowance) {
  const sim::Time end = sim::minutes(40);
  // Setpoint steps to 28 at t=20min; plant slews at 1C/min.
  auto history = make_history(
      end,
      [](sim::Time t) {
        if (t < sim::minutes(20)) return 22.0;
        const double mins = static_cast<double>(t - sim::minutes(20)) / 60e6;
        return std::min(28.0, 22.0 + mins);
      },
      [](sim::Time) { return false; });
  auto trace = make_live_trace(end);
  trace.emit(sim::minutes(20), 1, sim::TraceKind::kControl, "ctl.setpoint",
             "", 28.0);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_FALSE(r.temp_excursion);
  EXPECT_FALSE(r.alarm_violation);
}

TEST(Safety, OutOfBandTotalAccumulates) {
  const sim::Time end = sim::minutes(20);
  auto history = make_history(
      end,
      [](sim::Time t) {
        return (t >= sim::minutes(5) && t < sim::minutes(10)) ? 28.0 : 22.0;
      },
      [](sim::Time) { return false; });
  const auto trace = make_live_trace(end);
  const auto r = core::check_safety(history, trace, {}, end);
  EXPECT_NEAR(static_cast<double>(r.out_of_band_total),
              static_cast<double>(sim::minutes(5)),
              static_cast<double>(sim::sec(5)));
}

TEST(Safety, SummaryMentionsFindings) {
  core::SafetyReport r;
  r.control_alive = false;
  r.temp_excursion = true;
  const std::string s = r.summary();
  EXPECT_NE(s.find("COMPROMISED"), std::string::npos);
  EXPECT_NE(s.find("CTL-DEAD"), std::string::npos);
  EXPECT_NE(s.find("TEMP-EXCURSION"), std::string::npos);
}
