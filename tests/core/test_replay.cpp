// Determinism / replay lock-down: the whole point of a seed-driven fault
// campaign is that a run can be replayed bit-for-bit. Two runs with the
// same seed — with or without a fault plan armed — must produce
// byte-identical metrics JSON and Chrome-trace JSON exports; a different
// seed must not.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/trace_export.hpp"

namespace core = mkbas::core;
namespace fault = mkbas::fault;
namespace sim = mkbas::sim;

namespace {

struct Exports {
  std::string metrics;
  std::string trace;
};

core::RunOptions short_opts(std::uint64_t seed, Exports* out) {
  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(75);
  opts.seed = seed;
  opts.observe = [out](sim::Machine& m) {
    out->metrics = core::metrics_to_json(m);
    std::ostringstream os;
    mkbas::obs::write_chrome_trace(os, m.trace());
    out->trace = os.str();
  };
  return opts;
}

Exports run_with_plan(core::Platform p, std::uint64_t seed) {
  Exports out;
  fault::FaultPlan plan = fault::reference_sensor_crash_plan();
  // Exercise the randomised fault paths too (corruption draws from the
  // plan RNG, drops from the window filter).
  plan.corrupt_messages(sim::sec(10), sim::sec(5), "tempSensProc",
                        "tempProc");
  plan.drop_messages(sim::sec(16), sim::sec(2), "", "heaterActProc");
  core::run_fault(p, plan, short_opts(seed, &out));
  return out;
}

Exports run_benign_export(core::Platform p, std::uint64_t seed) {
  Exports out;
  core::RunOptions opts = short_opts(seed, &out);
  core::run_benign(p, opts);
  return out;
}

class ReplayAllPlatforms : public ::testing::TestWithParam<core::Platform> {};

TEST_P(ReplayAllPlatforms, FaultCampaignRepeatsByteForByte) {
  const core::Platform p = GetParam();
  const Exports a = run_with_plan(p, 42);
  const Exports b = run_with_plan(p, 42);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  ASSERT_FALSE(a.metrics.empty());
  ASSERT_FALSE(a.trace.empty());

  const Exports c = run_with_plan(p, 43);
  EXPECT_NE(a.trace, c.trace);  // a different world, visibly
}

TEST_P(ReplayAllPlatforms, BenignRunRepeatsByteForByte) {
  const core::Platform p = GetParam();
  const Exports a = run_benign_export(p, 7);
  const Exports b = run_benign_export(p, 7);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);

  const Exports c = run_benign_export(p, 8);
  EXPECT_NE(a.trace, c.trace);
}

INSTANTIATE_TEST_SUITE_P(Platforms, ReplayAllPlatforms,
                         ::testing::Values(core::Platform::kMinix,
                                           core::Platform::kSel4,
                                           core::Platform::kLinux),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::Platform::kMinix:
                               return "minix";
                             case core::Platform::kSel4:
                               return "sel4";
                             default:
                               return "linux";
                           }
                         });

TEST(Replay, FaultPlanPerturbsOnlyThroughTheFaults) {
  // Same seed, with vs without a plan: the runs differ (the faults are
  // real) and the with-plan trace records them.
  const Exports with = run_with_plan(core::Platform::kMinix, 42);
  const Exports without = run_benign_export(core::Platform::kMinix, 42);
  EXPECT_NE(with.trace, without.trace);
  EXPECT_NE(with.trace.find("fault.crash"), std::string::npos);
  EXPECT_EQ(without.trace.find("fault.crash"), std::string::npos);
}

}  // namespace
