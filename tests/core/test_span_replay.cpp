// Span/audit determinism and end-to-end agreement against the real
// scenarios: the causal exports must replay byte-for-byte under fault
// injection on all three platforms, the MINIX audit journal must
// reconstruct the causal chain of a blocked kill, and the critical-path
// decomposition must agree with the independently recorded end-to-end
// latency histogram.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace attack = mkbas::attack;
namespace core = mkbas::core;
namespace fault = mkbas::fault;
namespace obs = mkbas::obs;
namespace sim = mkbas::sim;

namespace {

const char* plat_name(core::Platform p) {
  switch (p) {
    case core::Platform::kMinix:
      return "minix";
    case core::Platform::kSel4:
      return "sel4";
    default:
      return "linux";
  }
}

struct Exports {
  std::string spans;
  std::string audit;
  std::string critical;
};

core::RunOptions short_opts(std::uint64_t seed, Exports* out) {
  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(75);
  opts.seed = seed;
  opts.observe = [out](sim::Machine& m) {
    out->spans = m.spans().to_json();
    out->audit = m.audit().to_json();
    out->critical =
        obs::critical_path_json(m.spans(), "sensor.sample", "act.apply");
  };
  return opts;
}

Exports run_faulted(core::Platform p, std::uint64_t seed) {
  Exports out;
  fault::FaultPlan plan = fault::reference_sensor_crash_plan();
  plan.corrupt_messages(sim::sec(10), sim::sec(5), "tempSensProc",
                        "tempProc");
  plan.drop_messages(sim::sec(16), sim::sec(2), "", "heaterActProc");
  core::run_fault(p, plan, short_opts(seed, &out));
  return out;
}

class SpanReplayAllPlatforms
    : public ::testing::TestWithParam<core::Platform> {};

TEST_P(SpanReplayAllPlatforms, FaultedSpanExportsReplayByteForByte) {
  const core::Platform p = GetParam();
  const Exports a = run_faulted(p, 42);
  const Exports b = run_faulted(p, 42);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.audit, b.audit);
  EXPECT_EQ(a.critical, b.critical);
  ASSERT_FALSE(a.spans.empty());
  EXPECT_NE(a.spans.find("sensor.sample"), std::string::npos);

  // A visibly different world: the faults leave marks in the span
  // store (crashes abandon spans; restarts annotate). Seeds alone only
  // perturb payloads, not the IPC timeline, so the contrast run is the
  // benign world, not another seed.
  Exports benign;
  core::run_benign(p, short_opts(42, &benign));
  EXPECT_NE(a.spans, benign.spans);
}

INSTANTIATE_TEST_SUITE_P(Platforms, SpanReplayAllPlatforms,
                         ::testing::Values(core::Platform::kMinix,
                                           core::Platform::kSel4,
                                           core::Platform::kLinux),
                         [](const auto& info) {
                           return plat_name(info.param);
                         });

TEST(SpanFault, MinixRestartIsAnnotatedInTheSpanStore) {
  // The reincarnation-server respawn closes its rs.restart span with
  // the "restart" note — the fault leaves a causal mark, not a gap.
  const Exports e = run_faulted(core::Platform::kMinix, 42);
  EXPECT_NE(e.spans.find("\"name\":\"rs.restart\""), std::string::npos);
  EXPECT_NE(e.spans.find("\"note\":\"restart\""), std::string::npos);
}

TEST(SpanAudit, MinixBlockedKillChainsBackToTheCompromisedWeb) {
  // The acceptance chain of the paper's kill attack: the journal entry
  // for the ACM denial must walk pm.audit -> minix.ipc -> ... ->
  // web.compromised, i.e. from the denial site back to the attacker's
  // entry point, without the test replaying anything.
  std::vector<std::vector<std::string>> chains;
  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(75);
  opts.seed = 42;
  opts.observe = [&chains](sim::Machine& m) {
    auto& tags = sim::TagRegistry::instance();
    for (const obs::AuditEntry& e : m.audit().with_kind("acm.kill_deny")) {
      std::vector<std::string> names;
      for (std::uint32_t t : e.chain_names) names.push_back(tags.name(t));
      chains.push_back(std::move(names));
    }
  };
  const core::AttackRow row =
      core::run_attack(core::Platform::kMinix, attack::AttackKind::kKillControl,
                       attack::Privilege::kCodeExec, opts);
  EXPECT_FALSE(row.outcome.primitive_succeeded);

  ASSERT_FALSE(chains.empty());
  for (const std::vector<std::string>& chain : chains) {
    ASSERT_GE(chain.size(), 3u);
    EXPECT_EQ(chain.front(), "pm.audit");
    EXPECT_EQ(chain.back(), "web.compromised");
    bool saw_ipc = false;
    for (const std::string& n : chain) saw_ipc |= (n == "minix.ipc");
    EXPECT_TRUE(saw_ipc) << "chain misses the IPC hop";
  }
}

// Every double following `"key":` in `json`, in document order.
std::vector<double> numbers_after(const std::string& json,
                                  const std::string& key) {
  std::vector<double> out;
  const std::string k = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(k, pos)) != std::string::npos) {
    pos += k.size();
    out.push_back(std::atof(json.c_str() + pos));
  }
  return out;
}

class CriticalPathAllPlatforms
    : public ::testing::TestWithParam<core::Platform> {};

TEST_P(CriticalPathAllPlatforms, HopsSumToTheHistogramEndToEndMean) {
  const core::Platform p = GetParam();
  std::string critical;
  double hist_sum = 0;
  std::uint64_t hist_count = 0;
  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(75);
  opts.seed = 7;
  const std::string hist_name = std::string(plat_name(p)) + ".ctl.e2e_us";
  opts.observe = [&](sim::Machine& m) {
    critical =
        obs::critical_path_json(m.spans(), "sensor.sample", "act.apply");
    auto h = m.metrics().log_histogram(hist_name, 4, 1e6);
    hist_sum = h.sum();
    hist_count = h.count();
  };
  core::run_benign(p, opts);

  ASSERT_GT(hist_count, 0u) << hist_name << " never recorded";
  // Split the export into one segment per path signature; within each,
  // the per-hop means (telescoping decomposition) must sum to that
  // path's end-to-end mean.
  const std::vector<double> e2e = numbers_after(critical, "e2e_mean_us");
  const std::vector<double> traces = numbers_after(critical, "traces");
  ASSERT_FALSE(e2e.empty());
  ASSERT_EQ(e2e.size(), traces.size());
  double weighted = 0;
  double total_traces = 0;
  // Per-path check via segment slicing on the (sorted-key) layout:
  // {"e2e_mean_us":..,"hops":[..],"signature":..,"traces":..}.
  std::size_t pos = 0;
  std::size_t idx = 0;
  while ((pos = critical.find("\"e2e_mean_us\":", pos)) !=
         std::string::npos) {
    const std::size_t end = critical.find("\"e2e_mean_us\":", pos + 1);
    const std::string segment = critical.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    double hop_sum = 0;
    for (double v : numbers_after(segment, "mean_us")) hop_sum += v;
    EXPECT_NEAR(hop_sum, e2e[idx], 1e-3)
        << "telescoping broke in segment " << idx;
    weighted += e2e[idx] * traces[idx];
    total_traces += traces[idx];
    pos += 1;
    ++idx;
  }
  ASSERT_GT(total_traces, 0);
  // The histogram is recorded at the actuator from the same chain the
  // analyzer walks, so the two independent aggregations must agree —
  // the acceptance bound is 1%.
  const double hist_mean = hist_sum / static_cast<double>(hist_count);
  const double path_mean = weighted / total_traces;
  EXPECT_NEAR(path_mean, hist_mean, hist_mean * 0.01 + 1e-6);
  EXPECT_EQ(static_cast<std::uint64_t>(total_traces), hist_count);
}

INSTANTIATE_TEST_SUITE_P(Platforms, CriticalPathAllPlatforms,
                         ::testing::Values(core::Platform::kMinix,
                                           core::Platform::kSel4,
                                           core::Platform::kLinux),
                         [](const auto& info) {
                           return plat_name(info.param);
                         });

}  // namespace
