// Seed-sweep property test: the Table-1 attack matrix's *qualitative*
// outcomes (did the attack primitive succeed?) are a property of the
// platform's security architecture, not of the simulation seed. Sweep
// 16 seeds and require every (platform, attack, privilege) cell to match
// the seed-1 baseline.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

namespace {

using Key = std::tuple<std::string, int, int>;  // label, kind, privilege
using Outcomes = std::map<Key, bool>;

core::RunOptions sweep_opts(std::uint64_t seed) {
  core::RunOptions opts;
  // Short windows keep a 16-seed sweep inside tier-1 budget; primitive
  // verdicts are recorded incrementally by the attack hooks, so they are
  // decided well within the first post-attack half minute.
  opts.settle = sim::sec(10);
  opts.post = sim::sec(30);
  opts.seed = seed;
  return opts;
}

Outcomes matrix_outcomes(std::uint64_t seed) {
  Outcomes out;
  for (const auto& row : core::run_attack_matrix(sweep_opts(seed))) {
    const Key key{row.platform_label, static_cast<int>(row.kind),
                  static_cast<int>(row.privilege)};
    out[key] = row.outcome.primitive_succeeded;
  }
  return out;
}

const Outcomes& baseline() {
  static const Outcomes base = matrix_outcomes(1);
  return base;
}

// One test, 16 seeds: keeping the sweep in a single process means the
// seed-1 baseline is computed once, not once per seed (this box builds
// and tests on a single core).
TEST(SeedSweep, AttackMatrixOutcomesAreSeedInvariant) {
  for (std::uint64_t seed = 2; seed <= 17; ++seed) {
    const Outcomes got = matrix_outcomes(seed);
    ASSERT_EQ(got.size(), baseline().size());
    for (const auto& [key, primitive] : baseline()) {
      const auto it = got.find(key);
      ASSERT_NE(it, got.end()) << std::get<0>(key);
      EXPECT_EQ(it->second, primitive)
          << "platform=" << std::get<0>(key) << " kind=" << std::get<1>(key)
          << " priv=" << std::get<2>(key) << " flipped at seed " << seed;
    }
  }
}

TEST(SeedSweepBaseline, MicrokernelsBlockCodeExecPrimitives) {
  // Sanity-pin a few architectural facts of the baseline itself so the
  // invariance above cannot be trivially satisfied by a wrong matrix.
  int minix_codeexec_success = 0, sel4_success = 0, linux_success = 0;
  for (const auto& [key, primitive] : baseline()) {
    const auto& label = std::get<0>(key);
    const auto priv = std::get<2>(key);
    if (!primitive) continue;
    if (label.rfind("MINIX", 0) == 0 && priv == 0) ++minix_codeexec_success;
    if (label.rfind("seL4", 0) == 0) ++sel4_success;
    if (label.rfind("Linux", 0) == 0) ++linux_success;
  }
  EXPECT_EQ(sel4_success, 0);          // no caps, no primitives
  EXPECT_GT(linux_success, 0);         // shared-account Linux is porous
  EXPECT_LT(minix_codeexec_success, 3);  // ACM blocks the classic ones
}

}  // namespace
