#include "core/report.hpp"

#include <gtest/gtest.h>

namespace core = mkbas::core;

namespace {

core::AttackRow sample_row() {
  core::AttackRow row;
  row.platform = core::Platform::kLinux;
  row.platform_label = "Linux";
  row.kind = mkbas::attack::AttackKind::kSpoofSensor;
  row.privilege = mkbas::attack::Privilege::kCodeExec;
  row.outcome.primitive_succeeded = true;
  row.outcome.attempts = 10;
  row.outcome.successes = 10;
  row.outcome.detail = "queued, \"all\" of them";
  row.safety.control_alive = true;
  row.safety.temp_excursion = true;
  row.safety.min_temp_c = 18.0;
  row.safety.max_temp_c = 27.7;
  return row;
}

}  // namespace

TEST(Report, CsvHasHeaderAndRow) {
  const std::string csv = core::attack_rows_to_csv({sample_row()});
  EXPECT_EQ(csv.find("attack,privilege,platform"), 0u);
  EXPECT_NE(csv.find("spoof-sensor-data,code-exec,Linux,1,10,10,1,1,1,0,0"),
            std::string::npos);
}

TEST(Report, CsvEscapesQuotesAndCommas) {
  const std::string csv = core::attack_rows_to_csv({sample_row()});
  // detail contains a comma and quotes: must be quoted with "" doubling.
  EXPECT_NE(csv.find("\"queued, \"\"all\"\" of them\""), std::string::npos);
}

TEST(Report, MarkdownTableRenders) {
  const std::string md = core::attack_rows_to_markdown({sample_row()});
  EXPECT_NE(md.find("| attack | privilege |"), std::string::npos);
  EXPECT_NE(md.find("| spoof-sensor-data | code-exec | Linux | "
                    "**SUCCEEDED** |"),
            std::string::npos);
  EXPECT_NE(md.find("TEMP-EXCURSION"), std::string::npos);
}

TEST(Report, BenignHistoryCsv) {
  core::BenignRun run;
  run.history.push_back({mkbas::sim::sec(10), 21.5, 10.0, true, false});
  run.history.push_back({mkbas::sim::sec(11), 21.6, 10.0, false, true});
  const std::string csv = core::benign_history_to_csv(run);
  EXPECT_EQ(csv.find("time_s,true_temp_c"), 0u);
  EXPECT_NE(csv.find("10,21.5,10,1,0"), std::string::npos);
  EXPECT_NE(csv.find("11,21.6,10,0,1"), std::string::npos);
}

TEST(Report, EmptyInputsProduceHeadersOnly) {
  EXPECT_NE(core::attack_rows_to_csv({}).find("attack,"), std::string::npos);
  const std::string md = core::attack_rows_to_markdown({});
  EXPECT_NE(md.find("|---|"), std::string::npos);
}
