// The canonical ExperimentRequest API: golden canonical-JSON renderings
// per mode, the serialize -> parse -> serialize round-trip contract,
// hash sensitivity of every canonical field, strict deserialization
// errors, and the CLI adapter's equivalence with direct construction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/jsonv.hpp"
#include "core/request.hpp"

namespace core = mkbas::core;

namespace {

core::ExperimentRequest parse_or_die(const std::string& json) {
  core::ExperimentRequest r;
  std::string err;
  EXPECT_TRUE(core::parse_request_json(json, &r, &err)) << err;
  return r;
}

std::string parse_error(const std::string& json) {
  core::ExperimentRequest r;
  std::string err;
  EXPECT_FALSE(core::parse_request_json(json, &r, &err)) << json;
  return err;
}

core::ExperimentRequest from_cli(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "experiment_runner");
  const core::CliArgs a = core::parse_cli(static_cast<int>(argv.size()),
                                          const_cast<char**>(argv.data()));
  EXPECT_TRUE(a.error.empty()) << a.error;
  core::ExperimentRequest r;
  std::string err;
  EXPECT_TRUE(core::request_from_cli(a, &r, &err)) << err;
  return r;
}

}  // namespace

// ---------------------------------------------------------------------
// Golden canonical renderings. These bytes ARE the cache identity:
// if one of these strings changes, every stored cell key changes with
// it, so a failure here means a deliberate (versioned) migration, not a
// formatting nit.

TEST(RequestGolden, DefaultBenign) {
  const core::ExperimentRequest r;
  EXPECT_EQ(r.to_canonical_json(),
            "{\"acl\":false,\"attack\":\"none\",\"buildings\":1,\"floors\":1,"
            "\"format\":\"table\",\"lite\":false,\"mode\":\"benign\","
            "\"platform\":\"minix\",\"probe\":true,\"quota\":false,"
            "\"root\":false,\"scenario\":\"temp\",\"seed\":1,\"seeds\":8,"
            "\"sync\":\"lookahead\",\"topology\":\"flat\",\"zones\":4}");
}

TEST(RequestGolden, EveryModeRendersItsName) {
  const char* const expected[core::kRequestModes] = {
      "benign",          "attack",         "matrix",
      "fault",           "fabric",         "campaign.matrix",
      "campaign.sweep",  "campaign.fault", "campaign.fabric"};
  for (int i = 0; i < core::kRequestModes; ++i) {
    core::ExperimentRequest r;
    r.mode = static_cast<core::RequestMode>(i);
    const std::string want = std::string("\"mode\":\"") + expected[i] + "\"";
    EXPECT_NE(r.to_canonical_json().find(want), std::string::npos)
        << r.to_canonical_json();
  }
}

TEST(RequestGolden, AttackModeRendering) {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kAttack;
  r.platform = mkbas::bas::Platform::kLinux;
  r.attack = "kill";
  r.root = true;
  r.acl = true;
  EXPECT_EQ(r.to_canonical_json(),
            "{\"acl\":true,\"attack\":\"kill\",\"buildings\":1,\"floors\":1,"
            "\"format\":\"table\",\"lite\":false,\"mode\":\"attack\","
            "\"platform\":\"linux\",\"probe\":true,\"quota\":false,"
            "\"root\":true,\"scenario\":\"temp\",\"seed\":1,\"seeds\":8,"
            "\"sync\":\"lookahead\",\"topology\":\"flat\",\"zones\":4}");
}

TEST(RequestGolden, FabricCampusRendering) {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kFabric;
  r.zones = 16;
  r.seed = 7;
  r.attack = "spoof-write";
  r.topology = mkbas::net::TopologySpec::Kind::kCampus;
  r.floors = 4;
  r.buildings = 3;
  r.sync = mkbas::net::SyncMode::kEpoch;
  r.lite = true;
  EXPECT_EQ(
      r.to_canonical_json(),
      "{\"acl\":false,\"attack\":\"spoof-write\",\"buildings\":3,"
      "\"floors\":4,\"format\":\"table\",\"lite\":true,\"mode\":\"fabric\","
      "\"platform\":\"minix\",\"probe\":true,\"quota\":false,\"root\":false,"
      "\"scenario\":\"temp\",\"seed\":7,\"seeds\":8,\"sync\":\"epoch\","
      "\"topology\":\"campus\",\"zones\":16}");
}

// ---------------------------------------------------------------------
// Round-trip property: canonical JSON parses back to a request that
// re-serializes to the same bytes (and the same cell key) — for every
// mode, and for a large seed that must survive u64 round-tripping.

TEST(RequestRoundTrip, CanonicalJsonIsAFixedPoint) {
  for (int i = 0; i < core::kRequestModes; ++i) {
    core::ExperimentRequest r;
    r.mode = static_cast<core::RequestMode>(i);
    if (r.mode == core::RequestMode::kAttack) r.attack = "spoof-sensor";
    if (r.mode == core::RequestMode::kFabric ||
        r.mode == core::RequestMode::kCampaignFabric) {
      r.attack = "replay";
    }
    r.seed = 18446744073709551615ull;  // UINT64_MAX: doubles cannot hold it
    const std::string first = r.to_canonical_json();
    const core::ExperimentRequest back = parse_or_die(first);
    EXPECT_EQ(back.to_canonical_json(), first);
    EXPECT_EQ(back.cell_key(), r.cell_key());
  }
}

TEST(RequestRoundTrip, JobsAndArtifactsAreNotCanonical) {
  core::ExperimentRequest a;
  core::ExperimentRequest b;
  b.jobs = 32;
  b.artifacts[core::ArtifactKind::kMetrics] = "/tmp/m.json";
  EXPECT_EQ(a.to_canonical_json(), b.to_canonical_json());
  EXPECT_EQ(a.cell_key(), b.cell_key());
  // ...but jobs still parses as an execution hint.
  const auto r = parse_or_die("{\"jobs\":3,\"mode\":\"campaign.fault\"}");
  EXPECT_EQ(r.jobs, 3);
}

// Any single canonical-field change must move the cell key.
TEST(RequestRoundTrip, EveryCanonicalFieldFeedsTheKey) {
  const core::ExperimentRequest base;  // benign/minix defaults
  std::vector<core::ExperimentRequest> variants(14, base);
  variants[0].acl = true;
  variants[1].attack = "spoof-sensor";  // not validated here, only keyed
  variants[2].buildings = 2;
  variants[3].floors = 2;
  variants[4].format = "csv";
  variants[5].lite = true;
  variants[6].mode = core::RequestMode::kMatrix;
  variants[7].platform = mkbas::bas::Platform::kSel4;
  variants[8].probe = false;
  variants[9].quota = true;
  variants[10].root = true;
  variants[11].scenario = "uds";
  variants[12].seed = 2;
  variants[13].seeds = 9;
  std::vector<core::ExperimentRequest> more(3, base);
  more[0].sync = mkbas::net::SyncMode::kEpoch;
  more[1].topology = mkbas::net::TopologySpec::Kind::kTree;
  more[2].zones = 5;
  variants.insert(variants.end(), more.begin(), more.end());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i].cell_key(), base.cell_key()) << "variant " << i;
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i].cell_key(), variants[j].cell_key())
          << i << " vs " << j;
    }
  }
}

// ---------------------------------------------------------------------
// Strict deserialization.

TEST(RequestParse, UnknownFieldIsAnErrorWithHint) {
  const std::string err = parse_error("{\"zoned\":16}");
  EXPECT_NE(err.find("unknown field 'zoned'"), std::string::npos) << err;
  EXPECT_NE(err.find("did you mean 'zones'"), std::string::npos) << err;
}

TEST(RequestParse, TypeMismatchNamesTheField) {
  EXPECT_NE(parse_error("{\"zones\":\"four\"}").find("'zones'"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"lite\":1}").find("'lite'"), std::string::npos);
  EXPECT_NE(parse_error("{\"mode\":3}").find("'mode'"), std::string::npos);
  EXPECT_NE(parse_error("{\"seed\":-4}").find("'seed'"), std::string::npos);
  EXPECT_NE(parse_error("{\"seed\":1.5}").find("'seed'"), std::string::npos);
}

TEST(RequestParse, EnumValuesGetHints) {
  EXPECT_NE(parse_error("{\"mode\":\"fabrik\"}").find("did you mean 'fabric'"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"platform\":\"miniks\"}")
                .find("did you mean 'minix'"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"sync\":\"lookahed\"}")
                .find("did you mean 'lookahead'"),
            std::string::npos);
}

TEST(RequestParse, MalformedJsonAndDuplicateKeysRejected) {
  EXPECT_FALSE(parse_error("{\"zones\":4,}").empty());       // trailing comma
  EXPECT_FALSE(parse_error("[1,2]").empty());                // not an object
  EXPECT_FALSE(parse_error("").empty());
  EXPECT_NE(parse_error("{\"zones\":1,\"zones\":2}").find("duplicate"),
            std::string::npos);
}

TEST(RequestParse, ValidationRunsAfterParsing) {
  EXPECT_NE(parse_error("{\"mode\":\"attack\"}").find("'attack'"),
            std::string::npos);  // attack mode needs an attack kind
  EXPECT_NE(parse_error("{\"attack\":\"kill\",\"mode\":\"fabric\"}")
                .find("'attack'"),
            std::string::npos);  // kill is not a fabric attack
  EXPECT_NE(parse_error("{\"zones\":0}").find("'zones'"), std::string::npos);
  EXPECT_NE(parse_error("{\"format\":\"yaml\"}").find("'format'"),
            std::string::npos);
}

TEST(RequestParse, DefaultsApplyForAbsentFields) {
  const auto r = parse_or_die("{\"mode\":\"fabric\",\"zones\":9}");
  EXPECT_EQ(r.mode, core::RequestMode::kFabric);
  EXPECT_EQ(r.zones, 9);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_EQ(r.scenario, "temp");
  EXPECT_EQ(r.attack, "none");
  EXPECT_TRUE(r.probe);
  EXPECT_EQ(r.format, "table");
  EXPECT_EQ(r.jobs, 1);
}

// ---------------------------------------------------------------------
// CLI adapter: flags and HTTP bodies are the same cell.

TEST(RequestFromCli, FlagAndJsonSpellingsShareACell) {
  const auto cli = from_cli({"fabric", "--zones", "3", "--seed", "7",
                             "--attack", "spoof-write"});
  const auto json = parse_or_die(
      "{\"attack\":\"spoof-write\",\"mode\":\"fabric\",\"seed\":7,"
      "\"zones\":3}");
  EXPECT_EQ(cli.to_canonical_json(), json.to_canonical_json());
  EXPECT_EQ(cli.cell_key(), json.cell_key());
}

TEST(RequestFromCli, LegacyPositionalSpellingsAreRejected) {
  // The legacy "attack linux kill root" grammar is gone: the words no
  // longer fill platform/attack/root, so the adapter reports the first
  // missing flag instead of silently guessing.
  std::vector<const char*> argv = {"experiment_runner", "attack", "linux",
                                   "kill", "root"};
  const core::CliArgs a = core::parse_cli(static_cast<int>(argv.size()),
                                          const_cast<char**>(argv.data()));
  EXPECT_TRUE(a.error.empty()) << a.error;
  core::ExperimentRequest r;
  std::string err;
  EXPECT_FALSE(core::request_from_cli(a, &r, &err));
  EXPECT_NE(err.find("--platform"), std::string::npos) << err;
}

TEST(RequestFromCli, CampaignSubmodesMap) {
  EXPECT_EQ(from_cli({"campaign", "matrix"}).mode,
            core::RequestMode::kCampaignMatrix);
  EXPECT_EQ(from_cli({"campaign", "sweep", "--platform", "sel4"}).mode,
            core::RequestMode::kCampaignSweep);
  EXPECT_EQ(from_cli({"campaign", "fault"}).mode,
            core::RequestMode::kCampaignFault);
  EXPECT_EQ(from_cli({"campaign", "fabric"}).mode,
            core::RequestMode::kCampaignFabric);
  // The reference fault campaign pins seed 42 unless --seed overrides.
  EXPECT_EQ(from_cli({"campaign", "fault"}).seed, 42u);
  EXPECT_EQ(from_cli({"campaign", "fault", "--seed", "3"}).seed, 3u);
}

TEST(RequestFromCli, MissingPlatformOrAttackFails) {
  core::ExperimentRequest r;
  std::string err;
  {
    const char* argv[] = {"x", "benign"};
    const auto a = core::parse_cli(2, const_cast<char**>(argv));
    EXPECT_FALSE(core::request_from_cli(a, &r, &err));
    EXPECT_NE(err.find("--platform"), std::string::npos);
  }
  {
    const char* argv[] = {"x", "attack", "--platform", "minix"};
    const auto a = core::parse_cli(4, const_cast<char**>(argv));
    EXPECT_FALSE(core::request_from_cli(a, &r, &err));
    EXPECT_NE(err.find("--attack"), std::string::npos);
  }
  {
    // --attack on a mode that does not take one is rejected, not ignored.
    const char* argv[] = {"x", "benign", "--platform", "minix", "--attack",
                          "kill"};
    const auto a = core::parse_cli(6, const_cast<char**>(argv));
    EXPECT_FALSE(core::request_from_cli(a, &r, &err));
    EXPECT_NE(err.find("does not take --attack"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// The strict JSON value parser backing parse_request_json.

TEST(Jsonv, ParsesScalarsAndStructure) {
  mkbas::core::Json v;
  std::string err;
  ASSERT_TRUE(mkbas::core::json_parse(
      "{\"a\":[1,2.5,-3],\"b\":\"x\\u0041\",\"c\":true,\"d\":null}", &v,
      &err))
      << err;
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 4u);
  const mkbas::core::Json* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[0].is_u64());
  EXPECT_EQ(a->items[0].as_u64(), 1u);
  EXPECT_FALSE(a->items[1].is_u64());
  EXPECT_FALSE(a->items[2].is_u64());  // negative
  EXPECT_EQ(v.find("b")->text, "xA");
}

TEST(Jsonv, RejectsBadInputWithOffsets) {
  mkbas::core::Json v;
  std::string err;
  EXPECT_FALSE(mkbas::core::json_parse("{\"a\":01}", &v, &err));
  EXPECT_FALSE(mkbas::core::json_parse("{'a':1}", &v, &err));
  EXPECT_FALSE(mkbas::core::json_parse("{\"a\":1} trailing", &v, &err));
  EXPECT_FALSE(mkbas::core::json_parse("{\"a\":+1}", &v, &err));
  EXPECT_FALSE(mkbas::core::json_parse("{\"a\":NaN}", &v, &err));
}

TEST(Jsonv, U64RoundTripsExactly) {
  mkbas::core::Json v;
  std::string err;
  ASSERT_TRUE(
      mkbas::core::json_parse("{\"s\":18446744073709551615}", &v, &err));
  ASSERT_TRUE(v.find("s")->is_u64());
  EXPECT_EQ(v.find("s")->as_u64(), 18446744073709551615ull);
}

TEST(ArtifactKinds, NamesRoundTripAndProfilesAreVolatile) {
  for (int i = 0; i < core::kArtifactKinds; ++i) {
    const auto k = static_cast<core::ArtifactKind>(i);
    core::ArtifactKind back;
    ASSERT_TRUE(core::parse_artifact_kind(core::to_string(k), &back));
    EXPECT_EQ(back, k);
  }
  EXPECT_FALSE(
      core::artifact_is_deterministic(core::ArtifactKind::kProfile));
  EXPECT_FALSE(
      core::artifact_is_deterministic(core::ArtifactKind::kProfileTrace));
  EXPECT_EQ(core::all_deterministic_artifacts() &
                core::artifact_bit(core::ArtifactKind::kProfile),
            0u);
  EXPECT_NE(core::all_deterministic_artifacts() &
                core::artifact_bit(core::ArtifactKind::kSummary),
            0u);
}
