// Resilience and reproducibility of the full scenario: determinism,
// HTTP overload, and loss/recovery of individual processes.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

TEST(Resilience, BenignRunsAreBitwiseDeterministic) {
  const auto a = core::run_benign(core::Platform::kMinix);
  const auto b = core::run_benign(core::Platform::kMinix);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    ASSERT_EQ(a.history[i].time, b.history[i].time);
    ASSERT_EQ(a.history[i].true_temp_c, b.history[i].true_temp_c);
    ASSERT_EQ(a.history[i].heater_on, b.history[i].heater_on);
    ASSERT_EQ(a.history[i].alarm_on, b.history[i].alarm_on);
  }
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.kernel_entries, b.kernel_entries);
}

TEST(Resilience, SeedChangesNoiseButNotBehaviour) {
  core::RunOptions opts;
  opts.seed = 7;
  const auto a = core::run_benign(core::Platform::kMinix);
  const auto b = core::run_benign(core::Platform::kMinix, opts);
  // Different sensor noise: traces differ...
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.history.size(), b.history.size());
       ++i) {
    if (a.history[i].true_temp_c != b.history[i].true_temp_c) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
  // ...but the control outcome is the same.
  EXPECT_FALSE(b.safety.alarm_violation);
  EXPECT_TRUE(b.safety.control_alive);
  EXPECT_NEAR(a.history.back().true_temp_c, b.history.back().true_temp_c,
              0.5);
}

TEST(Resilience, HttpOverloadRefusesButDoesNotDisturbControl) {
  sim::Machine m;
  mkbas::bas::MinixScenario sc(m);
  // A burst far past the listen backlog, repeated every minute.
  m.every(sim::minutes(2), sim::minutes(1), [&] {
    for (int i = 0; i < 50; ++i) {
      sc.http().submit(m.now(), {"GET", "/status", ""});
    }
  });
  m.run_until(sim::minutes(20));
  EXPECT_GT(sc.http().refused_count(), 0u);
  // The web interface drains what was accepted...
  std::size_t answered = 0;
  for (const auto& ex : sc.http().exchanges()) {
    if (ex.answered >= 0) ++answered;
  }
  EXPECT_GT(answered, 100u);
  // ...and the control loop is unaffected.
  const auto safety = core::check_safety(
      sc.plant()->coupler->history(), m.trace(),
      mkbas::bas::ControlConfig{}, sim::minutes(20));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.alarm_violation);
  EXPECT_NEAR(sc.plant()->room.temperature_c(), 22.0, 1.0);
}

TEST(Resilience, WebInterfaceDeathDoesNotAffectTheControlLoop) {
  // The inverse of the paper's threat: losing the *non-critical* process
  // entirely must leave the critical loop untouched.
  sim::Machine m;
  mkbas::bas::MinixScenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.kernel().kernel_kill(sc.endpoint_of("webInterface"));
  });
  m.every(sim::minutes(12), sim::minutes(2), [&] {
    sc.http().submit(m.now(), {"GET", "/status", ""});  // nobody serves
  });
  m.run_until(sim::minutes(30));
  EXPECT_FALSE(sc.kernel().is_live(sc.endpoint_of("webInterface")));
  const auto safety = core::check_safety(
      sc.plant()->coupler->history(), m.trace(),
      mkbas::bas::ControlConfig{}, sim::minutes(30));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.physically_compromised());
  EXPECT_NEAR(sc.plant()->room.temperature_c(), 22.0, 1.0);
}

TEST(Resilience, SensorDeathIsHealedByReincarnation) {
  sim::Machine m;
  mkbas::bas::ScenarioConfig cfg;
  cfg.enable_reincarnation = true;
  mkbas::bas::MinixScenario sc(m, cfg);
  m.at(sim::minutes(10), [&] {
    sc.kernel().kernel_kill(sc.endpoint_of("tempSensProc"));
  });
  m.run_until(sim::minutes(30));
  EXPECT_GE(sc.kernel().restarts(), 1);
  EXPECT_TRUE(sc.kernel().is_live(sc.endpoint_of("tempSensProc")));
  // Control samples resumed after the gap.
  sim::Time last_sample = 0;
  for (const auto& ev : m.trace().events()) {
    if (ev.what() == "ctl.sample") last_sample = ev.time;
  }
  EXPECT_GT(last_sample, sim::minutes(29));
  const auto safety = core::check_safety(
      sc.plant()->coupler->history(), m.trace(),
      mkbas::bas::ControlConfig{}, sim::minutes(30));
  EXPECT_TRUE(safety.control_alive);
}

TEST(Resilience, ControlProcessDeathIsHealedByReincarnation) {
  // Even the critical process itself benefits from MINIX's self-repair:
  // a crash (not an attack — attacks cannot kill it) heals within the
  // restart delay, fast enough that the plant never leaves the band.
  sim::Machine m;
  mkbas::bas::ScenarioConfig cfg;
  cfg.enable_reincarnation = true;
  mkbas::bas::MinixScenario sc(m, cfg);
  m.at(sim::minutes(10), [&] {
    sc.kernel().kernel_kill(sc.endpoint_of("tempProc"));
  });
  m.run_until(sim::minutes(30));
  EXPECT_TRUE(sc.kernel().is_live(sc.endpoint_of("tempProc")));
  const auto safety = core::check_safety(
      sc.plant()->coupler->history(), m.trace(),
      mkbas::bas::ControlConfig{}, sim::minutes(30));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.temp_excursion);
}
