// The paper's §IV.D result as executable assertions: attacks that succeed
// on Linux are blocked on MINIX 3 + ACM and on seL4/CAmkES, and only on
// Linux do they reach the physical world.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

using core::Platform;
using mkbas::attack::AttackKind;
using mkbas::attack::Privilege;

TEST(AttackLinux, SpoofedSensorDataDisruptsThePhysicalWorld) {
  const auto row = core::run_attack(Platform::kLinux,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kCodeExec);
  EXPECT_TRUE(row.outcome.primitive_succeeded);
  EXPECT_GT(row.outcome.successes, 100);
  // Forged "freezing" readings force the heater on; the room overheats.
  EXPECT_TRUE(row.safety.temp_excursion);
  EXPECT_TRUE(row.safety.physically_compromised());
  EXPECT_GT(row.safety.max_temp_c, 25.0);
}

TEST(AttackLinux, RootDefeatsWellConfiguredQueues) {
  // Second simulation: per-process accounts + ACLs, but the attacker has
  // a privilege-escalation exploit.
  const auto row = core::run_attack(Platform::kLinux,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kRoot);
  EXPECT_EQ(row.platform_label, "Linux(acl)");
  EXPECT_TRUE(row.outcome.primitive_succeeded);
  EXPECT_TRUE(row.safety.physically_compromised());
}

TEST(AttackLinux, WithoutRootWellConfiguredQueuesHold) {
  // Control experiment: ACL'd queues DO stop a non-root attacker — the
  // paper's "unless each process runs under a unique user account ..."
  core::RunOptions opts;
  opts.linux_separate_accounts = true;
  const auto row = core::run_attack(Platform::kLinux,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kCodeExec, opts);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.physically_compromised());
}

TEST(AttackLinux, ActuatorSpoofSilencesTheAlarm) {
  const auto row = core::run_attack(Platform::kLinux,
                                    AttackKind::kSpoofActuator,
                                    Privilege::kCodeExec);
  EXPECT_TRUE(row.outcome.primitive_succeeded);
  // "the LED controlled by alarm actuator process showed everything is
  // normal" while the room overheats.
  EXPECT_TRUE(row.safety.alarm_violation);
  EXPECT_TRUE(row.safety.temp_excursion);
}

TEST(AttackLinux, RootKillsTheControlProcess) {
  const auto row = core::run_attack(Platform::kLinux,
                                    AttackKind::kKillControl,
                                    Privilege::kRoot);
  EXPECT_TRUE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.control_alive);
  EXPECT_TRUE(row.safety.physically_compromised());
}

TEST(AttackMinix, SpoofedSensorDataIsDeniedByTheAcm) {
  const auto row = core::run_attack(Platform::kMinix,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_EQ(row.outcome.successes, 0);
  EXPECT_FALSE(row.safety.physically_compromised());
}

TEST(AttackMinix, RootChangesNothing) {
  // "with root privilege web interface still cannot spoof" (§IV.D.2).
  const auto row = core::run_attack(Platform::kMinix,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kRoot);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.physically_compromised());
}

TEST(AttackMinix, ActuatorSpoofIsDenied) {
  const auto row = core::run_attack(Platform::kMinix,
                                    AttackKind::kSpoofActuator,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.alarm_violation);
}

TEST(AttackMinix, KillIsAuditedAndDenied) {
  const auto row = core::run_attack(Platform::kMinix,
                                    AttackKind::kKillControl,
                                    Privilege::kRoot);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_TRUE(row.safety.control_alive);
  EXPECT_NE(row.outcome.detail.find("EPERM"), std::string::npos);
}

TEST(AttackMinix, ForkBombSucceedsWithoutQuotas) {
  // The paper concedes this: "it can potentially launch a fork bomb to
  // eat up system resources. This is problematic."
  const auto row = core::run_attack(Platform::kMinix, AttackKind::kForkBomb,
                                    Privilege::kCodeExec);
  EXPECT_TRUE(row.outcome.primitive_succeeded);
  EXPECT_GT(row.outcome.successes, 50);
  // ... but the already-running control loop is not physically affected.
  EXPECT_FALSE(row.safety.physically_compromised());
}

TEST(AttackMinix, ForkQuotaStopsTheBomb) {
  // The proposed mitigation ("using the ACM to give each system call a
  // quota"), implemented and verified.
  core::RunOptions opts;
  opts.minix_quotas = true;
  const auto row = core::run_attack(Platform::kMinix, AttackKind::kForkBomb,
                                    Privilege::kCodeExec, opts);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_LE(row.outcome.successes, 4);  // the AADL-declared quota
}

TEST(AttackMinix, EndpointScanReachesNoCriticalProcess) {
  const auto row = core::run_attack(Platform::kMinix,
                                    AttackKind::kCapBruteForce,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_EQ(row.outcome.successes, 0);
}

TEST(AttackSel4, NoPathToSensorInterface) {
  const auto row = core::run_attack(Platform::kSel4,
                                    AttackKind::kSpoofSensor,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.physically_compromised());
}

TEST(AttackSel4, NoCapabilityToActuators) {
  const auto row = core::run_attack(Platform::kSel4,
                                    AttackKind::kSpoofActuator,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_FALSE(row.safety.alarm_violation);
}

TEST(AttackSel4, NoKillPrimitiveExists) {
  const auto row = core::run_attack(Platform::kSel4,
                                    AttackKind::kKillControl,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_TRUE(row.safety.control_alive);
}

TEST(AttackSel4, BruteForceFindsOnlyTheTwoPlannedCaps) {
  // §IV.D.3's experiment: "This brute-force program was unsuccessful in
  // finding any additional capabilities."
  const auto row = core::run_attack(Platform::kSel4,
                                    AttackKind::kCapBruteForce,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
  EXPECT_EQ(row.outcome.successes, 2);  // setpointOut + envQuery
}

TEST(AttackSel4, NoUntypedMeansNoThreadCreation) {
  const auto row = core::run_attack(Platform::kSel4, AttackKind::kForkBomb,
                                    Privilege::kCodeExec);
  EXPECT_FALSE(row.outcome.primitive_succeeded);
}

TEST(AttackFlood, ControlAbsorbsLegitimateChannelFloodEverywhere) {
  // DoS through the allowed setpoint edge: the 1 kHz flood is delivered
  // (or queue-bounded) but the control loop keeps regulating on all
  // three platforms — range-checked setpoints bound the damage.
  for (auto p : {Platform::kLinux, Platform::kMinix, Platform::kSel4}) {
    const auto row =
        core::run_attack(p, AttackKind::kIpcFlood, Privilege::kCodeExec);
    EXPECT_FALSE(row.safety.physically_compromised())
        << core::to_string(p) << ": " << row.safety.summary();
    EXPECT_GT(row.outcome.attempts, 1000) << core::to_string(p);
  }
}

TEST(AttackMinix, ReincarnationRestoresAKilledDriver) {
  // Extension experiment: with the RS enabled, even a successful fault
  // (kernel-level kill of the heater driver, modelling a driver crash)
  // heals — MINIX's self-repairing story applied to the scenario.
  sim::Machine m;
  mkbas::bas::ScenarioConfig cfg;
  cfg.enable_reincarnation = true;
  mkbas::bas::MinixScenario sc(m, cfg);
  m.at(sim::minutes(12), [&] {
    sc.kernel().kernel_kill(sc.endpoint_of("heaterActProc"));
  });
  m.run_until(sim::minutes(30));
  EXPECT_GE(sc.kernel().restarts(), 1);
  EXPECT_TRUE(sc.kernel().is_live(sc.endpoint_of("heaterActProc")));
  const auto safety = core::check_safety(
      sc.plant()->coupler->history(), m.trace(), cfg.control,
      sim::minutes(30), cfg.sensor_period);
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.alarm_violation);
  // The heater keeps being commanded after the restart.
  bool commanded_after_restart = false;
  for (const auto& tr : sc.plant()->heater.transitions()) {
    if (tr.time > sim::minutes(13)) commanded_after_restart = true;
  }
  EXPECT_TRUE(commanded_after_restart);
}

TEST(AttackMatrix, ReproducesThePapersHeadline) {
  // Condensed sanity over the full matrix: on Linux at least one attack
  // reaches the physical world; on the microkernels none does.
  const auto rows = core::run_attack_matrix();
  int linux_compromises = 0, minix_compromises = 0, sel4_compromises = 0;
  for (const auto& r : rows) {
    if (!r.safety.physically_compromised()) continue;
    switch (r.platform) {
      case Platform::kLinux:
        ++linux_compromises;
        break;
      case Platform::kMinix:
        ++minix_compromises;
        break;
      case Platform::kSel4:
        ++sel4_compromises;
        break;
    }
  }
  EXPECT_GE(linux_compromises, 4);
  EXPECT_EQ(minix_compromises, 0);
  EXPECT_EQ(sel4_compromises, 0);
}
