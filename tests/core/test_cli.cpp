// The shared experiment_runner flag grammar: every subcommand parses
// through core::parse_cli. Flags only — the legacy positional spellings
// of the earlier runners are gone, and this file pins that they no
// longer do anything.
#include <gtest/gtest.h>

#include <vector>

#include "core/cli.hpp"

namespace core = mkbas::core;

namespace {

core::CliArgs parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "experiment_runner");
  return core::parse_cli(static_cast<int>(argv.size()),
                         const_cast<char**>(argv.data()));
}

}  // namespace

TEST(Cli, FlagGrammarCoversSharedOptions) {
  const auto a = parse({"fabric", "--platform", "sel4", "--scenario", "uds",
                        "--seed", "9", "--zones", "16", "--jobs", "4",
                        "--out", "s.json", "--metrics-out", "m.json",
                        "--trace-out", "t.json", "--attack", "spoof-write"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.mode, "fabric");
  EXPECT_TRUE(a.has_platform);
  EXPECT_EQ(a.platform, mkbas::bas::Platform::kSel4);
  EXPECT_EQ(a.scenario, "uds");
  EXPECT_TRUE(a.has_seed);
  EXPECT_EQ(a.seed, 9u);
  EXPECT_EQ(a.zones, 16);
  EXPECT_EQ(a.jobs, 4);
  EXPECT_EQ(a.artifacts[core::ArtifactKind::kSummary], "s.json");
  EXPECT_EQ(a.artifacts[core::ArtifactKind::kMetrics], "m.json");
  EXPECT_EQ(a.artifacts[core::ArtifactKind::kTrace], "t.json");
  EXPECT_TRUE(a.artifacts.any());
  EXPECT_EQ(a.artifacts.mask(),
            core::artifact_bit(core::ArtifactKind::kSummary) |
                core::artifact_bit(core::ArtifactKind::kMetrics) |
                core::artifact_bit(core::ArtifactKind::kTrace));
  EXPECT_TRUE(a.has_attack);
  EXPECT_EQ(a.attack, "spoof-write");
}

TEST(Cli, EveryArtifactFlagFillsItsSlot) {
  const auto a = parse({"campaign", "fabric", "--out", "a", "--metrics-out",
                        "b", "--trace-out", "c", "--trace-spans", "d",
                        "--audit-out", "e", "--critical-out", "f",
                        "--series-out", "g", "--health-out", "h",
                        "--flight-out", "i", "--metrics-prom-out", "j",
                        "--profile-out", "k", "--profile-trace", "l"});
  EXPECT_TRUE(a.error.empty());
  const char* expect[core::kArtifactKinds] = {"a", "b", "c", "d", "e", "f",
                                              "g", "h", "i", "j", "k", "l"};
  for (int k = 0; k < core::kArtifactKinds; ++k) {
    EXPECT_EQ(a.artifacts[static_cast<core::ArtifactKind>(k)], expect[k]);
  }
}

TEST(Cli, TopologyAndSyncFlagsParse) {
  const auto a = parse({"fabric", "--topology", "campus", "--floors", "4",
                        "--buildings", "3", "--sync", "epoch", "--lite",
                        "--zones", "1200"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.topology, mkbas::net::TopologySpec::Kind::kCampus);
  EXPECT_EQ(a.floors, 4);
  EXPECT_EQ(a.buildings, 3);
  EXPECT_EQ(a.sync, mkbas::net::SyncMode::kEpoch);
  EXPECT_TRUE(a.lite);
  EXPECT_EQ(a.zones, 1200);

  const auto d = parse({"fabric"});
  EXPECT_EQ(d.topology, mkbas::net::TopologySpec::Kind::kFlat);
  EXPECT_EQ(d.sync, mkbas::net::SyncMode::kLookahead);
  EXPECT_FALSE(d.lite);

  const auto bad = parse({"fabric", "--topology", "mesh"});
  EXPECT_FALSE(bad.error.empty());
  const auto bad2 = parse({"fabric", "--sync", "optimistic"});
  EXPECT_FALSE(bad2.error.empty());
}

TEST(Cli, DefaultsWhenNothingGiven) {
  const auto a = parse({"matrix"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.mode, "matrix");
  EXPECT_FALSE(a.has_platform);
  EXPECT_FALSE(a.has_seed);
  EXPECT_EQ(a.scenario, "temp");
  EXPECT_EQ(a.zones, 4);
  EXPECT_EQ(a.jobs, 1);
  EXPECT_TRUE(a.pos.empty());
}

TEST(Cli, LegacyPositionalSpellingsAreInertPositionals) {
  // The pre-unification grammar "attack linux kill root" no longer
  // fills any typed field: the words pass through as positionals and
  // request_from_cli rejects the combination (no --attack given).
  const auto a = parse({"attack", "linux", "kill", "root"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.mode, "attack");
  EXPECT_FALSE(a.has_platform);
  EXPECT_FALSE(a.root);
  ASSERT_EQ(a.pos.size(), 3u);
  EXPECT_EQ(a.pos[0], "linux");
  EXPECT_EQ(a.pos[1], "kill");
  EXPECT_EQ(a.pos[2], "root");

  core::ExperimentRequest req;
  std::string err;
  EXPECT_FALSE(core::request_from_cli(a, &req, &err));
  EXPECT_NE(err.find("--platform"), std::string::npos) << err;

  // Even with the platform given as a flag, the positional attack kind
  // is not interpreted: the adapter demands --attack.
  const auto b = parse({"attack", "--platform", "linux", "kill", "root"});
  EXPECT_TRUE(b.error.empty());
  EXPECT_FALSE(core::request_from_cli(b, &req, &err));
  EXPECT_NE(err.find("--attack"), std::string::npos) << err;

  // "fault minix seed 7" likewise: no platform, no seed, just words.
  const auto f = parse({"fault", "minix", "seed", "7", "no-probe"});
  EXPECT_TRUE(f.error.empty());
  EXPECT_FALSE(f.has_platform);
  EXPECT_FALSE(f.has_seed);
  EXPECT_FALSE(f.no_probe);
  EXPECT_EQ(f.pos.size(), 4u);
}

TEST(Cli, LegacyEscapeHatchIsGone) {
  // --legacy was the acknowledgement flag for the deprecation cycle; it
  // must now be an ordinary unknown-flag error.
  const auto a = parse({"attack", "linux", "kill", "--legacy"});
  ASSERT_FALSE(a.error.empty());
  EXPECT_NE(a.error.find("--legacy"), std::string::npos);
}

TEST(Cli, ServeFlagsParse) {
  const auto a = parse({"serve", "--port", "0", "--jobs", "3", "--batch", "5",
                        "--slow-ms", "40", "--store-cap", "64", "--no-trace"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.mode, "serve");
  EXPECT_EQ(a.port, 0);
  EXPECT_EQ(a.jobs, 3);
  EXPECT_EQ(a.batch, 5);
  EXPECT_EQ(a.slow_ms, 40);
  EXPECT_EQ(a.store_cap, 64);
  EXPECT_TRUE(a.no_trace);
  EXPECT_EQ(parse({"serve"}).port, 8080);
  EXPECT_EQ(parse({"serve"}).batch, 8);
  EXPECT_EQ(parse({"serve"}).slow_ms, 250);
  EXPECT_EQ(parse({"serve"}).store_cap, 0);
  EXPECT_FALSE(parse({"serve"}).no_trace);
}

TEST(Cli, CampaignSubmodeIsPositional) {
  const auto a = parse({"campaign", "fabric", "--zones", "8", "--jobs", "2"});
  EXPECT_TRUE(a.error.empty());
  EXPECT_EQ(a.mode, "campaign");
  ASSERT_EQ(a.pos.size(), 1u);
  EXPECT_EQ(a.pos[0], "fabric");
  EXPECT_EQ(a.zones, 8);
  EXPECT_EQ(a.jobs, 2);
}

TEST(Cli, UnknownFlagAndMissingValueAreErrors) {
  EXPECT_FALSE(parse({"benign", "--frobnicate"}).error.empty());
  EXPECT_FALSE(parse({"benign", "--seed"}).error.empty());
  EXPECT_FALSE(parse({"benign", "--platform", "plan9"}).error.empty());
  // Single-dash typos are errors too; negative numbers are not flags.
  EXPECT_FALSE(parse({"benign", "-seed", "3"}).error.empty());
}

TEST(Cli, UnknownFlagSuggestsNearestSpelling) {
  const auto a = parse({"fabric", "--zoned", "16"});
  ASSERT_FALSE(a.error.empty());
  EXPECT_NE(a.error.find("--zoned"), std::string::npos);
  EXPECT_NE(a.error.find("did you mean '--zones'"), std::string::npos);
  const auto b = parse({"fabric", "--topology", "campos"});
  ASSERT_FALSE(b.error.empty());
  EXPECT_NE(b.error.find("did you mean 'campus'"), std::string::npos);
}

TEST(Cli, ParserHelpersRoundTrip) {
  mkbas::bas::Platform p;
  EXPECT_TRUE(core::parse_platform("minix", &p));
  EXPECT_TRUE(core::parse_platform("sel4", &p));
  EXPECT_TRUE(core::parse_platform("linux", &p));
  EXPECT_FALSE(core::parse_platform("windows", &p));

  mkbas::attack::AttackKind k;
  EXPECT_TRUE(core::parse_attack_kind("spoof-sensor", &k));
  EXPECT_TRUE(core::parse_attack_kind("brute-force", &k));
  EXPECT_FALSE(core::parse_attack_kind("spoof-write", &k));

  core::FabricAttack f;
  EXPECT_TRUE(core::parse_fabric_attack("none", &f));
  EXPECT_TRUE(core::parse_fabric_attack("spoof-write", &f));
  EXPECT_TRUE(core::parse_fabric_attack("replay", &f));
  EXPECT_TRUE(core::parse_fabric_attack("flood", &f));
  EXPECT_FALSE(core::parse_fabric_attack("kill", &f));
}
