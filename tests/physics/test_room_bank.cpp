// RoomBank must be a drop-in for a vector of scalar RoomModel objects:
// bit-identical temperatures (memcmp on the doubles, not a tolerance)
// across dt values that hit the single-sub-step fast path, the
// sub-stepped general path, and the boundary between them, over a
// parameter sweep of capacitance/loss/profile mixes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "physics/room.hpp"
#include "sim/rng.hpp"

namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

struct Fleet {
  std::vector<physics::RoomModel> scalar;
  std::vector<double> heaters;
  physics::RoomBank bank;
};

Fleet build_fleet(std::size_t rooms, std::uint64_t seed) {
  Fleet f;
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < rooms; ++i) {
    physics::RoomModel::Params p;
    p.capacitance_j_per_k =
        5.0e4 + static_cast<double>(rng.next_u64() % 4000) * 100.0;
    p.loss_w_per_k = 20.0 + static_cast<double>(rng.next_u64() % 150);
    p.initial_temp_c = 10.0 + static_cast<double>(rng.next_u64() % 200) * 0.1;
    const physics::OutdoorSpec outdoor =
        (rng.next_u64() & 1) != 0
            ? physics::OutdoorSpec::diurnal(
                  6.0 + static_cast<double>(rng.next_u64() % 8),
                  2.0 + static_cast<double>(rng.next_u64() % 6))
            : physics::OutdoorSpec::constant(
                  static_cast<double>(rng.next_u64() % 16));
    const double heater = static_cast<double>(rng.next_u64() % 3000);
    const double disturbance =
        static_cast<double>(rng.next_u64() % 500) - 250.0;

    f.scalar.emplace_back(p);
    f.scalar.back().set_outdoor(outdoor);
    f.scalar.back().set_disturbance_w(disturbance);
    f.heaters.push_back(heater);

    const std::size_t idx = f.bank.add(p, outdoor);
    EXPECT_EQ(idx, i);
    f.bank.set_heater_w(i, heater);
    f.bank.set_disturbance_w(i, disturbance);
  }
  return f;
}

// Step both representations `ticks` times by `dt` and require every room
// bit-identical after every tick.
void step_and_compare(Fleet& f, sim::Duration dt, int ticks, sim::Time& now) {
  for (int tick = 0; tick < ticks; ++tick) {
    now += dt;
    for (std::size_t i = 0; i < f.scalar.size(); ++i) {
      f.scalar[i].step(dt, f.heaters[i], now);
    }
    f.bank.step_all(dt, now);
    for (std::size_t i = 0; i < f.scalar.size(); ++i) {
      ASSERT_TRUE(
          bit_equal(f.scalar[i].temperature_c(), f.bank.temperature_c(i)))
          << "room " << i << " tick " << tick << " dt " << dt;
    }
  }
}

TEST(RoomBank, BitEqualAcrossDtSweep) {
  Fleet f = build_fleet(257, 0xF1EE7);  // odd count: vector tail lanes
  sim::Time now = 0;
  // Fast path (control ticks well under every room's stability bound),
  // general sub-stepped path (minutes-long steps), and values near the
  // min_max_h boundary.
  step_and_compare(f, sim::msec(250), 20, now);
  step_and_compare(f, sim::sec(1), 20, now);
  step_and_compare(f, sim::sec(25), 10, now);
  step_and_compare(f, sim::sec(63), 10, now);
  step_and_compare(f, sim::minutes(5), 5, now);
  step_and_compare(f, sim::sec(1), 20, now);  // back onto the fast path
}

TEST(RoomBank, BitEqualAcrossParamSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Fleet f = build_fleet(64, seed * 0x517CC1B727220A95ULL);
    sim::Time now = sim::sec(static_cast<std::int64_t>(seed) * 3600);
    step_and_compare(f, sim::sec(2), 16, now);
    step_and_compare(f, sim::minutes(2), 4, now);
  }
}

TEST(RoomBank, MidRunInputChangesTrackScalar) {
  Fleet f = build_fleet(32, 42);
  sim::Time now = 0;
  step_and_compare(f, sim::sec(1), 8, now);
  // Flip inputs mid-run the way controllers do: heater off, a window
  // opens (negative disturbance), outdoor profile swapped.
  for (std::size_t i = 0; i < f.scalar.size(); i += 2) {
    f.heaters[i] = 0.0;
    f.bank.set_heater_w(i, 0.0);
    f.scalar[i].set_disturbance_w(-400.0);
    f.bank.set_disturbance_w(i, -400.0);
    const auto spec = physics::OutdoorSpec::diurnal(1.0, 9.0);
    f.scalar[i].set_outdoor(spec);
    f.bank.set_outdoor(i, spec);
  }
  step_and_compare(f, sim::sec(1), 8, now);
  step_and_compare(f, sim::minutes(3), 3, now);
}

TEST(RoomBank, EmptyAndZeroDtAreNoOps) {
  physics::RoomBank bank;
  bank.step_all(sim::sec(1), 0);  // empty bank: nothing to do
  EXPECT_EQ(bank.size(), 0u);
  const std::size_t i = bank.add({}, physics::OutdoorSpec::constant(5.0));
  const double before = bank.temperature_c(i);
  bank.step_all(0, sim::sec(10));  // dt <= 0: no state change
  EXPECT_TRUE(bit_equal(before, bank.temperature_c(i)));
}

TEST(RoomBank, OutdoorSpecMatchesLegacyProfiles) {
  // The OutdoorSpec evaluation must reproduce the legacy std::function
  // profiles bit-for-bit — scenarios switched from one to the other.
  const auto legacy_const = physics::constant_outdoor(7.5);
  const auto legacy_diurnal = physics::diurnal_outdoor(9.0, 4.0);
  const auto spec_const = physics::OutdoorSpec::constant(7.5);
  const auto spec_diurnal = physics::OutdoorSpec::diurnal(9.0, 4.0);
  for (std::int64_t h = 0; h < 48; ++h) {
    const sim::Time t = sim::minutes(h * 60 + 17);
    EXPECT_TRUE(bit_equal(legacy_const(t), spec_const.eval(t)));
    EXPECT_TRUE(bit_equal(legacy_diurnal(t), spec_diurnal.eval(t)));
  }
}

}  // namespace
