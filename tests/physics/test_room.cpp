#include "physics/room.hpp"

#include <gtest/gtest.h>

namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

TEST(RoomModel, CoolsTowardOutdoorWithoutHeat) {
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 25.0});
  room.set_outdoor_profile(physics::constant_outdoor(5.0));
  for (int i = 0; i < 60; ++i) room.step(sim::minutes(5), 0.0, 0);
  EXPECT_NEAR(room.temperature_c(), 5.0, 0.2);
}

TEST(RoomModel, HeatsTowardSteadyStateWithConstantInput) {
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 10.0});
  room.set_outdoor_profile(physics::constant_outdoor(0.0));
  const double q = 2000.0;  // steady state = 0 + 2000/100 = 20C
  for (int i = 0; i < 120; ++i) room.step(sim::minutes(5), q, 0);
  EXPECT_NEAR(room.temperature_c(), room.steady_state_c(q, 0), 0.2);
  EXPECT_NEAR(room.temperature_c(), 20.0, 0.2);
}

TEST(RoomModel, MonotoneApproachFromBelow) {
  physics::RoomModel room({.capacitance_j_per_k = 2e5,
                           .loss_w_per_k = 80.0,
                           .initial_temp_c = 10.0});
  room.set_outdoor_profile(physics::constant_outdoor(0.0));
  double prev = room.temperature_c();
  for (int i = 0; i < 50; ++i) {
    room.step(sim::minutes(1), 4000.0, 0);
    EXPECT_GE(room.temperature_c(), prev - 1e-9);
    prev = room.temperature_c();
  }
  EXPECT_LE(prev, room.steady_state_c(4000.0, 0) + 1e-6);
}

TEST(RoomModel, DisturbanceShiftsSteadyState) {
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 15.0});
  room.set_outdoor_profile(physics::constant_outdoor(10.0));
  room.set_disturbance_w(500.0);  // occupants / manual heating: +5C
  for (int i = 0; i < 120; ++i) room.step(sim::minutes(5), 0.0, 0);
  EXPECT_NEAR(room.temperature_c(), 15.0, 0.2);
}

TEST(RoomModel, ZeroOrNegativeDtIsANoop) {
  physics::RoomModel room;
  const double before = room.temperature_c();
  room.step(0, 5000.0, 0);
  room.step(-10, 5000.0, 0);
  EXPECT_DOUBLE_EQ(room.temperature_c(), before);
}

TEST(RoomModel, StableForLargeSteps) {
  // Forward Euler must not oscillate or blow up for multi-hour steps.
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 50.0});
  room.set_outdoor_profile(physics::constant_outdoor(0.0));
  room.step(sim::sec(3600 * 12), 0.0, 0);
  EXPECT_GE(room.temperature_c(), -0.01);
  EXPECT_LE(room.temperature_c(), 50.0);
}

TEST(RoomModel, DiurnalProfileOscillates) {
  auto profile = physics::diurnal_outdoor(10.0, 5.0);
  const double morning = profile(sim::sec(6 * 3600));   // peak of sin
  const double evening = profile(sim::sec(18 * 3600));  // trough
  EXPECT_NEAR(morning, 15.0, 0.01);
  EXPECT_NEAR(evening, 5.0, 0.01);
  EXPECT_NEAR(profile(0), 10.0, 0.01);
}
