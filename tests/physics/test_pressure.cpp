#include "physics/pressure.hpp"

#include <gtest/gtest.h>

namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

TEST(Containment, FullFanPullsLabNegative) {
  physics::ContainmentModel m;
  for (int i = 0; i < 600; ++i) m.step(sim::sec(1), 1.0, false, false);
  EXPECT_NEAR(m.lab_pressure_pa(), m.steady_state_lab_pa(1.0), 1.5);
  EXPECT_LT(m.lab_pressure_pa(), -25.0);
  // Cascade: the anteroom sits between lab and corridor.
  EXPECT_LT(m.anteroom_pressure_pa(), 0.0);
  EXPECT_GT(m.anteroom_pressure_pa(), m.lab_pressure_pa());
}

TEST(Containment, FanOffLosesContainment) {
  physics::ContainmentModel m;
  for (int i = 0; i < 600; ++i) m.step(sim::sec(1), 1.0, false, false);
  ASSERT_LT(m.lab_pressure_pa(), -25.0);
  for (int i = 0; i < 600; ++i) m.step(sim::sec(1), 0.0, false, false);
  // Supply keeps blowing in: the lab goes positive — containment lost.
  EXPECT_GT(m.lab_pressure_pa(), 0.0);
}

TEST(Containment, OpenOuterDoorRaisesAnteroomPressure) {
  physics::ContainmentModel m;
  for (int i = 0; i < 600; ++i) m.step(sim::sec(1), 1.0, false, false);
  const double ante_before = m.anteroom_pressure_pa();
  for (int i = 0; i < 10; ++i) m.step(sim::sec(1), 1.0, false, true);
  EXPECT_GT(m.anteroom_pressure_pa(), ante_before);
  // But the lab, behind the closed inner door, stays strongly negative.
  EXPECT_LT(m.lab_pressure_pa(), -20.0);
}

TEST(Containment, BothDoorsOpenCollapsesTheCascade) {
  physics::ContainmentModel m;
  for (int i = 0; i < 600; ++i) m.step(sim::sec(1), 1.0, false, false);
  for (int i = 0; i < 120; ++i) m.step(sim::sec(1), 1.0, true, true);
  // A straight open path corridor -> anteroom -> lab: the lab cannot
  // hold design pressure (this is why the interlock exists).
  EXPECT_GT(m.lab_pressure_pa(), -10.0);
}

TEST(Containment, FaultInflowShiftsSteadyState) {
  physics::ContainmentModel m;
  m.set_fault_inflow(0.3);
  for (int i = 0; i < 900; ++i) m.step(sim::sec(1), 1.0, false, false);
  EXPECT_NEAR(m.lab_pressure_pa(), m.steady_state_lab_pa(1.0), 1.5);
  EXPECT_GT(m.lab_pressure_pa(), -25.0);  // shallower than without fault
}

TEST(Containment, FanSpeedIsClamped) {
  physics::ContainmentModel a, b;
  for (int i = 0; i < 300; ++i) {
    a.step(sim::sec(1), 5.0, false, false);   // clamped to 1.0
    b.step(sim::sec(1), 1.0, false, false);
  }
  EXPECT_DOUBLE_EQ(a.lab_pressure_pa(), b.lab_pressure_pa());
}

TEST(Containment, ZeroDtIsNoop) {
  physics::ContainmentModel m;
  const double before = m.lab_pressure_pa();
  m.step(0, 1.0, false, false);
  m.step(-5, 1.0, false, false);
  EXPECT_DOUBLE_EQ(m.lab_pressure_pa(), before);
}
