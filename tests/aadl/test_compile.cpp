#include "aadl/compile.hpp"

#include <gtest/gtest.h>

#include "aadl/parser.hpp"
#include "aadl/scenario_model.hpp"
#include "minix/kernel.hpp"

namespace aadl = mkbas::aadl;
namespace minix = mkbas::minix;

namespace {

aadl::Model parse_ok(const std::string& src) {
  aadl::Parser p(src);
  auto model = p.parse();
  EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.diagnostics()[0].message);
  return model;
}

std::optional<aadl::CompiledSystem> compile_scenario() {
  auto model = parse_ok(aadl::temp_control_aadl());
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "TempControl.impl", diags);
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].message);
  return sys;
}

}  // namespace

TEST(Compile, ScenarioCompiles) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->instances.size(), 5u);
  EXPECT_EQ(sys->connections.size(), 5u);
  EXPECT_EQ(sys->ac_of("tempSensProc"), 100);
  EXPECT_EQ(sys->ac_of("tempProc"), 101);
  EXPECT_EQ(sys->ac_of("webInterface"), 104);
}

TEST(Compile, RejectsUnknownImplementation) {
  auto model = parse_ok(R"(
system S end S;
system implementation S.impl
  subcomponents
    a : process Missing.imp;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  EXPECT_FALSE(aadl::compile(model, "S.impl", diags).has_value());
  EXPECT_NE(diags[0].message.find("unknown implementation"),
            std::string::npos);
}

TEST(Compile, RejectsMissingAcId) {
  auto model = parse_ok(R"(
process A end A;
process implementation A.imp
end A.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  EXPECT_FALSE(aadl::compile(model, "S.impl", diags).has_value());
  EXPECT_NE(diags[0].message.find("ac_id"), std::string::npos);
}

TEST(Compile, RejectsDuplicateAcIds) {
  auto model = parse_ok(R"(
process A end A;
process B end B;
process implementation A.imp
  properties MKBAS::ac_id => 7;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 7;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  EXPECT_FALSE(aadl::compile(model, "S.impl", diags).has_value());
  EXPECT_NE(diags[0].message.find("duplicate ac_id"), std::string::npos);
}

TEST(Compile, RejectsDirectionMismatch) {
  auto model = parse_ok(R"(
process A
  features p : in event data port T;
end A;
process B
  features q : in event data port T;
end B;
process implementation A.imp
  properties MKBAS::ac_id => 10;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c : port a.p -> b.q;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  EXPECT_FALSE(aadl::compile(model, "S.impl", diags).has_value());
  EXPECT_NE(diags[0].message.find("out port"), std::string::npos);
}

TEST(Compile, RejectsDataTypeMismatch) {
  auto model = parse_ok(R"(
process A
  features p : out event data port Celsius;
end A;
process B
  features q : in event data port Fahrenheit;
end B;
process implementation A.imp
  properties MKBAS::ac_id => 10;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c : port a.p -> b.q;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  EXPECT_FALSE(aadl::compile(model, "S.impl", diags).has_value());
  EXPECT_NE(diags[0].message.find("data types differ"), std::string::npos);
}

TEST(Compile, AutoAssignsFreeMTypes) {
  auto model = parse_ok(R"(
process A
  features p : out event port T;
         p2 : out event port T;
end A;
process B
  features q : in event port T;
         q2 : in event port T;
end B;
process implementation A.imp
  properties MKBAS::ac_id => 10;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c1 : port a.p -> b.q { MKBAS::m_type => 1; };
    c2 : port a.p2 -> b.q2;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "S.impl", diags);
  ASSERT_TRUE(sys.has_value()) << diags[0].message;
  EXPECT_EQ(sys->connections[0].m_type, 1);
  EXPECT_EQ(sys->connections[1].m_type, 2);  // smallest free type
}

TEST(Compile, GeneratedAcmMatchesConnections) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  const minix::AcmPolicy acm = aadl::generate_acm(*sys);

  // Sensor may send type 1 to control; web may not.
  EXPECT_TRUE(acm.allowed(100, 101, 1));
  EXPECT_FALSE(acm.allowed(104, 101, 1));
  // Web may send setpoints (type 2) and env queries (type 3) to control,
  // nothing else; control answers only with acks (type 0).
  EXPECT_TRUE(acm.allowed(104, 101, 2));
  EXPECT_TRUE(acm.allowed(104, 101, 3));
  EXPECT_FALSE(acm.allowed(104, 101, 4));
  EXPECT_TRUE(acm.allowed(101, 104, 0));
  EXPECT_FALSE(acm.allowed(101, 104, 1));
  // Control commands the drivers; web holds no edge to them at all.
  EXPECT_TRUE(acm.allowed(101, 102, 1));
  EXPECT_TRUE(acm.allowed(101, 103, 1));
  EXPECT_FALSE(acm.allowed(104, 102, 1));
  EXPECT_FALSE(acm.allowed(104, 103, 0));
  // Acks flow both ways along each connection.
  EXPECT_TRUE(acm.allowed(101, 100, 0));
  EXPECT_TRUE(acm.allowed(101, 104, 0));
  // Nobody may kill anybody in this policy.
  EXPECT_FALSE(acm.kill_allowed(104, 101));
  EXPECT_FALSE(acm.kill_allowed(101, 104));
}

TEST(Compile, GeneratedAcmIncludesPmRows) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  const minix::AcmPolicy acm = aadl::generate_acm(*sys);
  // Every process may fork (type 1) and exit (type 3) via PM, ack with PM.
  for (int ac : {100, 101, 102, 103, 104}) {
    EXPECT_TRUE(acm.allowed(ac, 1, 1)) << ac;
    EXPECT_TRUE(acm.allowed(ac, 1, 3)) << ac;
    EXPECT_TRUE(acm.allowed(1, ac, 0)) << ac;
    // ... but nobody may send PM a kill request (type 2).
    EXPECT_FALSE(acm.allowed(ac, 1, 2)) << ac;
  }
}

TEST(Compile, MayKillPropertyGeneratesKillEdges) {
  auto model = parse_ok(R"(
process A end A;
process B end B;
process implementation A.imp
  properties
    MKBAS::ac_id => 10;
    MKBAS::may_kill => (b);
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "S.impl", diags);
  ASSERT_TRUE(sys.has_value());
  const minix::AcmPolicy acm = aadl::generate_acm(*sys);
  EXPECT_TRUE(acm.kill_allowed(10, 11));
  EXPECT_FALSE(acm.kill_allowed(11, 10));
  EXPECT_TRUE(acm.allowed(10, 1, 2));  // kill request edge to PM
}

TEST(Compile, ForkQuotaIsCarriedIntoPolicy) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  aadl::AcmGenOptions opts;
  opts.enable_quotas = true;
  const minix::AcmPolicy acm = aadl::generate_acm(*sys, opts);
  ASSERT_TRUE(acm.fork_quota(104).has_value());
  EXPECT_EQ(*acm.fork_quota(104), 4);
  EXPECT_TRUE(acm.quotas_enabled());
}

TEST(Compile, CSourceEmitterProducesTable) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  const std::string c = aadl::emit_acm_c_source(*sys);
  EXPECT_NE(c.find("#define AC_TEMPSENSPROC 100"), std::string::npos);
  EXPECT_NE(c.find("#define AC_WEBINTERFACE 104"), std::string::npos);
  EXPECT_NE(c.find("ACM_TABLE[]"), std::string::npos);
  EXPECT_NE(c.find("AC_TEMPSENSPROC, AC_TEMPPROC"), std::string::npos);
  // web -> control mask: types 0, 2 and 3 -> 0xd.
  EXPECT_NE(c.find("0x000000000000000d"), std::string::npos);
}

TEST(Compile, CamkesEmitterListsComponentsAndConnections) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  const std::string cam = aadl::emit_camkes_assembly(*sys);
  EXPECT_NE(cam.find("component TempControlProcess tempProc;"),
            std::string::npos);
  EXPECT_NE(cam.find("connection seL4RPCCall c_setpoint(from "
                     "webInterface.setpointOut, to tempProc.setpointIn);"),
            std::string::npos);
  EXPECT_NE(cam.find("connection seL4RPCCall c_env(from "
                     "webInterface.envQuery, to tempProc.envIn);"),
            std::string::npos);
  EXPECT_NE(cam.find("uses MkbasIface sensorOut;"), std::string::npos);
  EXPECT_NE(cam.find("provides MkbasIface cmdIn;"), std::string::npos);
}

TEST(Compile, PortKindsSelectCamkesConnectors) {
  auto model = parse_ok(R"(
process A
  features
    rpcOut : out event data port T;
    evOut  : out event port E;
    dpOut  : out data port D;
end A;
process B
  features
    rpcIn : in event data port T;
    evIn  : in event port E;
    dpIn  : in data port D;
end B;
process implementation A.imp
  properties MKBAS::ac_id => 10;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c1 : port a.rpcOut -> b.rpcIn;
    c2 : port a.evOut -> b.evIn;
    c3 : port a.dpOut -> b.dpIn;
end S.impl;
)");
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "S.impl", diags);
  ASSERT_TRUE(sys.has_value()) << diags[0].message;
  EXPECT_EQ(sys->connections[0].kind, aadl::PortKind::kEventData);
  EXPECT_EQ(sys->connections[1].kind, aadl::PortKind::kEvent);
  EXPECT_EQ(sys->connections[2].kind, aadl::PortKind::kData);
  const std::string cam = aadl::emit_camkes_assembly(*sys);
  EXPECT_NE(cam.find("connection seL4RPCCall c1"), std::string::npos);
  EXPECT_NE(cam.find("connection seL4Notification c2"), std::string::npos);
  EXPECT_NE(cam.find("connection seL4SharedData c3"), std::string::npos);
  EXPECT_NE(cam.find("emits MkbasEvent evOut;"), std::string::npos);
  EXPECT_NE(cam.find("consumes MkbasEvent evIn;"), std::string::npos);
  EXPECT_NE(cam.find("dataport Buf dpOut;"), std::string::npos);
}

TEST(Compile, CapdlEmitterDistributesEndpointCaps) {
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  const std::string capdl = aadl::emit_capdl(*sys);
  EXPECT_NE(capdl.find("ep_c_setpoint = ep"), std::string::npos);
  EXPECT_NE(capdl.find("cnode_webInterface"), std::string::npos);
  // The web interface sends with grant and its badge (ac_id 104).
  EXPECT_NE(capdl.find("(W, G, badge: 104)"), std::string::npos);
}

TEST(Compile, LintFlagsUnconnectedPorts) {
  auto model = parse_ok(R"(
process A
  features
    used   : out event data port T;
    unused : out event data port T;
end A;
process B
  features q : in event data port T;
end B;
process implementation A.imp
  properties MKBAS::ac_id => 10;
end A.imp;
process implementation B.imp
  properties MKBAS::ac_id => 11;
end B.imp;
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c : port a.used -> b.q;
end S.impl;
)");
  const auto warnings = aadl::lint(model, "S.impl");
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].message.find("'unused'"), std::string::npos);
  EXPECT_NE(warnings[0].message.find("unconnected"), std::string::npos);
}

TEST(Compile, ScenarioModelLintsClean) {
  aadl::Parser p(aadl::temp_control_aadl());
  auto model = p.parse();
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(aadl::lint(model, "TempControl.impl").empty());
}

TEST(Compile, GeneratedPolicyEnforcesInLiveKernel) {
  // End-to-end: AADL text -> policy -> kernel decision.
  auto sys = compile_scenario();
  ASSERT_TRUE(sys.has_value());
  mkbas::sim::Machine m;
  minix::MinixKernel k(m, aadl::generate_acm(*sys));
  minix::IpcResult spoof = minix::IpcResult::kOk;
  minix::IpcResult legit = minix::IpcResult::kNotAllowed;
  auto ctl = k.srv_fork2("tempProc", 101, [&] {
    minix::Message msg;
    k.ipc_receive(minix::Endpoint::any(), msg);
    k.ipc_receive(minix::Endpoint::any(), msg);
  });
  k.srv_fork2("webInterface", 104, [&] {
    minix::Message msg;
    msg.m_type = 1;  // impersonate the sensor: denied
    spoof = k.ipc_send(ctl, msg);
    msg.m_type = 2;  // legitimate setpoint: allowed
    legit = k.ipc_send(ctl, msg);
  });
  k.srv_fork2("tempSensProc", 100, [&] {
    mkbas::sim::Machine& mm = k.machine();
    mm.sleep_for(mkbas::sim::msec(5));
    minix::Message msg;
    msg.m_type = 1;
    k.ipc_send(ctl, msg);
  });
  m.run_until(mkbas::sim::sec(1));
  EXPECT_EQ(spoof, minix::IpcResult::kNotAllowed);
  EXPECT_EQ(legit, minix::IpcResult::kOk);
}
