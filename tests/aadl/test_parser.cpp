#include "aadl/parser.hpp"

#include <gtest/gtest.h>

#include "aadl/scenario_model.hpp"

namespace aadl = mkbas::aadl;

TEST(Lexer, TokenizesSymbolsAndIdents) {
  aadl::Lexer lex("a : port x.y -> b.z { MKBAS::m_type => 12; };");
  auto toks = lex.tokenize();
  ASSERT_TRUE(lex.error().empty());
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, aadl::TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].kind, aadl::TokKind::kColon);
  // find the => and the integer
  bool saw_fat = false, saw_int = false;
  for (const auto& t : toks) {
    if (t.kind == aadl::TokKind::kFatArrow) saw_fat = true;
    if (t.kind == aadl::TokKind::kInt) {
      saw_int = true;
      EXPECT_EQ(t.int_value, 12);
    }
  }
  EXPECT_TRUE(saw_fat);
  EXPECT_TRUE(saw_int);
}

TEST(Lexer, SkipsAadlComments) {
  aadl::Lexer lex("-- a comment line\nfoo -- trailing\nbar");
  auto toks = lex.tokenize();
  ASSERT_EQ(toks.size(), 3u);  // foo, bar, EOF
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "bar");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, ReportsBadCharacters) {
  aadl::Lexer lex("foo $ bar");
  lex.tokenize();
  EXPECT_FALSE(lex.error().empty());
  EXPECT_EQ(lex.error_line(), 1);
}

TEST(Parser, ParsesProcessTypeWithPorts) {
  aadl::Parser p(R"(
process Sensor
  features
    data_out : out event data port TempReading;
    cfg_in   : in data port Config;
end Sensor;
)");
  auto model = p.parse();
  ASSERT_TRUE(p.ok()) << p.diagnostics()[0].message;
  ASSERT_EQ(model.process_types.count("Sensor"), 1u);
  const auto& t = model.process_types.at("Sensor");
  ASSERT_EQ(t.ports.size(), 2u);
  EXPECT_EQ(t.ports[0].name, "data_out");
  EXPECT_EQ(t.ports[0].dir, aadl::PortDir::kOut);
  EXPECT_EQ(t.ports[0].kind, aadl::PortKind::kEventData);
  EXPECT_EQ(t.ports[0].data_type, "TempReading");
  EXPECT_EQ(t.ports[1].dir, aadl::PortDir::kIn);
  EXPECT_EQ(t.ports[1].kind, aadl::PortKind::kData);
}

TEST(Parser, ParsesImplementationProperties) {
  aadl::Parser p(R"(
process A
end A;
process implementation A.imp
  properties
    MKBAS::ac_id => 42;
    MKBAS::fork_quota => 3;
    MKBAS::may_kill => (x, y);
end A.imp;
)");
  auto model = p.parse();
  ASSERT_TRUE(p.ok()) << p.diagnostics()[0].message;
  const auto& impl = model.process_impls.at("A.imp");
  EXPECT_EQ(impl.ac_id, 42);
  EXPECT_EQ(impl.fork_quota, 3);
  EXPECT_EQ(impl.may_kill, (std::vector<std::string>{"x", "y"}));
}

TEST(Parser, ParsesSystemImplementation) {
  aadl::Parser p(R"(
system S end S;
system implementation S.impl
  subcomponents
    a : process A.imp;
    b : process B.imp;
  connections
    c1 : port a.out1 -> b.in1 { MKBAS::m_type => 5; };
    c2 : port b.out2 -> a.in2;
end S.impl;
)");
  auto model = p.parse();
  ASSERT_TRUE(p.ok()) << p.diagnostics()[0].message;
  const auto& sys = model.system_impls.at("S.impl");
  ASSERT_EQ(sys.subcomponents.size(), 2u);
  ASSERT_EQ(sys.connections.size(), 2u);
  EXPECT_EQ(sys.connections[0].m_type, 5);
  EXPECT_EQ(sys.connections[1].m_type, -1);  // unannotated
  EXPECT_EQ(sys.connections[0].src_comp, "a");
  EXPECT_EQ(sys.connections[0].dst_port, "in1");
}

TEST(Parser, ReportsSyntaxErrorsWithLines) {
  aadl::Parser p("process\nend X;");
  p.parse();
  ASSERT_FALSE(p.ok());
  EXPECT_GE(p.diagnostics()[0].line, 1);
}

TEST(Parser, RecoversAndContinuesAfterError) {
  aadl::Parser p(R"(
process 123garbage;
process Good
end Good;
)");
  auto model = p.parse();
  EXPECT_FALSE(p.ok());
  // The good declaration after the bad one still parses.
  EXPECT_EQ(model.process_types.count("Good"), 1u);
}

TEST(Parser, DetectsDuplicateDeclarations) {
  aadl::Parser p(R"(
process A
end A;
process A
end A;
)");
  p.parse();
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.diagnostics()[0].message.find("duplicate"), std::string::npos);
}

TEST(Parser, ScenarioModelParsesClean) {
  aadl::Parser p(aadl::temp_control_aadl());
  auto model = p.parse();
  ASSERT_TRUE(p.ok()) << p.diagnostics()[0].message;
  EXPECT_EQ(model.process_types.size(), 5u);
  EXPECT_EQ(model.process_impls.size(), 5u);
  ASSERT_EQ(model.system_impls.count("TempControl.impl"), 1u);
  const auto& sys = model.system_impls.at("TempControl.impl");
  EXPECT_EQ(sys.subcomponents.size(), 5u);
  EXPECT_EQ(sys.connections.size(), 5u);
}
