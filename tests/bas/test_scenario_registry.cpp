// The scenario registry (bas::make_scenario): every (platform, variant)
// pair the paper compares is constructible through the one factory, the
// unified Scenario interface exposes the right machine/plant/console, and
// unregistered pairs fail loudly instead of silently building the wrong
// thing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "bas/scenario.hpp"
#include "sim/machine.hpp"

namespace bas = mkbas::bas;
namespace sim = mkbas::sim;

using bas::Platform;

TEST(ScenarioRegistry, BuildsTempVariantOnEveryPlatform) {
  for (Platform p : {Platform::kMinix, Platform::kSel4, Platform::kLinux}) {
    sim::Machine m(7);
    auto sc = bas::make_scenario(m, p, "temp");
    ASSERT_NE(sc, nullptr) << bas::to_string(p);
    EXPECT_EQ(sc->platform(), p);
    EXPECT_STREQ(sc->variant(), "temp");
    EXPECT_EQ(&sc->machine(), &m);
    // Temperature variants expose a live plant through the interface.
    ASSERT_NE(sc->plant(), nullptr);
  }
}

TEST(ScenarioRegistry, EmptyVariantMeansTemp) {
  sim::Machine m(7);
  auto sc = bas::make_scenario(m, Platform::kMinix, "");
  ASSERT_NE(sc, nullptr);
  EXPECT_STREQ(sc->variant(), "temp");
}

TEST(ScenarioRegistry, BuildsThePlatformSpecificVariants) {
  {
    sim::Machine m(7);
    auto sc = bas::make_scenario(m, Platform::kLinux, "uds");
    ASSERT_NE(sc, nullptr);
    EXPECT_STREQ(sc->variant(), "uds");
    EXPECT_NE(sc->plant(), nullptr);
  }
  {
    sim::Machine m(7);
    auto sc = bas::make_scenario(m, Platform::kMinix, "bsl3");
    ASSERT_NE(sc, nullptr);
    EXPECT_STREQ(sc->variant(), "bsl3");
    // Containment has different physics: no temperature plant.
    EXPECT_EQ(sc->plant(), nullptr);
  }
}

TEST(ScenarioRegistry, UnregisteredPairThrows) {
  sim::Machine m(7);
  EXPECT_THROW(bas::make_scenario(m, Platform::kMinix, "uds"),
               std::invalid_argument);
  EXPECT_THROW(bas::make_scenario(m, Platform::kSel4, "no-such-variant"),
               std::invalid_argument);
}

TEST(ScenarioRegistry, VariantListingIsSortedPerPlatform) {
  const auto linux_variants = bas::scenario_variants(Platform::kLinux);
  ASSERT_GE(linux_variants.size(), 2u);
  EXPECT_TRUE(std::is_sorted(linux_variants.begin(), linux_variants.end()));
  bool has_temp = false;
  for (const auto& v : linux_variants) has_temp |= (v == "temp");
  EXPECT_TRUE(has_temp);
}

TEST(ScenarioRegistry, RuntimeRegistrationExtendsTheTable) {
  struct Probe {
    static std::unique_ptr<bas::Scenario> make(sim::Machine& m,
                                               const bas::ScenarioConfig&) {
      // Piggyback on a built-in: the registry only cares that the factory
      // signature matches.
      return bas::make_scenario(m, Platform::kLinux, "temp");
    }
  };
  bas::register_scenario(Platform::kLinux, "test-probe", &Probe::make);
  sim::Machine m(7);
  auto sc = bas::make_scenario(m, Platform::kLinux, "test-probe");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->platform(), Platform::kLinux);
}
