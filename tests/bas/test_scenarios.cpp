// End-to-end benign behaviour of the temperature-control scenario on all
// three platforms (the Fig. 2 workload): identical control behaviour is
// itself a claim of the paper's comparison.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

using core::Platform;

class BenignScenario : public ::testing::TestWithParam<Platform> {};

TEST_P(BenignScenario, ReachesAndHoldsSetpoint) {
  const auto run = core::run_benign(GetParam());
  ASSERT_FALSE(run.history.empty());
  // At t=9min (before the setpoint step) the room must sit near 22C.
  const mkbas::devices::PlantSample* at9 = nullptr;
  for (const auto& s : run.history) {
    if (s.time >= sim::minutes(9)) {
      at9 = &s;
      break;
    }
  }
  ASSERT_NE(at9, nullptr);
  EXPECT_NEAR(at9->true_temp_c, 22.0, 1.0);
}

TEST_P(BenignScenario, SetpointStepViaHttpTakesEffect) {
  const auto run = core::run_benign(GetParam());
  // The POST must be answered 200 ...
  bool post_ok = false;
  for (const auto& ex : run.http) {
    if (ex.request.method == "POST") {
      EXPECT_EQ(ex.response.status, 200);
      post_ok = ex.answered >= 0;
    }
  }
  EXPECT_TRUE(post_ok);
  // ... and the room must track the new 25C setpoint before the heater
  // failure at t=30min.
  const mkbas::devices::PlantSample* at29 = nullptr;
  for (const auto& s : run.history) {
    if (s.time >= sim::minutes(29)) {
      at29 = &s;
      break;
    }
  }
  ASSERT_NE(at29, nullptr);
  EXPECT_NEAR(at29->true_temp_c, 25.0, 1.0);
}

TEST_P(BenignScenario, HeaterFailureTriggersAlarmWithinTimeout) {
  const auto run = core::run_benign(GetParam());
  // Heater fails at t=30min; as the room drifts out of the band the alarm
  // must fire, and it must clear again after the repair at t=45min.
  sim::Time alarm_on_at = -1;
  for (const auto& s : run.history) {
    if (s.time > sim::minutes(30) && s.alarm_on) {
      alarm_on_at = s.time;
      break;
    }
  }
  ASSERT_GT(alarm_on_at, 0) << "alarm never fired after heater failure";
  EXPECT_LT(alarm_on_at, sim::minutes(45));
  EXPECT_FALSE(run.history.back().alarm_on) << "alarm did not clear";
  // The checker agrees the alarm property held throughout.
  EXPECT_FALSE(run.safety.alarm_violation);
  EXPECT_FALSE(run.safety.spurious_alarm);
  EXPECT_TRUE(run.safety.control_alive);
}

TEST_P(BenignScenario, StatusEndpointServesTelemetry) {
  const auto run = core::run_benign(GetParam());
  int answered = 0;
  for (const auto& ex : run.http) {
    if (ex.request.path == "/status" && ex.answered >= 0) {
      ++answered;
      EXPECT_EQ(ex.response.status, 200);
      EXPECT_NE(ex.response.body.find("temp="), std::string::npos);
      EXPECT_NE(ex.response.body.find("setpoint="), std::string::npos);
    }
  }
  EXPECT_GE(answered, 20);  // polled every 2min over 60min
}

TEST_P(BenignScenario, HeaterDutyCyclesRatherThanSticking) {
  const auto run = core::run_benign(GetParam());
  // Between minute 15 and 30 the plant regulates around 25C; the
  // bang-bang law must produce several on/off transitions. A platform
  // whose IPC stalled would show a stuck actuator instead.
  std::size_t transitions = 0;
  bool last = run.history.front().heater_on;
  for (const auto& s : run.history) {
    if (s.time < sim::minutes(15) || s.time > sim::minutes(30)) continue;
    if (s.heater_on != last) ++transitions;
    last = s.heater_on;
  }
  EXPECT_GE(transitions, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, BenignScenario,
                         ::testing::Values(Platform::kMinix, Platform::kSel4,
                                           Platform::kLinux),
                         [](const auto& info) {
                           switch (info.param) {
                             case Platform::kMinix:
                               return "Minix";
                             case Platform::kSel4:
                               return "Sel4";
                             case Platform::kLinux:
                               return "Linux";
                           }
                           return "Unknown";
                         });

TEST(BenignScenario, Sel4TimerPairTicksAlongside) {
  // The paper's two extra timer driver processes (§IV.B) run beside the
  // control loop over the seL4Notification connector without perturbing
  // it.
  mkbas::sim::Machine m;
  mkbas::bas::Sel4Scenario sc(m);
  m.run_until(sim::minutes(5));
  EXPECT_NEAR(static_cast<double>(sc.timer_ticks()), 300.0, 5.0);
  EXPECT_NEAR(sc.plant()->room.temperature_c(), 22.0, 1.5);
}

TEST(BenignScenario, PlatformsProduceComparableControlQuality) {
  const auto minix = core::run_benign(Platform::kMinix);
  const auto sel4 = core::run_benign(Platform::kSel4);
  const auto linux = core::run_benign(Platform::kLinux);
  // Same plant, same law, same workload: final temperatures agree.
  EXPECT_NEAR(minix.history.back().true_temp_c,
              sel4.history.back().true_temp_c, 0.8);
  EXPECT_NEAR(minix.history.back().true_temp_c,
              linux.history.back().true_temp_c, 0.8);
}

TEST(BenignScenario, LinuxSeparateAccountsAlsoWorksBenignly) {
  core::RunOptions opts;
  opts.linux_separate_accounts = true;
  const auto run = core::run_benign(Platform::kLinux, opts);
  EXPECT_TRUE(run.safety.control_alive);
  EXPECT_FALSE(run.safety.alarm_violation);
}

TEST(BenignScenario, MinixFsLogRecordsEnvironment) {
  // §IV.A: the control loop ends each iteration by writing environment
  // information to a log file — here via the user-mode FS server.
  mkbas::sim::Machine m;
  mkbas::bas::ScenarioConfig cfg;
  cfg.enable_fs_log = true;
  mkbas::bas::MinixScenario sc(m, cfg);
  m.run_until(sim::minutes(5));
  ASSERT_NE(sc.fs(), nullptr);
  const std::string* log = sc.fs()->contents("/var/log/tempctl.log");
  ASSERT_NE(log, nullptr);
  EXPECT_NE(log->find("temp="), std::string::npos);
  EXPECT_NE(log->find("sp=22.0"), std::string::npos);
  // Roughly one line per 1 Hz control cycle over five minutes.
  const auto lines = std::count(log->begin(), log->end(), '\n');
  EXPECT_GT(lines, 250);
  // Control quality is unaffected by the extra IPC.
  EXPECT_NEAR(sc.plant()->room.temperature_c(), 22.0, 1.0);
}

TEST(BenignScenario, MinixWithQuotasWorksBenignly) {
  core::RunOptions opts;
  opts.minix_quotas = true;
  const auto run = core::run_benign(Platform::kMinix, opts);
  EXPECT_TRUE(run.safety.control_alive);
  EXPECT_FALSE(run.safety.alarm_violation);
}
