#include "bas/web_logic.hpp"

#include <gtest/gtest.h>

namespace bas = mkbas::bas;
using bas::WebAction;

TEST(WebLogic, RoutesStatus) {
  const auto act = bas::route_request({"GET", "/status", ""});
  EXPECT_EQ(act.kind, WebAction::Kind::kStatus);
}

TEST(WebLogic, RoutesSetpointPost) {
  const auto act = bas::route_request({"POST", "/setpoint", "value=23.5"});
  EXPECT_EQ(act.kind, WebAction::Kind::kSetSetpoint);
  EXPECT_DOUBLE_EQ(act.setpoint_c, 23.5);
}

TEST(WebLogic, RejectsMalformedBody) {
  const auto act = bas::route_request({"POST", "/setpoint", "garbage"});
  EXPECT_EQ(act.kind, WebAction::Kind::kBadRequest);
  EXPECT_EQ(bas::route_request({"POST", "/setpoint", "value="}).kind,
            WebAction::Kind::kBadRequest);
}

TEST(WebLogic, UnknownPathIs404) {
  EXPECT_EQ(bas::route_request({"GET", "/admin", ""}).kind,
            WebAction::Kind::kNotFound);
  EXPECT_EQ(bas::route_request({"DELETE", "/status", ""}).kind,
            WebAction::Kind::kNotFound);
}

TEST(WebLogic, ParseFormValue) {
  EXPECT_DOUBLE_EQ(*bas::parse_form_value("value=19.25"), 19.25);
  EXPECT_DOUBLE_EQ(*bas::parse_form_value("other=1&value=-3"), -3.0);
  EXPECT_FALSE(bas::parse_form_value("nope").has_value());
}

TEST(WebLogic, StatusRendersAllFields) {
  bas::EnvInfo env{21.52, 22.0, true, false};
  const auto resp = bas::render_status(env);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "temp=21.5;setpoint=22.0;heater=on;alarm=off");
}

TEST(WebLogic, SetpointResultStatusCodes) {
  EXPECT_EQ(bas::render_setpoint_result(true).status, 200);
  EXPECT_EQ(bas::render_setpoint_result(false).status, 422);
  EXPECT_EQ(bas::render_unavailable().status, 503);
  EXPECT_EQ(bas::render_bad_request().status, 400);
  EXPECT_EQ(bas::render_not_found().status, 404);
}
