// BSL-3 containment scenario: benign operation, interlock behaviour, and
// the attack/ablation experiments (ACM-enforced vs legacy-permissive).
#include <gtest/gtest.h>

#include "bas/bsl3_scenario.hpp"
#include "bas/bsl3_sel4_scenario.hpp"

namespace bas = mkbas::bas;
namespace sim = mkbas::sim;
namespace minix = mkbas::minix;

using bas::Bsl3Policy;
using bas::Bsl3Scenario;

TEST(Bsl3, ReachesAndHoldsDesignPressure) {
  sim::Machine m;
  Bsl3Scenario sc(m);
  m.run_until(sim::minutes(20));
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(20));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.compromised()) << safety.summary();
  EXPECT_NEAR(sc.model().lab_pressure_pa(), -30.0, 3.0);
}

TEST(Bsl3, StatusEndpointReportsTelemetry) {
  sim::Machine m;
  Bsl3Scenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.http().submit(m.now(), {"GET", "/status", ""});
  });
  m.run_until(sim::minutes(11));
  bool seen = false;
  for (const auto& ex : sc.http().exchanges()) {
    if (ex.answered >= 0) {
      seen = true;
      EXPECT_EQ(ex.response.status, 200);
      EXPECT_NE(ex.response.body.find("lab=-"), std::string::npos);
      EXPECT_NE(ex.response.body.find("alarm=off"), std::string::npos);
    }
  }
  EXPECT_TRUE(seen);
}

TEST(Bsl3, DoorCycleWorksAndAutoCloses) {
  sim::Machine m;
  Bsl3Scenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.http().submit(m.now(), {"POST", "/door", "door=inner"});
  });
  m.run_until(sim::minutes(12));
  // Granted, opened, auto-closed after door_open_time.
  ASSERT_GE(sc.inner_door().transitions().size(), 2u);
  EXPECT_TRUE(sc.inner_door().transitions()[0].open);
  EXPECT_FALSE(sc.inner_door().transitions()[1].open);
  const auto dwell = sc.inner_door().transitions()[1].time -
                     sc.inner_door().transitions()[0].time;
  EXPECT_NEAR(static_cast<double>(dwell),
              static_cast<double>(sc.config().door_open_time),
              static_cast<double>(sim::sec(3)));
  EXPECT_FALSE(sc.inner_door().is_open());
}

TEST(Bsl3, InterlockRefusesSimultaneousDoors) {
  sim::Machine m;
  Bsl3Scenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.http().submit(m.now(), {"POST", "/door", "door=inner"});
  });
  m.at(sim::minutes(10) + sim::sec(2), [&] {
    sc.http().submit(m.now(), {"POST", "/door", "door=outer"});
  });
  m.run_until(sim::minutes(12));
  int granted = 0, refused = 0;
  for (const auto& ex : sc.http().exchanges()) {
    if (ex.response.status == 200 &&
        ex.response.body == "door released") {
      ++granted;
    }
    if (ex.response.status == 409) ++refused;
  }
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(refused, 1);
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(12));
  EXPECT_FALSE(safety.interlock_violation);
}

TEST(Bsl3, ExhaustFanFailureRaisesTheCriticalAlarm) {
  sim::Machine m;
  bas::Bsl3Config cfg;
  cfg.model.exhaust_max_flow = 1.4;
  Bsl3Scenario sc(m, cfg);
  // A damper failure floods the lab with corridor air at t=10min.
  m.at(sim::minutes(10), [&] { sc.model().set_fault_inflow(1.5); });
  m.run_until(sim::minutes(20));
  // Containment is physically lost (the fault overwhelms the fan)...
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(20));
  EXPECT_TRUE(safety.containment_breach);
  // ...but the alarm fired as specified: no silent failure.
  EXPECT_FALSE(safety.alarm_violation) << safety.summary();
  bool alarm_seen = false;
  for (const auto& s : sc.history()) {
    if (s.alarm_on) alarm_seen = true;
  }
  EXPECT_TRUE(alarm_seen);
}

namespace {

/// The §IV.D-style attack, retargeted at the containment suite: the
/// compromised management interface tries to stop the exhaust fan, spoof
/// pressure readings, command both doors, and kill the controller.
void bsl3_attack(Bsl3Scenario& sc, int* denials, int* deliveries) {
  auto& k = sc.kernel();
  auto& m = sc.machine();
  const minix::Endpoint ctl = sc.endpoint_of("contCtlProc");
  const minix::Endpoint fan = sc.endpoint_of("exhaustFanProc");
  const minix::Endpoint doors = sc.endpoint_of("doorCtlProc");
  const sim::Time until = m.now() + sim::minutes(10);
  while (m.now() < until) {
    minix::Message stop_fan;
    stop_fan.m_type = Bsl3Scenario::MTypes::kData;
    stop_fan.put_f64(0, 0.0);
    if (k.ipc_sendnb(fan, stop_fan) == minix::IpcResult::kOk) {
      ++*deliveries;
    } else {
      ++*denials;
    }
    minix::Message fake_pressure;
    fake_pressure.m_type = Bsl3Scenario::MTypes::kData;
    fake_pressure.put_f64(0, -35.0);  // "all is well"
    fake_pressure.put_f64(8, -15.0);
    if (k.ipc_sendnb(ctl, fake_pressure) == minix::IpcResult::kOk) {
      ++*deliveries;
    } else {
      ++*denials;
    }
    for (int door = 0; door < 2; ++door) {
      minix::Message open;
      open.m_type = Bsl3Scenario::MTypes::kData;
      open.put_i32(0, door);
      open.put_i32(4, 1);
      if (k.ipc_sendnb(doors, open) == minix::IpcResult::kOk) {
        ++*deliveries;
      } else {
        ++*denials;
      }
    }
    m.sleep_for(sim::msec(500));
  }
  k.pm_kill(ctl);
}

}  // namespace

TEST(Bsl3, AcmContainsACompromisedManagementInterface) {
  sim::Machine m;
  Bsl3Scenario sc(m);
  int denials = 0, deliveries = 0;
  sc.arm_mgmt_attack(sim::minutes(10), [&](Bsl3Scenario& s) {
    bsl3_attack(s, &denials, &deliveries);
  });
  m.run_until(sim::minutes(25));
  EXPECT_EQ(deliveries, 0);  // every injection dropped by the kernel
  EXPECT_GT(denials, 100);
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(25));
  EXPECT_FALSE(safety.compromised()) << safety.summary();
  EXPECT_TRUE(sc.kernel().is_live(sc.endpoint_of("contCtlProc")));
}

TEST(Bsl3Sel4, ReachesAndHoldsDesignPressure) {
  sim::Machine m;
  bas::Bsl3Sel4Scenario sc(m);
  m.run_until(sim::minutes(20));
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(20));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.compromised()) << safety.summary();
  EXPECT_NEAR(sc.model().lab_pressure_pa(), -30.0, 3.0);
}

TEST(Bsl3Sel4, DoorInterlockOverRpc) {
  sim::Machine m;
  bas::Bsl3Sel4Scenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.http().submit(m.now(), {"POST", "/door", "door=inner"});
    sc.http().submit(m.now(), {"POST", "/door", "door=outer"});
  });
  m.run_until(sim::minutes(12));
  int granted = 0, refused = 0;
  for (const auto& ex : sc.http().exchanges()) {
    if (ex.response.status == 200 && ex.response.body == "door released") {
      ++granted;
    }
    if (ex.response.status == 409) ++refused;
  }
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(refused, 1);
}

TEST(Bsl3Sel4, CompromisedMgmtHoldsOnlyItsTwoCaps) {
  // §IV.D.3 on the containment suite: the management component's brute
  // force finds exactly its two planned connection caps; it has no path
  // to the fan, the doors or the sensor, and containment holds.
  sim::Machine m;
  bas::Bsl3Sel4Scenario sc(m);
  int caps_found = -1;
  int foreign_calls_ok = 0;
  sc.arm_mgmt_attack(sim::minutes(10), [&](bas::Bsl3Sel4Scenario& s,
                                           mkbas::camkes::Runtime& rt) {
    caps_found = static_cast<int>(rt.enumerate_own_caps().size());
    mkbas::sel4::Sel4Msg stop_fan;
    stop_fan.push_f64(0.0);
    if (rt.rpc_call("fanCmd", stop_fan) == mkbas::sel4::Sel4Error::kOk) {
      ++foreign_calls_ok;
    }
    mkbas::sel4::Sel4Msg fake;
    fake.push_f64(-35.0);
    if (rt.rpc_call("presOut", fake) == mkbas::sel4::Sel4Error::kOk) {
      ++foreign_calls_ok;
    }
    (void)s;
  });
  m.run_until(sim::minutes(25));
  EXPECT_EQ(caps_found, 2);  // doorReq + envQuery
  EXPECT_EQ(foreign_calls_ok, 0);
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(25));
  EXPECT_FALSE(safety.compromised()) << safety.summary();
}

TEST(Bsl3, PermissivePolicyLosesContainment) {
  // Ablation: the same attack against a legacy flat controller (no ACM
  // isolation). The fan stops, the lab goes positive, the interlock is
  // bypassed, and the controller can be killed.
  sim::Machine m;
  Bsl3Scenario sc(m, {}, Bsl3Policy::kPermissive);
  int denials = 0, deliveries = 0;
  sc.arm_mgmt_attack(sim::minutes(10), [&](Bsl3Scenario& s) {
    bsl3_attack(s, &denials, &deliveries);
  });
  m.run_until(sim::minutes(25));
  EXPECT_GT(deliveries, 100);
  const auto safety = Bsl3Scenario::check_safety(
      sc.history(), m.trace(), sc.config(), sim::minutes(25));
  EXPECT_TRUE(safety.compromised());
  EXPECT_TRUE(safety.containment_breach) << safety.summary();
  EXPECT_TRUE(safety.interlock_violation);
  EXPECT_GT(safety.max_lab_pa, 0.0);  // positive pressure: air escapes
  EXPECT_FALSE(sc.kernel().is_live(sc.endpoint_of("contCtlProc")));
}
