// The Linux scenario over Unix domain sockets: benign equivalence with
// the message-queue transport, plus the socket-specific attack surfaces
// (§III and the misuse study [10]).
#include <gtest/gtest.h>

#include "bas/linux_scenario.hpp"
#include "bas/linux_uds_scenario.hpp"
#include "core/safety.hpp"

namespace bas = mkbas::bas;
namespace core = mkbas::core;
namespace sim = mkbas::sim;
namespace lx = mkbas::linuxsim;

using bas::LinuxUdsScenario;

namespace {

core::SafetyReport run_and_check(sim::Machine& m, LinuxUdsScenario& sc,
                                 sim::Time end) {
  m.run_until(end);
  return core::check_safety(sc.plant()->coupler->history(), m.trace(),
                            sc.config().control, end,
                            sc.config().sensor_period);
}

}  // namespace

TEST(LinuxUds, BenignControlMatchesTheMqueueTransport) {
  sim::Machine m;
  LinuxUdsScenario sc(m);
  m.at(sim::minutes(10), [&] {
    sc.http().submit(m.now(), {"POST", "/setpoint", "value=25.0"});
  });
  const auto safety = run_and_check(m, sc, sim::minutes(25));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.physically_compromised()) << safety.summary();
  EXPECT_NEAR(sc.plant()->room.temperature_c(), 25.0, 1.0);
}

TEST(LinuxUds, StatusWorksOverSockets) {
  sim::Machine m;
  LinuxUdsScenario sc(m);
  m.at(sim::minutes(8), [&] {
    sc.http().submit(m.now(), {"GET", "/status", ""});
  });
  m.run_until(sim::minutes(9));
  bool ok = false;
  for (const auto& ex : sc.http().exchanges()) {
    if (ex.answered >= 0 && ex.response.status == 200) {
      ok = true;
      EXPECT_NE(ex.response.body.find("temp="), std::string::npos);
    }
  }
  EXPECT_TRUE(ok);
}

TEST(LinuxUds, AbstractNamespaceWorksBenignly) {
  sim::Machine m;
  LinuxUdsScenario sc(m, {}, LinuxUdsScenario::Accounts::kShared,
                      LinuxUdsScenario::Namespace::kAbstract);
  const auto safety = run_and_check(m, sc, sim::minutes(15));
  EXPECT_TRUE(safety.control_alive);
  EXPECT_FALSE(safety.physically_compromised()) << safety.summary();
}

TEST(LinuxUds, SharedAccountSpoofCompromises) {
  // First simulation over sockets: the compromised web interface opens
  // its own connection to the control socket and streams fake readings;
  // nothing authenticates the sender.
  sim::Machine m;
  LinuxUdsScenario sc(m);
  sc.arm_web_attack(sim::minutes(12), [](LinuxUdsScenario& s) {
    auto& k = s.kernel();
    const int fd = s.connect_service(LinuxUdsScenario::kCtlSock,
                                     LinuxUdsScenario::kCtlAbstract);
    ASSERT_GE(fd, 0);
    const sim::Time until = s.machine().now() + sim::minutes(10);
    while (s.machine().now() < until) {
      k.sock_send(fd, bas::LinuxScenario::encode_temp(5.0), false);
      s.machine().sleep_for(sim::msec(200));
    }
  });
  const auto safety = run_and_check(m, sc, sim::minutes(32));
  EXPECT_TRUE(safety.physically_compromised()) << safety.summary();
  EXPECT_GT(safety.max_temp_c, 25.0);
}

TEST(LinuxUds, AclOnFilesystemSocketBlocksNonRootSpoof) {
  sim::Machine m;
  LinuxUdsScenario sc(m, {}, LinuxUdsScenario::Accounts::kSeparate);
  int attacker_fd = 0;
  sc.arm_web_attack(sim::minutes(12), [&](LinuxUdsScenario& s) {
    // The web account may connect to the control socket (it is a
    // legitimate client) — but NOT to the heater's.
    attacker_fd = s.kernel().sock_connect(LinuxUdsScenario::kHeaterSock);
  });
  const auto safety = run_and_check(m, sc, sim::minutes(20));
  EXPECT_EQ(attacker_fd, -static_cast<int>(lx::Errno::kEACCES));
  EXPECT_FALSE(safety.physically_compromised());
}

TEST(LinuxUds, RootConnectsToActuatorsAnyway) {
  sim::Machine m;
  LinuxUdsScenario sc(m, {}, LinuxUdsScenario::Accounts::kSeparate);
  int attacker_fd = -1;
  sc.arm_web_attack(sim::minutes(12), [&](LinuxUdsScenario& s) {
    s.kernel().exploit_escalate_to_root();
    attacker_fd = s.kernel().sock_connect(LinuxUdsScenario::kHeaterSock);
    if (attacker_fd >= 0) {
      const sim::Time until = s.machine().now() + sim::minutes(10);
      while (s.machine().now() < until) {
        s.kernel().sock_send(attacker_fd,
                             bas::LinuxScenario::encode_cmd(true), false);
        s.machine().sleep_for(sim::msec(200));
      }
    }
  });
  const auto safety = run_and_check(m, sc, sim::minutes(32));
  EXPECT_GE(attacker_fd, 0);
  EXPECT_TRUE(safety.physically_compromised()) << safety.summary();
}

TEST(LinuxUds, AbstractNameSquattingHijacksTheControlService) {
  // The [10] attack chain at scenario level: kill the control process
  // (same account), squat its abstract name, and impersonate it. The
  // sensor and web reconnect to the attacker; the real service cannot
  // even rebind.
  sim::Machine m;
  LinuxUdsScenario sc(m, {}, LinuxUdsScenario::Accounts::kShared,
                      LinuxUdsScenario::Namespace::kAbstract);
  int hijacked_messages = 0;
  sc.arm_web_attack(sim::minutes(12), [&](LinuxUdsScenario& s) {
    auto& k = s.kernel();
    // 1. Kill the real control process (allowed: same uid).
    ASSERT_EQ(k.sys_kill(s.pid_of("tempProc")), lx::Errno::kOk);
    // 2. Squat its well-known abstract name before anyone else.
    const int srv = k.sock_socket();
    ASSERT_EQ(k.sock_bind_abstract(srv, LinuxUdsScenario::kCtlAbstract),
              lx::Errno::kOk);
    ASSERT_EQ(k.sock_listen(srv, 8), lx::Errno::kOk);
    // 3. Impersonate: accept reconnecting clients, swallow their data,
    //    command nothing — the building is now uncontrolled.
    std::vector<int> victims;
    const sim::Time until = s.machine().now() + sim::minutes(15);
    while (s.machine().now() < until) {
      const int c = k.sock_accept(srv, /*blocking=*/false);
      if (c >= 0) victims.push_back(c);
      for (int fd : victims) {
        std::string msg;
        while (k.sock_recv(fd, &msg, false) == lx::Errno::kOk) {
          ++hijacked_messages;
        }
      }
      s.machine().sleep_for(sim::msec(200));
    }
  });
  const auto safety = run_and_check(m, sc, sim::minutes(35));
  EXPECT_GT(hijacked_messages, 100);  // the sensor now reports to the enemy
  EXPECT_FALSE(safety.control_alive);
  EXPECT_TRUE(safety.physically_compromised()) << safety.summary();
}
