#include "bas/control_law.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace bas = mkbas::bas;
namespace sim = mkbas::sim;

using bas::ControlConfig;
using bas::TempControlLogic;

TEST(ControlLaw, HeaterTurnsOnBelowBand) {
  TempControlLogic logic;
  const auto d = logic.on_sample(20.0, 0);  // sp 22, hyst 0.5
  EXPECT_TRUE(d.heater_on);
}

TEST(ControlLaw, HeaterTurnsOffAboveBand) {
  TempControlLogic logic;
  logic.on_sample(20.0, 0);
  const auto d = logic.on_sample(23.0, sim::sec(1));
  EXPECT_FALSE(d.heater_on);
}

TEST(ControlLaw, HysteresisHoldsStateInsideBand) {
  TempControlLogic logic;
  logic.on_sample(20.0, 0);  // heater on
  EXPECT_TRUE(logic.on_sample(22.2, sim::sec(1)).heater_on);  // hold
  logic.on_sample(23.0, sim::sec(2));  // off
  EXPECT_FALSE(logic.on_sample(21.8, sim::sec(3)).heater_on);  // hold
}

TEST(ControlLaw, AlarmTriggersAfterTimeout) {
  ControlConfig cfg;
  cfg.alarm_timeout = sim::minutes(5);
  TempControlLogic logic(cfg);
  // Temperature stuck far below the band.
  for (int s = 0; s <= 4 * 60; ++s) {
    EXPECT_FALSE(logic.on_sample(15.0, sim::sec(s)).alarm_on)
        << "alarm fired early at " << s << "s";
  }
  bool fired = false;
  for (int s = 4 * 60; s <= 6 * 60; ++s) {
    if (logic.on_sample(15.0, sim::sec(s)).alarm_on) {
      fired = true;
      EXPECT_GE(s, 5 * 60);
      break;
    }
  }
  EXPECT_TRUE(fired);
}

TEST(ControlLaw, AlarmClearsOnReentry) {
  ControlConfig cfg;
  cfg.alarm_timeout = sim::minutes(5);
  TempControlLogic logic(cfg);
  for (int s = 0; s <= 6 * 60; ++s) logic.on_sample(15.0, sim::sec(s));
  EXPECT_TRUE(logic.alarm_on());
  const auto d = logic.on_sample(22.0, sim::sec(7 * 60));
  EXPECT_FALSE(d.alarm_on);
}

TEST(ControlLaw, OutOfBandBlipDoesNotAlarm) {
  TempControlLogic logic;
  for (int min = 0; min < 20; ++min) {
    // 1 minute out of band, then back in: the timer must reset.
    logic.on_sample(15.0, sim::minutes(2 * min));
    EXPECT_FALSE(logic.on_sample(22.0, sim::minutes(2 * min + 1)).alarm_on);
  }
}

TEST(ControlLaw, SetpointWithinRangeAccepted) {
  TempControlLogic logic;
  EXPECT_TRUE(logic.try_set_setpoint(25.0, 0));
  EXPECT_DOUBLE_EQ(logic.setpoint(), 25.0);
}

TEST(ControlLaw, SetpointOutsideRangeRejected) {
  TempControlLogic logic;  // allowed range 15..30
  EXPECT_FALSE(logic.try_set_setpoint(45.0, 0));
  EXPECT_FALSE(logic.try_set_setpoint(5.0, 0));
  EXPECT_DOUBLE_EQ(logic.setpoint(), 22.0);  // unchanged
}

TEST(ControlLaw, SetpointChangeRestartsAlarmTimer) {
  ControlConfig cfg;
  cfg.alarm_timeout = sim::minutes(5);
  TempControlLogic logic(cfg);
  // 4 minutes out of band...
  for (int s = 0; s <= 4 * 60; ++s) logic.on_sample(15.0, sim::sec(s));
  // ...then the operator moves the setpoint: the settle timer restarts,
  // so the alarm must NOT fire at the 5-minute mark of the old episode.
  ASSERT_TRUE(logic.try_set_setpoint(16.0, sim::sec(4 * 60)));
  EXPECT_FALSE(logic.on_sample(15.0, sim::sec(5 * 60 + 30)).alarm_on);
}

TEST(ControlLaw, EnvReflectsState) {
  TempControlLogic logic;
  logic.on_sample(20.0, 0);
  const auto env = logic.env();
  EXPECT_DOUBLE_EQ(env.last_temp_c, 20.0);
  EXPECT_DOUBLE_EQ(env.setpoint_c, 22.0);
  EXPECT_TRUE(env.heater_on);
  EXPECT_FALSE(env.alarm_on);
}

// Property sweep: for any temperature sequence, alarm_on implies the last
// `alarm_timeout` of samples were out of band.
class ControlLawProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ControlLawProperty, AlarmImpliesSustainedOutOfBand) {
  mkbas::sim::Rng rng(GetParam());
  ControlConfig cfg;
  cfg.alarm_timeout = sim::minutes(5);
  TempControlLogic logic(cfg);
  std::vector<std::pair<sim::Time, double>> samples;
  double t = 18.0;
  for (int s = 0; s < 3600; ++s) {
    t += (rng.next_double() - 0.48) * 0.3;  // slow random walk, drifts up
    const sim::Time now = sim::sec(s);
    const auto d = logic.on_sample(t, now);
    samples.push_back({now, t});
    if (d.alarm_on) {
      // Every sample in the last alarm_timeout must be out of band.
      for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
        if (now - it->first > cfg.alarm_timeout) break;
        EXPECT_GT(std::abs(it->second - logic.setpoint()),
                  cfg.alarm_tolerance_c)
            << "alarm on but sample at " << it->first << " was in band";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlLawProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9999u));
