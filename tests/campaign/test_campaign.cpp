#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/pool.hpp"
#include "fault/fault.hpp"

namespace campaign = mkbas::campaign;
namespace core = mkbas::core;
namespace sim = mkbas::sim;

// ---- WorkStealingPool ----

TEST(Pool, RunsEveryIndexExactlyOnce) {
  campaign::WorkStealingPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Pool, SingleWorkerRunsInOrderInline) {
  campaign::WorkStealingPool pool(1);
  std::vector<std::size_t> order;  // safe: no threads with one worker
  pool.run(10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(Pool, FewerItemsThanWorkersAndZeroItems) {
  campaign::WorkStealingPool pool(8);
  std::atomic<int> ran{0};
  pool.run(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.run(3, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(Pool, NonPositiveWorkerCountClampsToOne) {
  campaign::WorkStealingPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  std::atomic<int> ran{0};
  pool.run(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(Pool, FirstExceptionPropagatesAfterAllIndicesRan) {
  campaign::WorkStealingPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(100,
               [&](std::size_t i) {
                 ran.fetch_add(1);
                 if (i == 17) throw std::runtime_error("cell 17 blew up");
               }),
      std::runtime_error);
  // The contract: remaining queued indices still execute.
  EXPECT_EQ(ran.load(), 100);
}

// ---- Cell builders ----

TEST(Campaign, SeedSweepCellsAreUniquelyNamedAndSeeded) {
  const auto cells = core::seed_sweep_cells(core::Platform::kMinix, {}, 7, 5);
  ASSERT_EQ(cells.size(), 5u);
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& c : cells) {
    EXPECT_EQ(c.kind, core::CellKind::kBenign);
    names.insert(c.name);
    seeds.insert(c.opts.seed);
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(seeds.size(), 5u);
  EXPECT_EQ(*seeds.begin(), 7u);
}

TEST(Campaign, AttackMatrixCellsCoverAllThreePlatforms) {
  const auto cells = core::attack_matrix_cells();
  std::set<core::Platform> platforms;
  for (const auto& c : cells) {
    EXPECT_EQ(c.kind, core::CellKind::kAttack);
    platforms.insert(c.platform);
  }
  EXPECT_EQ(platforms.size(), 3u);
}

// ---- Determinism: parallel == sequential, byte for byte ----

namespace {

core::RunOptions short_fault_opts() {
  core::RunOptions opts;
  opts.settle = sim::minutes(1);
  opts.post = sim::minutes(2);
  opts.seed = 42;
  opts.scenario.room.initial_temp_c = opts.scenario.control.initial_setpoint_c;
  return opts;
}

}  // namespace

TEST(Campaign, ParallelFaultCampaignIsByteIdenticalToSequential) {
  const auto cells = core::fault_campaign_cells(
      mkbas::fault::reference_sensor_crash_plan(), short_fault_opts(),
      sim::sec(70));
  ASSERT_EQ(cells.size(), 3u);

  const auto seq = core::run_campaign(cells, 1);
  const auto par = core::run_campaign(cells, 4);
  ASSERT_EQ(seq.cells.size(), par.cells.size());

  // Cell-level artifacts first (pinpoints a divergence), then the merged
  // reductions, then the full summaries.
  for (std::size_t i = 0; i < seq.cells.size(); ++i) {
    EXPECT_EQ(seq.cells[i].name, par.cells[i].name);
    EXPECT_EQ(seq.cells[i].trace_hash, par.cells[i].trace_hash) << cells[i].name;
    EXPECT_EQ(seq.cells[i].trace_events, par.cells[i].trace_events);
    EXPECT_EQ(seq.cells[i].metrics_json, par.cells[i].metrics_json)
        << cells[i].name;
  }
  EXPECT_EQ(seq.merged_trace_hash, par.merged_trace_hash);
  EXPECT_EQ(seq.merged_metrics_json, par.merged_metrics_json);
  EXPECT_EQ(seq.summary_json(), par.summary_json());

  // And the campaign reproduced the paper's story: the microkernels
  // recover, and every cell actually simulated something.
  const auto rows = core::fault_rows(seq);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& c : seq.cells) {
    EXPECT_GT(c.trace_events, 0u) << c.name;
    ASSERT_TRUE(c.metrics != nullptr);
  }
}

TEST(Campaign, RepeatedRunsYieldIdenticalSummaries) {
  // Same cells, same jobs value, fresh engine: the summary must be stable
  // run to run (no wall-clock, pointers or thread ids may leak in).
  const auto cells =
      core::seed_sweep_cells(core::Platform::kMinix, {}, 1, 2);
  const auto a = core::run_campaign(cells, 2);
  const auto b = core::run_campaign(cells, 2);
  EXPECT_EQ(a.summary_json(), b.summary_json());
  EXPECT_EQ(a.merged_trace_hash, b.merged_trace_hash);
}
