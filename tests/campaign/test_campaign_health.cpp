// Health monitoring across the fabric and the campaign engine: a flood
// attack must trip the flooded node's inbox-overflow surge detector and
// land a health.anomaly record in the merged audit journal *before* the
// end-of-run attack verdicts; every health/flight artifact must replay
// byte-identically from (topology, seed) and stay --jobs invariant; and
// the work-stealing pool's profiler must attribute every cell to a
// worker (host wall time, diagnostic only — never part of summary_json).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../obs/json_lite.hpp"
#include "campaign/campaign.hpp"
#include "core/fabric_run.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

namespace {

core::FabricOptions flood_building() {
  core::FabricOptions opts;
  opts.zones = 3;
  opts.seed = 7;
  opts.duration = sim::minutes(4);
  opts.attack = core::FabricAttack::kFlood;
  opts.attack_at = sim::minutes(2);
  return opts;
}

std::vector<core::CampaignCell> health_cells() {
  std::vector<core::CampaignCell> cells;

  core::CampaignCell fab;
  fab.name = "fabric/flood/z3";
  fab.kind = core::CellKind::kFabric;
  fab.fabric = flood_building();
  cells.push_back(fab);

  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(60);
  for (const auto& cell :
       core::seed_sweep_cells(core::Platform::kMinix, opts, 11, 2)) {
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

TEST(FabricHealth, FloodTripsTheOverflowSurgeBeforeTheVerdict) {
  const core::FabricRunResult res = core::run_fabric(flood_building());

  // The 30 s flood overwhelms the head-end inbox; the per-node rate
  // signal's surge threshold (256 overflows per 5 s window) trips while
  // the flood is still running.
  EXPECT_GT(res.drop_overflow, 0u);
  ASSERT_GT(res.health_events, 0u);
  ASSERT_TRUE(jsonlite::valid(res.health_json)) << res.health_json;
  EXPECT_NE(res.health_json.find("net.inbox_overflow"), std::string::npos);
  EXPECT_NE(res.health_json.find("\"surge\""), std::string::npos);

  // The detector firing pulled a flight-recorder snapshot.
  ASSERT_TRUE(jsonlite::valid(res.flight_json)) << res.flight_json;
  EXPECT_NE(res.flight_json.find("health.net.inbox_overflow"),
            std::string::npos);

  // Detection precedes judgment: the surge's audit record is journaled
  // during the run, the per-zone verdicts only at opts.duration.
  const std::size_t anomaly = res.audit_json.find("health.anomaly");
  const std::size_t verdict = res.audit_json.find("attack.verdict");
  ASSERT_NE(anomaly, std::string::npos);
  ASSERT_NE(verdict, std::string::npos);
  EXPECT_LT(anomaly, verdict);
}

TEST(FabricHealth, HundredZoneTreeFloodTripsTheFloorSurgeFirst) {
  // City-scale shape: 100 gateway-only zones over 4 floor head-ends. The
  // flood now aims at the attacker's *floor* aggregator — segmentation
  // keeps the blast radius to one floor — and that floor's own
  // inbox-overflow surge detector must fire during the run, ahead of the
  // end-of-run attack verdicts.
  core::FabricOptions opts;
  opts.zones = 100;
  opts.topology = mkbas::net::TopologySpec::Kind::kTree;
  opts.floors = 4;
  opts.seed = 21;
  opts.duration = sim::minutes(4);
  opts.attack = core::FabricAttack::kFlood;
  opts.attack_at = sim::minutes(2);
  opts.lite_zones = true;
  const core::FabricRunResult res = core::run_fabric(opts);

  EXPECT_EQ(res.topology, "tree");
  EXPECT_EQ(res.nodes, 1 + 4 + 100);
  EXPECT_GT(res.drop_overflow, 0u);
  EXPECT_EQ(res.causality_violations, 0u);
  ASSERT_GT(res.health_events, 0u);
  ASSERT_TRUE(jsonlite::valid(res.health_json)) << res.health_json;
  EXPECT_NE(res.health_json.find("net.inbox_overflow"), std::string::npos);
  EXPECT_NE(res.health_json.find("\"surge\""), std::string::npos);

  // Detection precedes judgment, same invariant as the 3-zone building.
  const std::size_t anomaly = res.audit_json.find("health.anomaly");
  const std::size_t verdict = res.audit_json.find("attack.verdict");
  ASSERT_NE(anomaly, std::string::npos);
  ASSERT_NE(verdict, std::string::npos);
  EXPECT_LT(anomaly, verdict);

  // The flood stayed on the attacker's floor: the building console kept
  // receiving its aggregate telemetry (every floor flushed upstream).
  EXPECT_GT(res.floor_covs, 0u);
  EXPECT_GT(res.cov_count, res.floor_covs);
}

TEST(FabricHealth, ObservabilityArtifactsReplayByteIdentically) {
  const core::FabricRunResult one = core::run_fabric(flood_building());
  const core::FabricRunResult two = core::run_fabric(flood_building());
  ASSERT_FALSE(one.series_json.empty());
  EXPECT_EQ(one.series_json, two.series_json);
  EXPECT_EQ(one.health_json, two.health_json);
  EXPECT_EQ(one.flight_json, two.flight_json);
  EXPECT_EQ(one.health_events, two.health_events);
  ASSERT_TRUE(jsonlite::valid(one.series_json)) << one.series_json;
  EXPECT_NE(one.series_json.find("\"schema_version\":"), std::string::npos);
}

TEST(FabricHealth, TraceOffArmStaysQuiet) {
  core::FabricOptions opts = flood_building();
  opts.trace_spans = false;
  const core::FabricRunResult res = core::run_fabric(opts);
  // The A/B baseline arm records no health events and keeps no
  // snapshots, so the perf comparison against trace-on stays clean.
  EXPECT_EQ(res.health_events, 0u);
  EXPECT_NE(res.flight_json.find("\"snapshots\":[]"), std::string::npos);
}

TEST(CampaignHealth, MergedHealthArtifactsAreJobsInvariant) {
  const std::vector<core::CampaignCell> cells = health_cells();
  const core::CampaignResult seq = core::run_campaign(cells, 1);
  const core::CampaignResult par = core::run_campaign(cells, 4);

  ASSERT_FALSE(seq.merged_health_json.empty());
  EXPECT_EQ(seq.merged_series_json, par.merged_series_json);
  EXPECT_EQ(seq.merged_health_json, par.merged_health_json);
  EXPECT_EQ(seq.merged_flight_json, par.merged_flight_json);
  EXPECT_EQ(seq.summary_json(), par.summary_json());

  // The merge really carries the building: the flood cell's surge and
  // the benign cells' control-loop series are all present.
  EXPECT_NE(seq.merged_health_json.find("net.inbox_overflow"),
            std::string::npos);
  EXPECT_NE(seq.merged_series_json.find("minix.ctl.jitter"),
            std::string::npos);
  EXPECT_NE(seq.summary_json().find("\"health_events\":"),
            std::string::npos);
  EXPECT_NE(seq.summary_json().find("\"schema_version\":"),
            std::string::npos);
  ASSERT_TRUE(jsonlite::valid(seq.summary_json())) << seq.summary_json();
}

TEST(CampaignHealth, BenignCellSnapshotsControlLoopSeries) {
  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(60);
  const auto cells =
      core::seed_sweep_cells(core::Platform::kMinix, opts, 3, 1);
  const core::CampaignResult res = core::run_campaign(cells, 1);
  ASSERT_EQ(res.cells.size(), 1u);
  const core::CellResult& cell = res.cells[0];
  ASSERT_TRUE(cell.series);
  EXPECT_GT(cell.series->total_samples(), 0u);
  EXPECT_NE(cell.series_json.find("minix.ctl.jitter@m0"),
            std::string::npos);
  ASSERT_TRUE(jsonlite::valid(cell.health_json)) << cell.health_json;
  EXPECT_NE(cell.health_json.find("\"scores\""), std::string::npos);
}

TEST(CampaignHealth, PoolProfileAttributesEveryCell) {
  const std::vector<core::CampaignCell> cells = health_cells();
  const int jobs = 2;
  const core::CampaignResult res = core::run_campaign(cells, jobs);

  ASSERT_EQ(res.cell_profiles.size(), cells.size());
  std::uint64_t executed = 0;
  for (const auto& cp : res.cell_profiles) {
    EXPECT_GE(cp.worker, 0);
    EXPECT_LT(cp.worker, jobs);
    EXPECT_GE(cp.end_seconds, cp.start_seconds);
  }
  ASSERT_EQ(res.worker_profiles.size(), static_cast<std::size_t>(jobs));
  for (const auto& wp : res.worker_profiles) executed += wp.executed;
  EXPECT_EQ(executed, cells.size());

  const std::string profile = res.profile_json();
  ASSERT_TRUE(jsonlite::valid(profile)) << profile;
  EXPECT_NE(profile.find("\"schema_version\":"), std::string::npos);
  EXPECT_NE(profile.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(profile.find("fabric/flood/z3"), std::string::npos);

  const std::string trace = res.profile_trace_json();
  ASSERT_TRUE(jsonlite::valid(trace)) << trace;
  EXPECT_NE(trace.find("pool-worker"), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}
