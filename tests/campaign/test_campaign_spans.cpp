// Parallel-merge lock-down for the causal exports: a 16-zone fabric
// building (plus attack cells for a multi-cell reduction) must produce
// byte-identical merged span stores and audit journals for any --jobs
// value — completion order must never leak into the artifacts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace core = mkbas::core;
namespace sim = mkbas::sim;

namespace {

std::vector<core::CampaignCell> span_cells() {
  std::vector<core::CampaignCell> cells;

  core::CampaignCell fab;
  fab.name = "fabric/spoof/z16";
  fab.kind = core::CellKind::kFabric;
  fab.fabric.zones = 16;
  fab.fabric.seed = 5;
  fab.fabric.duration = sim::minutes(5);
  fab.fabric.attack = core::FabricAttack::kSpoofWrite;
  fab.fabric.attack_at = sim::minutes(2);
  cells.push_back(fab);

  core::RunOptions opts;
  opts.settle = sim::sec(45);
  opts.post = sim::sec(60);
  opts.seed = 9;
  for (core::Platform p :
       {core::Platform::kMinix, core::Platform::kSel4,
        core::Platform::kLinux}) {
    core::CampaignCell c;
    c.name = std::string("attack/kill/") + core::to_string(p);
    c.kind = core::CellKind::kAttack;
    c.platform = p;
    c.opts = opts;
    c.attack_kind = mkbas::attack::AttackKind::kKillControl;
    c.privilege = mkbas::attack::Privilege::kCodeExec;
    cells.push_back(c);
  }
  return cells;
}

TEST(CampaignSpans, SixteenZoneFabricMergeIsJobsInvariant) {
  const std::vector<core::CampaignCell> cells = span_cells();
  const core::CampaignResult seq = core::run_campaign(cells, 1);
  const core::CampaignResult par = core::run_campaign(cells, 4);

  ASSERT_FALSE(seq.merged_spans_json.empty());
  EXPECT_EQ(seq.merged_spans_json, par.merged_spans_json);
  EXPECT_EQ(seq.merged_audit_json, par.merged_audit_json);
  EXPECT_EQ(seq.summary_json(), par.summary_json());

  // The merged store really carries the building: network link hops
  // from the fabric cell and the attack span from the kill cells.
  EXPECT_NE(seq.merged_spans_json.find("net.link"), std::string::npos);
  EXPECT_NE(seq.merged_spans_json.find("web.compromised"),
            std::string::npos);
  EXPECT_NE(seq.merged_audit_json.find("acm.kill_deny"),
            std::string::npos);
}

}  // namespace
