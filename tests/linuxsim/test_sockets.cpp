// Unix domain sockets: the other Unix IPC the paper discusses (§III),
// including the abstract-namespace hazard behind the CVEs it cites [10].
#include <gtest/gtest.h>

#include "linuxsim/kernel.hpp"

namespace lx = mkbas::linuxsim;
namespace sim = mkbas::sim;

using lx::Errno;
using lx::LinuxKernel;
using lx::Mode;

TEST(UnixSockets, ConnectAcceptSendRecvRoundTrip) {
  sim::Machine m;
  LinuxKernel k(m);
  std::string got_at_server, got_at_client;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/ctl.sock", Mode::rw_everyone()),
              Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    const int c = k.sock_accept(s);
    ASSERT_GE(c, 0);
    ASSERT_EQ(k.sock_recv(c, &got_at_server), Errno::kOk);
    ASSERT_EQ(k.sock_send(c, "pong"), Errno::kOk);
  });
  k.spawn_process("client", 2000, [&] {
    m.sleep_for(sim::msec(5));
    const int c = k.sock_connect("/run/ctl.sock");
    ASSERT_GE(c, 0);
    ASSERT_EQ(k.sock_send(c, "ping"), Errno::kOk);
    ASSERT_EQ(k.sock_recv(c, &got_at_client), Errno::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(got_at_server, "ping");
  EXPECT_EQ(got_at_client, "pong");
}

TEST(UnixSockets, FilesystemNamespaceChecksPermissions) {
  sim::Machine m;
  LinuxKernel k(m);
  int outsider_fd = 0;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/private.sock", Mode::rw_owner_only()),
              Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("outsider", 2000, [&] {
    m.sleep_for(sim::msec(5));
    outsider_fd = k.sock_connect("/run/private.sock");
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(outsider_fd, -static_cast<int>(Errno::kEACCES));
  EXPECT_GE(m.trace().count_tag("uds.connect_deny"), 1u);
}

TEST(UnixSockets, RootConnectsAnywhere) {
  sim::Machine m;
  LinuxKernel k(m);
  int fd = -1;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/private.sock", Mode::rw_owner_only()),
              Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("attacker", 2000, [&] {
    m.sleep_for(sim::msec(5));
    k.exploit_escalate_to_root();
    fd = k.sock_connect("/run/private.sock");
  });
  m.run_until(sim::sec(2));
  EXPECT_GE(fd, 0);
}

TEST(UnixSockets, AbstractNamespaceHasNoPermissionCheck) {
  sim::Machine m;
  LinuxKernel k(m);
  int fd = -1;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind_abstract(s, "ctl-service"), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("anyone", 4321, [&] {
    m.sleep_for(sim::msec(5));
    fd = k.sock_connect_abstract("ctl-service");  // no uid, no mode, no ACL
  });
  m.run_until(sim::sec(2));
  EXPECT_GE(fd, 0);
}

TEST(UnixSockets, AbstractNameSquattingHijacksTheService) {
  // The CVE pattern from the paper's [10]: a malicious process binds the
  // well-known abstract name before the real service does; clients then
  // talk to the attacker, and the legitimate service cannot even bind.
  sim::Machine m;
  LinuxKernel k(m);
  Errno service_bind = Errno::kOk;
  std::string attacker_received;
  lx::Uid client_talked_to = -1;
  k.spawn_process("attacker", 6666, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind_abstract(s, "ctl-service"), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    const int c = k.sock_accept(s);
    ASSERT_GE(c, 0);
    k.sock_recv(c, &attacker_received);
    k.sock_send(c, "ok, trust me");
  });
  k.spawn_process("real-service", 1000, [&] {
    m.sleep_for(sim::msec(5));
    const int s = k.sock_socket();
    service_bind = k.sock_bind_abstract(s, "ctl-service");
  });
  k.spawn_process("client", 1000, [&] {
    m.sleep_for(sim::msec(10));
    const int c = k.sock_connect_abstract("ctl-service");
    ASSERT_GE(c, 0);
    ASSERT_EQ(k.sock_send(c, "setpoint=45.0"), Errno::kOk);
    std::string reply;
    k.sock_recv(c, &reply);
    client_talked_to = k.sock_peer_uid(c);  // valid once accepted
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(service_bind, Errno::kEEXIST);    // service locked out
  EXPECT_EQ(attacker_received, "setpoint=45.0");  // command intercepted
  EXPECT_EQ(client_talked_to, 6666);  // SO_PEERCRED would reveal it...
  // ...but only if the client checks — which the vulnerable apps in the
  // cited study did not.
}

TEST(UnixSockets, PeerCredentialsAreKernelProvided) {
  sim::Machine m;
  LinuxKernel k(m);
  lx::Uid seen_by_server = -1, seen_by_client = -1;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    const int c = k.sock_accept(s);
    ASSERT_GE(c, 0);
    seen_by_server = k.sock_peer_uid(c);
    std::string msg;
    k.sock_recv(c, &msg);
  });
  k.spawn_process("client", 2000, [&] {
    m.sleep_for(sim::msec(5));
    const int c = k.sock_connect("/run/s");
    ASSERT_GE(c, 0);
    m.sleep_for(sim::msec(5));  // let the server accept
    seen_by_client = k.sock_peer_uid(c);
    k.sock_send(c, "x");
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(seen_by_server, 2000);
  EXPECT_EQ(seen_by_client, 1000);
}

TEST(UnixSockets, RecvOnClosedPeerReturnsEof) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno r = Errno::kOk;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    const int c = k.sock_accept(s);
    ASSERT_GE(c, 0);
    k.sock_close(c);  // immediate close
  });
  k.spawn_process("client", 1000, [&] {
    m.sleep_for(sim::msec(5));
    const int c = k.sock_connect("/run/s");
    ASSERT_GE(c, 0);
    m.sleep_for(sim::msec(20));
    std::string out;
    r = k.sock_recv(c, &out);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(r, Errno::kEOF);
}

TEST(UnixSockets, SendAfterPeerCloseIsEpipe) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno r = Errno::kOk;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    const int c = k.sock_accept(s);
    ASSERT_GE(c, 0);
    k.sock_close(c);
  });
  k.spawn_process("client", 1000, [&] {
    m.sleep_for(sim::msec(5));
    const int c = k.sock_connect("/run/s");
    ASSERT_GE(c, 0);
    m.sleep_for(sim::msec(20));
    r = k.sock_send(c, "into the void");
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(r, Errno::kEPIPE);
}

TEST(UnixSockets, BacklogBoundsPendingConnections) {
  sim::Machine m;
  LinuxKernel k(m);
  int refused = 0;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s, /*backlog=*/2), Errno::kOk);
    m.sleep_for(sim::sec(1));  // never accepts
  });
  k.spawn_process("flood", 2000, [&] {
    m.sleep_for(sim::msec(5));
    for (int i = 0; i < 5; ++i) {
      if (k.sock_connect("/run/s") == -static_cast<int>(Errno::kECONNREFUSED)) {
        ++refused;
      }
    }
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(refused, 3);
}

TEST(UnixSockets, ConnectToNonListeningSocketRefused) {
  sim::Machine m;
  LinuxKernel k(m);
  int fd = 0;
  k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    // bound but never listening
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("client", 1000, [&] {
    m.sleep_for(sim::msec(5));
    fd = k.sock_connect("/run/s");
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(fd, -static_cast<int>(Errno::kECONNREFUSED));
}

TEST(UnixSockets, DoubleBindOnFilesystemPathFails) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno second = Errno::kOk;
  k.spawn_process("a", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("b", 1000, [&] {
    m.sleep_for(sim::msec(5));
    const int s = k.sock_socket();
    second = k.sock_bind(s, "/run/s", Mode::rw_everyone());
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(second, Errno::kEEXIST);
}

TEST(UnixSockets, ListenerDeathUnblocksAcceptors) {
  sim::Machine m;
  LinuxKernel k(m);
  bool unblocked = false;
  const int pid = k.spawn_process("server", 1000, [&] {
    const int s = k.sock_socket();
    ASSERT_EQ(k.sock_bind(s, "/run/s", Mode::rw_everyone()), Errno::kOk);
    ASSERT_EQ(k.sock_listen(s), Errno::kOk);
    k.sock_accept(s);  // blocks; killed while waiting
    unblocked = true;  // must NOT run (KilledError unwinds)
  });
  m.at(sim::msec(10), [&] { m.kill(m.find_process(pid)); });
  m.run_until(sim::sec(1));
  EXPECT_FALSE(unblocked);
  EXPECT_FALSE(k.is_alive(pid));
  // The name is released: a new service can bind it.
  bool rebound = false;
  k.spawn_process("successor", 1000, [&] {
    const int s = k.sock_socket();
    rebound = (k.sock_bind(s, "/run/s", Mode::rw_everyone()) == Errno::kOk);
  });
  m.run_until(sim::sec(2));
  EXPECT_TRUE(rebound);
}
