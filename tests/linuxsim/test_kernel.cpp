#include "linuxsim/kernel.hpp"

#include <gtest/gtest.h>

namespace lx = mkbas::linuxsim;
namespace sim = mkbas::sim;

using lx::Errno;
using lx::LinuxKernel;
using lx::Mode;
using lx::MqMessage;

TEST(LinuxKernel, SpawnAssignsUid) {
  sim::Machine m;
  LinuxKernel k(m);
  int seen_uid = -1;
  k.spawn_process("app", 1000, [&] { seen_uid = k.getuid(); });
  m.run();
  EXPECT_EQ(seen_uid, 1000);
}

TEST(LinuxKernel, ForkInheritsUid) {
  sim::Machine m;
  LinuxKernel k(m);
  int child_uid = -1;
  k.spawn_process("parent", 1000, [&] {
    k.fork_process("child", [&] { child_uid = k.getuid(); });
  });
  m.run();
  EXPECT_EQ(child_uid, 1000);
}

TEST(LinuxKernel, MqSendReceiveRoundTrip) {
  sim::Machine m;
  LinuxKernel k(m);
  std::string got;
  k.spawn_process("recv", 1000, [&] {
    const int fd = k.mq_open("/q", true, Mode::rw_everyone());
    ASSERT_GE(fd, 0);
    MqMessage msg;
    ASSERT_EQ(k.mq_receive(fd, msg), Errno::kOk);
    got = msg.data;
  });
  k.spawn_process("send", 1000, [&] {
    m.sleep_for(sim::msec(1));
    const int fd = k.mq_open("/q", true, Mode::rw_everyone());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(k.mq_send(fd, {"hello", 0}), Errno::kOk);
  });
  m.run();
  EXPECT_EQ(got, "hello");
}

TEST(LinuxKernel, MqPriorityOrdering) {
  sim::Machine m;
  LinuxKernel k(m);
  std::vector<std::string> order;
  k.spawn_process("p", 1000, [&] {
    const int fd = k.mq_open("/q", true, Mode::rw_owner_only());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(k.mq_send(fd, {"low1", 1}), Errno::kOk);
    ASSERT_EQ(k.mq_send(fd, {"high", 9}), Errno::kOk);
    ASSERT_EQ(k.mq_send(fd, {"low2", 1}), Errno::kOk);
    MqMessage msg;
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(k.mq_receive(fd, msg), Errno::kOk);
      order.push_back(msg.data);
    }
  });
  m.run();
  EXPECT_EQ(order, (std::vector<std::string>{"high", "low1", "low2"}));
}

TEST(LinuxKernel, MqBlocksWhenFullAndWakes) {
  sim::Machine m;
  LinuxKernel k(m);
  bool second_send_done = false;
  k.spawn_process("producer", 1000, [&] {
    const int fd = k.mq_open("/q", true, Mode::rw_owner_only(), /*maxmsg=*/1);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(k.mq_send(fd, {"a", 0}), Errno::kOk);
    ASSERT_EQ(k.mq_send(fd, {"b", 0}), Errno::kOk);  // blocks until drained
    second_send_done = true;
  });
  k.spawn_process("consumer", 1000, [&] {
    m.sleep_for(sim::msec(5));
    const int fd = k.mq_open("/q", true, Mode::rw_owner_only(), 1);
    ASSERT_GE(fd, 0);
    MqMessage msg;
    ASSERT_EQ(k.mq_receive(fd, msg), Errno::kOk);
    ASSERT_EQ(k.mq_receive(fd, msg), Errno::kOk);
  });
  m.run();
  EXPECT_TRUE(second_send_done);
}

TEST(LinuxKernel, NonBlockingVariantsReturnEagain) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno recv_r = Errno::kOk, send_r = Errno::kOk;
  k.spawn_process("p", 1000, [&] {
    const int fd = k.mq_open("/q", true, Mode::rw_owner_only(), 1);
    MqMessage msg;
    recv_r = k.mq_receive(fd, msg, /*blocking=*/false);
    ASSERT_EQ(k.mq_send(fd, {"x", 0}), Errno::kOk);
    send_r = k.mq_send(fd, {"y", 0}, /*blocking=*/false);
  });
  m.run();
  EXPECT_EQ(recv_r, Errno::kEAGAIN);
  EXPECT_EQ(send_r, Errno::kEAGAIN);
}

TEST(LinuxKernel, ModeBitsGateOtherUsers) {
  sim::Machine m;
  LinuxKernel k(m);
  int other_fd = 0;
  k.spawn_process("owner", 1000, [&] {
    ASSERT_GE(k.mq_open("/private", true, Mode::rw_owner_only()), 0);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("other", 2000, [&] {
    m.sleep_for(sim::msec(1));
    other_fd = k.mq_open("/private", false);
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(other_fd, -static_cast<int>(Errno::kEACCES));
  EXPECT_GE(m.trace().count_tag("linux.mq_deny"), 1u);
}

TEST(LinuxKernel, SameUidCanOpenAnything) {
  // The paper's first simulation: all five processes share one account, so
  // the compromised web interface can open every queue.
  sim::Machine m;
  LinuxKernel k(m);
  int fd = -1;
  k.spawn_process("victim", 1000, [&] {
    ASSERT_GE(k.mq_open("/ctl", true, Mode::rw_owner_only()), 0);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("attacker", 1000, [&] {
    m.sleep_for(sim::msec(1));
    fd = k.mq_open("/ctl", false);
  });
  m.run_until(sim::sec(2));
  EXPECT_GE(fd, 0);
}

TEST(LinuxKernel, RootBypassesModeBits) {
  // Second simulation: with root, well-configured queues don't help.
  sim::Machine m;
  LinuxKernel k(m);
  int fd = -1;
  k.spawn_process("victim", 1000, [&] {
    ASSERT_GE(k.mq_open("/ctl", true, Mode::rw_owner_only()), 0);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("attacker", 2000, [&] {
    m.sleep_for(sim::msec(1));
    k.exploit_escalate_to_root();
    fd = k.mq_open("/ctl", false);
  });
  m.run_until(sim::sec(2));
  EXPECT_GE(fd, 0);
  EXPECT_GE(m.trace().count_tag("linux.privesc"), 1u);
}

TEST(LinuxKernel, KillRequiresMatchingUidOrRoot) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno denied = Errno::kOk, granted = Errno::kEPERM;
  const int victim =
      k.spawn_process("victim", 1000, [&] { m.sleep_for(sim::sec(10)); });
  k.spawn_process("other-user", 2000, [&] { denied = k.sys_kill(victim); });
  k.spawn_process("same-user", 1000, [&] {
    m.sleep_for(sim::msec(5));
    granted = k.sys_kill(victim);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(denied, Errno::kEPERM);
  EXPECT_EQ(granted, Errno::kOk);
  EXPECT_FALSE(k.is_alive(victim));
}

TEST(LinuxKernel, RootKillsAnyone) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno r = Errno::kEPERM;
  const int victim =
      k.spawn_process("victim", 1000, [&] { m.sleep_for(sim::sec(10)); });
  k.spawn_process("attacker", 2000, [&] {
    k.exploit_escalate_to_root();
    r = k.sys_kill(victim);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Errno::kOk);
  EXPECT_FALSE(k.is_alive(victim));
}

TEST(LinuxKernel, SigTermDefaultTerminates) {
  sim::Machine m;
  LinuxKernel k(m);
  // Signals deliver at syscall boundaries; the victim makes them often.
  const int victim = k.spawn_process("victim", 1000, [&] {
    for (;;) {
      k.getpid();
      m.sleep_for(sim::msec(5));
    }
  });
  k.spawn_process("sender", 1000, [&] {
    m.sleep_for(sim::msec(10));
    k.sys_kill_sig(victim, LinuxKernel::kSigTerm);
  });
  m.run_until(sim::sec(1));
  EXPECT_FALSE(k.is_alive(victim));
  EXPECT_GE(m.trace().count_tag("linux.sig_default"), 1u);
}

TEST(LinuxKernel, SigTermHandlerEnablesGracefulShutdown) {
  sim::Machine m;
  LinuxKernel k(m);
  bool flushed = false;
  const int victim = k.spawn_process("daemon", 1000, [&] {
    ASSERT_EQ(k.install_signal_handler(LinuxKernel::kSigTerm, [&] {
      // Graceful path: flush state, then exit voluntarily.
      flushed = true;
      k.sys_exit(0);
    }), Errno::kOk);
    const int q = k.mq_open("/work", true, Mode::rw_owner_only());
    MqMessage msg;
    k.mq_receive(q, msg);  // blocked here when the signal arrives
  });
  k.spawn_process("admin", 1000, [&] {
    m.sleep_for(sim::msec(10));
    ASSERT_EQ(k.sys_kill_sig(victim, LinuxKernel::kSigTerm), Errno::kOk);
  });
  m.run_until(sim::sec(1));
  EXPECT_TRUE(flushed);
  EXPECT_FALSE(k.is_alive(victim));
  EXPECT_GE(m.trace().count_tag("linux.sig_handled"), 1u);
}

TEST(LinuxKernel, SigUsr1WithoutHandlerIsIgnored) {
  sim::Machine m;
  LinuxKernel k(m);
  bool survived = false;
  const int victim = k.spawn_process("victim", 1000, [&] {
    m.sleep_for(sim::msec(100));
    survived = true;
  });
  k.spawn_process("sender", 1000, [&] {
    k.sys_kill_sig(victim, LinuxKernel::kSigUsr1);
  });
  m.run_until(sim::sec(1));
  EXPECT_TRUE(survived);
}

TEST(LinuxKernel, SigKillCannotBeCaught) {
  sim::Machine m;
  LinuxKernel k(m);
  bool handler_ran = false;
  const int victim = k.spawn_process("victim", 1000, [&] {
    // Installing a SIGKILL handler must be rejected outright.
    EXPECT_EQ(k.install_signal_handler(LinuxKernel::kSigKill,
                                       [&] { handler_ran = true; }),
              Errno::kEINVAL);
    m.sleep_for(sim::sec(10));
  });
  k.spawn_process("sender", 1000, [&] {
    m.sleep_for(sim::msec(10));
    k.sys_kill_sig(victim, LinuxKernel::kSigKill);
  });
  m.run_until(sim::sec(1));
  EXPECT_FALSE(k.is_alive(victim));
  EXPECT_FALSE(handler_ran);
}

TEST(LinuxKernel, SignalPermissionFollowsKillRules) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno r = Errno::kOk;
  const int victim =
      k.spawn_process("victim", 1000, [&] { m.sleep_for(sim::sec(10)); });
  k.spawn_process("other", 2000, [&] {
    r = k.sys_kill_sig(victim, LinuxKernel::kSigTerm);
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Errno::kEPERM);
  EXPECT_TRUE(k.is_alive(victim));
}

TEST(LinuxKernel, SetuidOnlyForRoot) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno from_user = Errno::kOk, from_root = Errno::kEPERM;
  k.spawn_process("user", 1000, [&] { from_user = k.sys_setuid(0); });
  k.spawn_process("rootproc", 0, [&] { from_root = k.sys_setuid(1234); });
  m.run();
  EXPECT_EQ(from_user, Errno::kEPERM);
  EXPECT_EQ(from_root, Errno::kOk);
}

TEST(LinuxKernel, MqUnlinkRemovesName) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno unlink_r = Errno::kEINVAL;
  int reopen = 0;
  k.spawn_process("p", 1000, [&] {
    ASSERT_GE(k.mq_open("/q", true, Mode::rw_owner_only()), 0);
    unlink_r = k.mq_unlink("/q");
    reopen = k.mq_open("/q", false);
  });
  m.run();
  EXPECT_EQ(unlink_r, Errno::kOk);
  EXPECT_EQ(reopen, -static_cast<int>(Errno::kENOENT));
}

TEST(LinuxKernel, NoSenderIdentityOnMessages) {
  // The structural weakness: a receiver cannot tell who sent a message.
  sim::Machine m;
  LinuxKernel k(m);
  std::string got;
  k.spawn_process("recv", 1000, [&] {
    const int fd = k.mq_open("/q", true, Mode::rw_everyone());
    MqMessage msg;
    ASSERT_EQ(k.mq_receive(fd, msg), Errno::kOk);
    got = msg.data;  // nothing but the payload: no authentic source field
  });
  k.spawn_process("impostor", 2000, [&] {
    m.sleep_for(sim::msec(1));
    const int fd = k.mq_open("/q", false);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(k.mq_send(fd, {"I am the sensor, trust me", 0}), Errno::kOk);
  });
  m.run();
  EXPECT_EQ(got, "I am the sensor, trust me");
}

TEST(LinuxKernel, FilesRespectPermissions) {
  sim::Machine m;
  LinuxKernel k(m);
  Errno write_denied = Errno::kOk;
  k.spawn_process("owner", 1000, [&] {
    const int fd = k.open_file("/var/log/ctl.log", true,
                               Mode{true, true, true, false});
    ASSERT_GE(fd, 0);
    ASSERT_EQ(k.write_file(fd, "t=0 temp=20.0\n"), Errno::kOk);
    m.sleep_for(sim::sec(1));
  });
  k.spawn_process("other", 2000, [&] {
    m.sleep_for(sim::msec(1));
    const int fd = k.open_file("/var/log/ctl.log", false);
    ASSERT_GE(fd, 0);  // other_read = true
    std::string contents;
    ASSERT_EQ(k.read_file(fd, contents), Errno::kOk);
    EXPECT_NE(contents.find("temp=20.0"), std::string::npos);
    write_denied = k.write_file(fd, "tamper");
  });
  m.run_until(sim::sec(2));
  EXPECT_EQ(write_denied, Errno::kEACCES);
}

TEST(LinuxKernel, FindPidLocatesByName) {
  sim::Machine m;
  LinuxKernel k(m);
  int found = -1;
  const int pid =
      k.spawn_process("tempctl", 1000, [&] { m.sleep_for(sim::sec(1)); });
  k.spawn_process("prober", 1000, [&] { found = k.find_pid("tempctl"); });
  m.run_until(sim::sec(2));
  EXPECT_EQ(found, pid);
}
