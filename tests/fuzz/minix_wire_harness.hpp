#pragma once

// Fuzz harness body for the MINIX wire surface: the 64-byte message
// decode, the ACM permission lookup, and the corrupted-in-transit path
// the fault layer exercises. The same entry point backs two builds:
//
//  * fuzz_minix_wire.cpp wraps it as LLVMFuzzerTestOneInput for a real
//    `clang -fsanitize=fuzzer` binary (CMake option MKBAS_FUZZ);
//  * test_fuzz_corpus.cpp replays a fixed corpus through it under gtest,
//    so every tier-1 ctest run covers the paths with zero extra deps.
//
// The harness asserts with plain `abort()`-style checks (FUZZ_CHECK) so a
// violation is a crash for libFuzzer and a test failure via death under
// gtest — no gtest dependency here.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "minix/acm.hpp"
#include "minix/message.hpp"
#include "sim/machine.hpp"

namespace mkbas::fuzztest {

#define FUZZ_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s (%s:%d)\n", #cond,  \
                   __FILE__, __LINE__);                               \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

/// Little helper: pull a little-endian integer out of the input, zero
/// padded past the end (fuzzers love short inputs).
inline std::uint64_t take_u64(const std::uint8_t* data, std::size_t size,
                              std::size_t off) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && off + i < size; ++i) {
    v |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
  }
  return v;
}

inline int one_input(const std::uint8_t* data, std::size_t size) {
  using minix::AcmPolicy;
  using minix::Endpoint;
  using minix::Message;

  // --- 1. Message decode -------------------------------------------------
  // Treat the first 64 bytes as a raw wire message (the struct is exactly
  // the wire format; static_assert(sizeof == 64) in message.hpp).
  Message m{};
  // memcpy from a null pointer is UB even for length 0 (libFuzzer hands
  // the empty input as (nullptr, 0)).
  if (size > 0) std::memcpy(&m, data, std::min(size, sizeof(Message)));

  // Endpoint arithmetic must be total over the full int32 range.
  const Endpoint src = m.source();
  if (src.valid()) {
    FUZZ_CHECK(src.slot() >= 0 && src.slot() <= Endpoint::kSlotMask);
    FUZZ_CHECK(Endpoint::make(src.slot(), src.generation()) == src);
  }

  // Typed reads at every offset: bounds-checked, so reads that would run
  // past the payload return a default value instead of touching memory.
  for (std::size_t off = 0; off <= Message::kPayloadBytes + 8; ++off) {
    (void)m.get<std::int32_t>(off);
    (void)m.get<double>(off);
    (void)m.get<std::uint64_t>(off);
    const std::string s = m.get_str(off);
    // get_str never reads past the payload and never embeds a NUL.
    FUZZ_CHECK(off >= Message::kPayloadBytes ||
               s.size() <= Message::kPayloadBytes - off);
    FUZZ_CHECK(s.find('\0') == std::string::npos);
  }

  // put_str/get_str round-trip whatever prefix fits.
  const std::size_t str_off = size > 8 ? data[8] % Message::kPayloadBytes : 0;
  const std::string wire =
      size > 0 ? std::string(reinterpret_cast<const char*>(data),
                             std::min<std::size_t>(size, 40))
               : std::string();
  Message rt;
  rt.put_str(str_off, wire);
  const std::string back = rt.get_str(str_off);
  FUZZ_CHECK(back.size() <= wire.size());
  FUZZ_CHECK(back == wire.substr(0, back.size()) ||
             wire.find('\0') != std::string::npos);

  // --- 2. ACM permission lookup ------------------------------------------
  // Build a small policy from input bytes (ids may be wild, including
  // negative) and check the lookup stays total and exact.
  AcmPolicy acm;
  const auto sa = static_cast<std::int32_t>(take_u64(data, size, 0));
  const auto da = static_cast<std::int32_t>(take_u64(data, size, 4));
  const std::uint64_t mask = take_u64(data, size, 8);
  acm.allow_mask(sa, da, mask);
  for (int type = -2; type <= AcmPolicy::kMaxMessageType + 2; ++type) {
    const bool ok = acm.allowed(sa, da, type);
    if (type < 0 || type > AcmPolicy::kMaxMessageType) {
      FUZZ_CHECK(!ok);  // out-of-range types can never be granted
    } else {
      FUZZ_CHECK(ok == ((mask >> type) & 1));
    }
    // A cell that was never written grants nothing (the flipped high bit
    // guarantees this src differs from the one cell we populated).
    FUZZ_CHECK(!acm.allowed(sa ^ 0x40000000, da, type));
  }
  (void)acm.kill_allowed(sa, da);
  (void)acm.fork_quota(da);

  // --- 3. Corrupted-in-transit path --------------------------------------
  // corrupt_bytes is the fault layer's in-flight mutation; it must be a
  // pure function of (buffer, seed) — replay depends on it.
  const std::uint64_t seed = take_u64(data, size, 16);
  Message c1 = m, c2 = m;
  sim::corrupt_bytes(c1.payload.data(), c1.payload.size(), seed);
  sim::corrupt_bytes(c2.payload.data(), c2.payload.size(), seed);
  FUZZ_CHECK(std::memcmp(&c1, &c2, sizeof(Message)) == 0);
  sim::corrupt_bytes(nullptr, 0, seed);  // must be a no-op, not a crash
  sim::corrupt_bytes(c1.payload.data(), 0, seed);

  // A corrupted message must still decode safely everywhere.
  for (std::size_t off = 0; off < Message::kPayloadBytes; off += 4) {
    (void)c1.get_f64(off);
    (void)c1.get_str(off);
  }
  return 0;
}

#undef FUZZ_CHECK

}  // namespace mkbas::fuzztest
