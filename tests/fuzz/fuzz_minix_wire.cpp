// libFuzzer entry point for the MINIX wire-surface harness. Build with
// the MKBAS_FUZZ CMake option (clang only):
//
//   cmake -DMKBAS_FUZZ=ON -DCMAKE_CXX_COMPILER=clang++ ..
//   ./tests/fuzz_minix_wire -max_len=256 corpus/
//
// The tier-1 suite replays a fixed corpus through the same harness via
// test_fuzz_corpus.cpp, so CI covers these paths without a fuzzer build.
#include "minix_wire_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return mkbas::fuzztest::one_input(data, size);
}
