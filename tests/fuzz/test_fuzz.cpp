// Randomised invariant tests ("fuzzers") over the three kernels:
//  * MINIX: under a random policy, random IPC traffic and random process
//    kills, every delivered message respects the ACM — no interleaving
//    slips a disallowed (src, dst, type) through.
//  * seL4: a random sequence of capability operations stays in exact
//    agreement with a shadow model, and rights never amplify.
//  * Linux: mq_open outcomes match the documented permission predicate
//    for random uid/mode/ACL combinations.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "linuxsim/kernel.hpp"
#include "minix/kernel.hpp"
#include "sel4/kernel.hpp"
#include "sim/rng.hpp"

namespace sim = mkbas::sim;
namespace minix = mkbas::minix;
namespace sel4 = mkbas::sel4;
namespace lx = mkbas::linuxsim;

// ---------------------------------------------------------------------
// MINIX IPC chaos fuzz
// ---------------------------------------------------------------------

class MinixIpcFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinixIpcFuzz, DeliveriesRespectThePolicyUnderChaos) {
  const std::uint64_t seed = GetParam();
  sim::Rng policy_rng(seed);

  constexpr int kProcs = 8;
  minix::AcmPolicy acm;
  // Random message policy over types 0..7 between the 8 processes.
  for (int a = 0; a < kProcs; ++a) {
    for (int b = 0; b < kProcs; ++b) {
      acm.allow_mask(10 + a, 10 + b, policy_rng.next_u64() & 0xFF);
    }
    acm.allow_mask(10 + a, minix::MinixKernel::kPmAcId, ~0ULL);
    acm.allow_mask(minix::MinixKernel::kPmAcId, 10 + a, ~0ULL);
  }
  const minix::AcmPolicy reference = acm;  // kernel gets a copy

  sim::Machine m(seed);
  minix::MinixKernel k(m, std::move(acm));

  struct Delivery {
    int src_ac;
    int dst_ac;
    int m_type;
  };
  auto deliveries = std::make_shared<std::vector<Delivery>>();
  auto ep_to_ac = std::make_shared<std::map<std::int32_t, int>>();
  auto endpoints = std::make_shared<std::vector<minix::Endpoint>>();

  for (int i = 0; i < kProcs; ++i) {
    const int ac = 10 + i;
    const minix::Endpoint ep = k.srv_fork2(
        "fuzz" + std::to_string(i), ac,
        [&k, &m, ac, deliveries, endpoints, ep_to_ac, seed, i] {
          sim::Rng rng(seed * 1000 + static_cast<std::uint64_t>(i));
          for (;;) {
            const auto op = rng.next_below(10);
            const minix::Endpoint target =
                (*endpoints)[rng.next_below(endpoints->size())];
            minix::Message msg;
            msg.m_type = static_cast<int>(rng.next_below(8));
            msg.put_f64(0, rng.next_double());
            switch (op) {
              case 0:
              case 1:
                k.ipc_sendnb(target, msg);
                break;
              case 2:
                k.ipc_senda(target, msg);
                break;
              case 3:
                k.ipc_notify(target);
                break;
              case 4: {
                // Blocking send: may block a while; peers will drain or
                // die, and EDEADSRCDST unblocks us.
                k.ipc_send(target, msg);
                break;
              }
              case 5:
              case 6:
              case 7: {
                minix::Message in;
                if (k.ipc_nbreceive(minix::Endpoint::any(), in) ==
                    minix::IpcResult::kOk) {
                  const auto it = ep_to_ac->find(in.m_source);
                  deliveries->push_back(
                      {it == ep_to_ac->end() ? -1 : it->second, ac,
                       in.m_type});
                }
                break;
              }
              case 8: {
                minix::Message in;
                if (k.ipc_receive(target, in) == minix::IpcResult::kOk) {
                  const auto it = ep_to_ac->find(in.m_source);
                  deliveries->push_back(
                      {it == ep_to_ac->end() ? -1 : it->second, ac,
                       in.m_type});
                }
                break;
              }
              default:
                m.sleep_for(sim::usec(100 + rng.next_below(900)));
                break;
            }
          }
        },
        /*priority=*/5 + static_cast<int>(i % 3));
    endpoints->push_back(ep);
    (*ep_to_ac)[ep.raw()] = ac;
  }

  // Kill two random processes mid-run to stress cleanup paths.
  sim::Rng kill_rng(seed ^ 0xDEAD);
  for (int n = 0; n < 2; ++n) {
    const auto victim = (*endpoints)[kill_rng.next_below(endpoints->size())];
    m.at(sim::msec(200 + 300 * n), [&k, victim] { k.kernel_kill(victim); });
  }

  m.run_until(sim::sec(1));

  ASSERT_FALSE(deliveries->empty()) << "fuzz produced no traffic";
  for (const auto& d : *deliveries) {
    ASSERT_NE(d.src_ac, -1) << "delivery from unknown endpoint";
    if (d.m_type == minix::kNotifyMType) {
      ASSERT_TRUE(reference.allowed(d.src_ac, d.dst_ac, minix::kNotifyMType))
          << "notify slipped past the ACM";
    } else {
      ASSERT_TRUE(reference.allowed(d.src_ac, d.dst_ac, d.m_type))
          << "message type " << d.m_type << " from ac " << d.src_ac
          << " to ac " << d.dst_ac << " violates the policy";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinixIpcFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// ---------------------------------------------------------------------
// seL4 capability shadow-model fuzz
// ---------------------------------------------------------------------

namespace {

struct ShadowCap {
  bool present = false;
  int object = -1;
  sel4::CapRights rights;
  std::uint64_t badge = 0;
};

}  // namespace

class Sel4CapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sel4CapFuzz, ShadowModelStaysExact) {
  const std::uint64_t seed = GetParam();
  sim::Machine m(seed);
  sel4::Sel4Kernel k(m);
  bool done = false;
  int mismatches = 0;
  int rights_amplifications = 0;

  k.boot_root([&] {
    using sel4::CapRights;
    using sel4::ObjType;
    using sel4::Sel4Error;
    sim::Rng rng(seed);
    const int n = k.cspace_slots();
    std::vector<ShadowCap> shadow(static_cast<std::size_t>(n));
    // Slots 0/1 (own CNode, untyped) are never operands.
    constexpr int kMinSlot = 5;
    int next_object_tag = 1000;

    auto rand_slot = [&] {
      return kMinSlot +
             static_cast<int>(rng.next_below(
                 static_cast<std::uint64_t>(n - kMinSlot)));
    };
    auto rand_rights = [&] {
      return CapRights{rng.next_below(2) == 1, rng.next_below(2) == 1,
                       rng.next_below(2) == 1};
    };

    for (int step = 0; step < 1500 && !done; ++step) {
      const auto op = rng.next_below(10);
      if (op <= 1) {  // retype a fresh endpoint/notification
        const int dst = rand_slot();
        const ObjType type = rng.next_below(2) == 0
                                 ? ObjType::kEndpoint
                                 : ObjType::kNotification;
        const Sel4Error r =
            k.retype(sel4::Sel4Kernel::kRootUntypedSlot, type, dst);
        const bool expect_ok = !shadow[static_cast<std::size_t>(dst)].present;
        if (expect_ok != (r == Sel4Error::kOk)) {
          // Untyped exhaustion is a legal alternative failure.
          if (r != Sel4Error::kUntypedExhausted) ++mismatches;
          continue;
        }
        if (r == Sel4Error::kOk) {
          shadow[static_cast<std::size_t>(dst)] =
              ShadowCap{true, next_object_tag++, CapRights::all(), 0};
        }
      } else if (op <= 4) {  // copy/mint
        const int src = rand_slot(), dst = rand_slot();
        const CapRights mask = rand_rights();
        const std::uint64_t badge = rng.next_below(100);
        const Sel4Error r = k.cnode_mint(src, dst, mask, badge);
        auto& s = shadow[static_cast<std::size_t>(src)];
        auto& d = shadow[static_cast<std::size_t>(dst)];
        const bool expect_ok = s.present && !d.present && src != dst;
        if (expect_ok != (r == Sel4Error::kOk)) {
          ++mismatches;
          continue;
        }
        if (r == Sel4Error::kOk) {
          d = s;
          d.rights = s.rights.masked_by(mask);
          if (badge != 0) d.badge = badge;
          if (!d.rights.subset_of(s.rights)) ++rights_amplifications;
        }
      } else if (op <= 6) {  // move
        const int src = rand_slot(), dst = rand_slot();
        const Sel4Error r = k.cnode_move(src, dst);
        auto& s = shadow[static_cast<std::size_t>(src)];
        auto& d = shadow[static_cast<std::size_t>(dst)];
        const bool expect_ok = s.present && !d.present && src != dst;
        if (expect_ok != (r == Sel4Error::kOk)) {
          ++mismatches;
          continue;
        }
        if (r == Sel4Error::kOk) {
          d = s;
          s = ShadowCap{};
        }
      } else if (op <= 8) {  // delete
        const int slot = rand_slot();
        const Sel4Error r = k.cnode_delete(slot);
        auto& s = shadow[static_cast<std::size_t>(slot)];
        const bool expect_ok = s.present;
        if (expect_ok != (r == Sel4Error::kOk)) {
          ++mismatches;
          continue;
        }
        s = ShadowCap{};
      } else {  // revoke: strips every cap to the same object
        const int slot = rand_slot();
        auto& s = shadow[static_cast<std::size_t>(slot)];
        const Sel4Error r = k.cnode_revoke(slot);
        const bool expect_ok = s.present;
        if (expect_ok != (r == Sel4Error::kOk)) {
          ++mismatches;
          continue;
        }
        if (r == Sel4Error::kOk) {
          const int obj = s.object;
          for (auto& c : shadow) {
            if (c.present && c.object == obj) c = ShadowCap{};
          }
        }
      }

      // Periodic full-state comparison through legitimate introspection.
      if (step % 100 == 99) {
        for (int slot = kMinSlot; slot < n; ++slot) {
          sel4::Sel4Kernel::CapInfo info;
          if (k.cnode_inspect(sel4::Sel4Kernel::kRootCNodeSlot, slot,
                              info) != Sel4Error::kOk) {
            ++mismatches;
            continue;
          }
          const auto& sc = shadow[static_cast<std::size_t>(slot)];
          if (info.present != sc.present) {
            ++mismatches;
          } else if (info.present) {
            if (info.rights.read != sc.rights.read ||
                info.rights.write != sc.rights.write ||
                info.rights.grant != sc.rights.grant ||
                info.badge != sc.badge) {
              ++mismatches;
            }
          }
        }
      }
    }
    done = true;
  });
  m.run_until(sim::sec(30));
  EXPECT_TRUE(done);
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(rights_amplifications, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sel4CapFuzz,
                         ::testing::Values(1u, 7u, 42u, 99u, 12345u));

// ---------------------------------------------------------------------
// Unix-domain-socket chaos fuzz
// ---------------------------------------------------------------------

class UdsChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UdsChaosFuzz, KernelSurvivesRandomSocketTraffic) {
  // Random binds/connects/sends/recvs/closes across 6 tasks and two
  // namespaces, plus mid-run kills. Invariants: the kernel never crashes,
  // and every byte received was sent by *someone* on that socket's name
  // (streams never cross names).
  const std::uint64_t seed = GetParam();
  sim::Machine m(seed);
  lx::LinuxKernel k(m);
  const char* names[] = {"/run/a", "/run/b", "@c"};
  auto violations = std::make_shared<int>(0);
  std::vector<int> pids;

  for (int i = 0; i < 6; ++i) {
    const int pid = k.spawn_process(
        "fz" + std::to_string(i), 1000 + (i % 2), [&k, &m, seed, i, names,
                                                   violations] {
          sim::Rng rng(seed * 77 + static_cast<std::uint64_t>(i));
          std::vector<int> server_fds, conn_fds;
          for (;;) {
            const char* name = names[rng.next_below(3)];
            const bool abstract = name[0] == '@';
            switch (rng.next_below(8)) {
              case 0: {
                const int s = k.sock_socket();
                const lx::Errno r =
                    abstract ? k.sock_bind_abstract(s, name + 1)
                             : k.sock_bind(s, name, lx::Mode::rw_everyone());
                if (r == lx::Errno::kOk) {
                  k.sock_listen(s, 4);
                  server_fds.push_back(s);
                } else {
                  k.sock_close(s);
                }
                break;
              }
              case 1: {
                const int c = abstract
                                  ? k.sock_connect_abstract(name + 1)
                                  : k.sock_connect(name);
                if (c >= 0) conn_fds.push_back(c);
                break;
              }
              case 2: {
                if (server_fds.empty()) break;
                const int c = k.sock_accept(
                    server_fds[rng.next_below(server_fds.size())], false);
                if (c >= 0) conn_fds.push_back(c);
                break;
              }
              case 3:
              case 4: {
                if (conn_fds.empty()) break;
                const int fd = conn_fds[rng.next_below(conn_fds.size())];
                // Tag each payload with the sender-visible marker.
                k.sock_send(fd, std::string("payload:") +
                                    std::to_string(rng.next_below(1000)),
                            false);
                break;
              }
              case 5: {
                if (conn_fds.empty()) break;
                const int fd = conn_fds[rng.next_below(conn_fds.size())];
                std::string msg;
                if (k.sock_recv(fd, &msg, false) == lx::Errno::kOk) {
                  if (msg.rfind("payload:", 0) != 0) ++*violations;
                }
                break;
              }
              case 6: {
                if (conn_fds.empty()) break;
                const std::size_t idx = rng.next_below(conn_fds.size());
                k.sock_close(conn_fds[idx]);
                conn_fds.erase(conn_fds.begin() +
                               static_cast<long>(idx));
                break;
              }
              default:
                m.sleep_for(sim::usec(200 + rng.next_below(800)));
                break;
            }
          }
        });
    pids.push_back(pid);
  }
  sim::Rng kill_rng(seed ^ 0xBEEF);
  m.at(sim::msec(300), [&m, &pids, &kill_rng] {
    // Driver-context fault injection uses the machine primitive (Linux
    // syscalls are only valid from task context).
    m.kill(m.find_process(pids[kill_rng.next_below(pids.size())]));
  });
  m.run_until(sim::sec(1));
  EXPECT_EQ(*violations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UdsChaosFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------
// Linux permission-predicate fuzz
// ---------------------------------------------------------------------

class LinuxPermFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinuxPermFuzz, MqOpenMatchesTheDocumentedPredicate) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);

  for (int round = 0; round < 20; ++round) {
    sim::Machine m(seed + static_cast<std::uint64_t>(round));
    lx::LinuxKernel k(m);
    const lx::Uid owner = 1000 + static_cast<int>(rng.next_below(4));
    lx::Mode mode;
    mode.owner_read = rng.next_below(2) == 1;
    mode.owner_write = rng.next_below(2) == 1;
    mode.other_read = rng.next_below(2) == 1;
    mode.other_write = rng.next_below(2) == 1;
    const int acl_count = static_cast<int>(rng.next_below(3));
    for (int a = 0; a < acl_count; ++a) {
      mode.grant(1000 + static_cast<int>(rng.next_below(6)),
                 rng.next_below(2) == 1, rng.next_below(2) == 1);
    }
    const lx::Uid opener_uid =
        rng.next_below(6) == 0 ? lx::kRootUid
                               : 1000 + static_cast<int>(rng.next_below(6));

    auto expect_allowed = [&](lx::Uid uid) {
      if (uid == lx::kRootUid) return true;
      const auto it = mode.acl.find(uid);
      if (it != mode.acl.end()) {
        return it->second.first || it->second.second;
      }
      if (uid == owner) return mode.owner_read || mode.owner_write;
      return mode.other_read || mode.other_write;
    };

    int fd = -99;
    k.spawn_process("owner", owner, [&] {
      const int f = k.mq_open("/q", true, mode);
      ASSERT_GE(f, 0);  // creation always succeeds for the creator
      m.sleep_for(sim::sec(1));
    });
    k.spawn_process("opener", opener_uid, [&] {
      m.sleep_for(sim::msec(1));
      fd = k.mq_open("/q", false);
    });
    m.run_until(sim::sec(2));
    const bool allowed = fd >= 0;
    ASSERT_EQ(allowed, expect_allowed(opener_uid))
        << "round " << round << " uid " << opener_uid << " owner " << owner;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinuxPermFuzz,
                         ::testing::Values(3u, 17u, 256u, 999u));
