// Fixed-corpus replay of the libFuzzer harness (minix_wire_harness.hpp)
// under gtest, so the message-decode / ACM-lookup / corruption paths are
// exercised on every tier-1 ctest run. The corpus is deterministic:
// hand-picked structural edge cases plus splitmix64-generated buffers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "minix_wire_harness.hpp"

namespace {

using mkbas::fuzztest::one_input;

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::uint8_t> pseudo_random(std::uint64_t seed, std::size_t n) {
  std::vector<std::uint8_t> buf(n);
  std::uint64_t s = seed;
  for (auto& b : buf) b = static_cast<std::uint8_t>(splitmix(s));
  return buf;
}

TEST(FuzzCorpus, EdgeCaseInputs) {
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {},                                      // empty
      {0x00},                                  // single byte
      std::vector<std::uint8_t>(63, 0x00),     // one short of a message
      std::vector<std::uint8_t>(64, 0x00),     // all-zero message
      std::vector<std::uint8_t>(64, 0xFF),     // all-ones (negative ids,
                                               // max slot/generation)
      std::vector<std::uint8_t>(65, 0x7F),     // one past a message
      std::vector<std::uint8_t>(256, 0xAA),    // oversized input
  };
  for (const auto& input : corpus) {
    EXPECT_EQ(0, one_input(input.data(), input.size()));
  }
}

TEST(FuzzCorpus, StructuredMessages) {
  // Wire messages with interesting source endpoints: none, any, max
  // slot, huge generation — and strings right at the payload boundary.
  for (std::int32_t source : {-2, -1, 0, 1023, 1024, 0x7FFFFFFF,
                              static_cast<std::int32_t>(0x80000000)}) {
    mkbas::minix::Message m;
    m.m_source = source;
    m.m_type = source ^ 0x55;
    m.put_str(40, "boundary-string-that-cannot-fit-in-the-tail");
    EXPECT_EQ(0, one_input(reinterpret_cast<const std::uint8_t*>(&m),
                           sizeof(m)));
  }
}

class FuzzCorpusRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCorpusRandom, PseudoRandomBuffers) {
  const std::uint64_t seed = GetParam();
  for (std::size_t len : {1u, 7u, 24u, 64u, 80u, 200u}) {
    const auto buf = pseudo_random(seed * 1000 + len, len);
    EXPECT_EQ(0, one_input(buf.data(), buf.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCorpusRandom,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
