#include "net/bacnet.hpp"

#include <gtest/gtest.h>

namespace net = mkbas::net;
namespace sim = mkbas::sim;

using net::BacnetDevice;
using net::BacnetMsg;
using net::BacnetNetwork;
using net::SecureProxy;

namespace {
BacnetMsg setpoint_write_helper(std::uint32_t dst, double value) {
  BacnetMsg msg;
  msg.service = BacnetMsg::Service::kWriteProperty;
  msg.src_device = 99;
  msg.dst_device = dst;
  msg.property = "setpoint";
  msg.value = value;
  return msg;
}
}  // namespace

TEST(Bacnet, ReadPropertyRoundTrip) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("setpoint", 22.0);
  netw.attach(dev);

  BacnetMsg req;
  req.service = BacnetMsg::Service::kReadProperty;
  req.src_device = 99;
  req.dst_device = 10;
  req.property = "setpoint";
  netw.send(req);
  m.run_until(sim::sec(1));
  ASSERT_EQ(netw.replies().size(), 1u);
  EXPECT_EQ(netw.replies()[0].service, BacnetMsg::Service::kReadPropertyAck);
  EXPECT_DOUBLE_EQ(netw.replies()[0].value, 22.0);
}

TEST(Bacnet, PlainDeviceAcceptsAnyWrite) {
  // The §I weakness: BACnet WriteProperty has no authentication.
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("setpoint", 22.0);
  netw.attach(dev);

  BacnetMsg evil;
  evil.service = BacnetMsg::Service::kWriteProperty;
  evil.src_device = 666;  // nobody checks this
  evil.dst_device = 10;
  evil.property = "setpoint";
  evil.value = 45.0;
  netw.send(evil);
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(dev.property("setpoint"), 45.0);
  EXPECT_EQ(dev.writes_accepted(), 1u);
}

TEST(Bacnet, WhoIsGetsIAm) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  netw.attach(dev);
  BacnetMsg whois;
  whois.service = BacnetMsg::Service::kWhoIs;
  whois.dst_device = 10;
  netw.send(whois);
  m.run_until(sim::sec(1));
  ASSERT_EQ(netw.replies().size(), 1u);
  EXPECT_EQ(netw.replies()[0].service, BacnetMsg::Service::kIAm);
}

TEST(Bacnet, FloodOverflowsInboxAndDrops) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  netw.attach(dev);
  for (int i = 0; i < 100; ++i) {
    BacnetMsg msg;
    msg.service = BacnetMsg::Service::kWhoIs;
    msg.dst_device = 10;
    netw.send(msg);
  }
  EXPECT_GT(netw.dropped_count(), 0u);
  EXPECT_EQ(netw.dropped_count(), 100 - BacnetNetwork::kInboxDepth);
}

TEST(Bacnet, CovSubscriptionPushesOnChange) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice thermostat(10, "thermostat");
  thermostat.set_property("temp", 21.0);
  BacnetDevice console(20, "console");
  netw.attach(thermostat);
  netw.attach(console);

  BacnetMsg sub;
  sub.service = BacnetMsg::Service::kSubscribeCov;
  sub.src_device = 20;
  sub.dst_device = 10;
  sub.property = "temp";
  netw.send(sub);
  m.run_until(sim::sec(1));
  ASSERT_EQ(thermostat.subscription_count(), 1u);

  thermostat.set_property("temp", 22.5);
  m.run_until(sim::sec(2));
  ASSERT_EQ(console.cov_inbox().size(), 1u);
  EXPECT_EQ(console.cov_inbox()[0].property, "temp");
  EXPECT_DOUBLE_EQ(console.cov_inbox()[0].value, 22.5);
}

TEST(Bacnet, CovNotifiesOnNetworkWritesToo) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("setpoint", 22.0);
  BacnetDevice console(20, "console");
  netw.attach(dev);
  netw.attach(console);
  BacnetMsg sub;
  sub.service = BacnetMsg::Service::kSubscribeCov;
  sub.src_device = 20;
  sub.dst_device = 10;
  sub.property = "setpoint";
  netw.send(sub);
  m.run_until(sim::sec(1));
  netw.send(setpoint_write_helper(10, 24.0));
  m.run_until(sim::sec(2));
  ASSERT_EQ(console.cov_inbox().size(), 1u);
  EXPECT_DOUBLE_EQ(console.cov_inbox()[0].value, 24.0);
}

TEST(Bacnet, SubscribeToUnknownPropertyFails) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  netw.attach(dev);
  BacnetMsg sub;
  sub.service = BacnetMsg::Service::kSubscribeCov;
  sub.src_device = 20;
  sub.dst_device = 10;
  sub.property = "nonexistent";
  netw.send(sub);
  m.run_until(sim::sec(1));
  ASSERT_EQ(netw.replies().size(), 1u);
  EXPECT_EQ(netw.replies()[0].service, BacnetMsg::Service::kError);
  EXPECT_EQ(dev.subscription_count(), 0u);
}

TEST(Bacnet, SubscriptionTableIsBounded) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("temp", 21.0);
  netw.attach(dev);
  for (std::uint32_t i = 0; i < 20; ++i) {
    BacnetMsg sub;
    sub.service = BacnetMsg::Service::kSubscribeCov;
    sub.src_device = 100 + i;
    sub.dst_device = 10;
    sub.property = "temp";
    netw.send(sub);
    m.run_until(m.now() + sim::sec(1));
  }
  EXPECT_EQ(dev.subscription_count(), BacnetDevice::kMaxSubscriptions);
}

TEST(Bacnet, AttackerCanSubscribeToTelemetryUnauthenticated) {
  // Like writes, subscriptions carry no authentication: passive
  // surveillance of a BAS is one datagram away (§I's broader point).
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("temp", 21.0);
  BacnetDevice attacker(666, "attacker-box");
  netw.attach(dev);
  netw.attach(attacker);
  BacnetMsg sub;
  sub.service = BacnetMsg::Service::kSubscribeCov;
  sub.src_device = 666;
  sub.dst_device = 10;
  sub.property = "temp";
  netw.send(sub);
  m.run_until(sim::sec(1));
  dev.set_property("temp", 36.6);
  m.run_until(sim::sec(2));
  ASSERT_EQ(attacker.cov_inbox().size(), 1u);
  EXPECT_DOUBLE_EQ(attacker.cov_inbox()[0].value, 36.6);
}

TEST(SecureProxy, AcceptsAuthenticatedWrite) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice legacy(10, "thermostat");
  legacy.set_property("setpoint", 22.0);
  SecureProxy proxy(legacy, /*key=*/0xDEADBEEF);
  netw.attach(proxy);

  BacnetMsg msg;
  msg.service = BacnetMsg::Service::kWriteProperty;
  msg.dst_device = 10;
  msg.property = "setpoint";
  msg.value = 24.0;
  netw.send(SecureProxy::seal(msg, 0xDEADBEEF, /*sequence=*/1));
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(legacy.property("setpoint"), 24.0);
}

TEST(SecureProxy, RejectsUnauthenticatedWrite) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice legacy(10, "thermostat");
  legacy.set_property("setpoint", 22.0);
  SecureProxy proxy(legacy, 0xDEADBEEF);
  netw.attach(proxy);

  BacnetMsg evil;
  evil.service = BacnetMsg::Service::kWriteProperty;
  evil.dst_device = 10;
  evil.property = "setpoint";
  evil.value = 45.0;  // no tag at all
  netw.send(evil);
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(legacy.property("setpoint"), 22.0);
  EXPECT_EQ(proxy.rejected_bad_tag(), 1u);
}

TEST(SecureProxy, RejectsWrongKey) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice legacy(10, "thermostat");
  SecureProxy proxy(legacy, 0xDEADBEEF);
  netw.attach(proxy);
  BacnetMsg msg;
  msg.service = BacnetMsg::Service::kWriteProperty;
  msg.dst_device = 10;
  msg.property = "setpoint";
  msg.value = 45.0;
  netw.send(SecureProxy::seal(msg, /*wrong key=*/0xBADBAD, 1));
  m.run_until(sim::sec(1));
  EXPECT_EQ(proxy.rejected_bad_tag(), 1u);
  EXPECT_EQ(legacy.writes_accepted(), 0u);
}

TEST(SecureProxy, RejectsReplayedWrite) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice legacy(10, "thermostat");
  legacy.set_property("setpoint", 22.0);
  SecureProxy proxy(legacy, 0xDEADBEEF);
  netw.attach(proxy);

  const BacnetMsg genuine = SecureProxy::seal(
      [] {
        BacnetMsg msg;
        msg.service = BacnetMsg::Service::kWriteProperty;
        msg.dst_device = 10;
        msg.property = "setpoint";
        msg.value = 24.0;
        return msg;
      }(),
      0xDEADBEEF, 1);
  netw.send(genuine);
  m.run_until(sim::sec(1));
  ASSERT_DOUBLE_EQ(legacy.property("setpoint"), 24.0);

  // The attacker captured the datagram off the wire and replays it after
  // the operator sets a different value.
  legacy.set_property("setpoint", 26.0);
  netw.send(genuine);  // verbatim replay
  m.run_until(sim::sec(2));
  EXPECT_DOUBLE_EQ(legacy.property("setpoint"), 26.0);  // unchanged
  EXPECT_EQ(proxy.rejected_replay(), 1u);
}

TEST(SecureProxy, ReadsPassThrough) {
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice legacy(10, "thermostat");
  legacy.set_property("temp", 21.5);
  SecureProxy proxy(legacy, 1);
  netw.attach(proxy);
  BacnetMsg req;
  req.service = BacnetMsg::Service::kReadProperty;
  req.dst_device = 10;
  req.property = "temp";
  netw.send(req);
  m.run_until(sim::sec(1));
  ASSERT_EQ(netw.replies().size(), 1u);
  EXPECT_DOUBLE_EQ(netw.replies()[0].value, 21.5);
}

TEST(SecureProxy, ReplayOfPlainDeviceSucceedsWithoutProxy) {
  // Contrast case for FIG1: the same replay against the bare device works.
  sim::Machine m;
  BacnetNetwork netw(m);
  BacnetDevice dev(10, "thermostat");
  dev.set_property("setpoint", 22.0);
  netw.attach(dev);
  BacnetMsg msg;
  msg.service = BacnetMsg::Service::kWriteProperty;
  msg.dst_device = 10;
  msg.property = "setpoint";
  msg.value = 24.0;
  netw.send(msg);
  m.run_until(sim::sec(1));
  dev.set_property("setpoint", 26.0);
  netw.send(msg);  // replay
  m.run_until(sim::sec(2));
  EXPECT_DOUBLE_EQ(dev.property("setpoint"), 24.0);  // replay applied
}
