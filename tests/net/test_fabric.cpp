// The fabric's contract: conservative-lockstep delivery that replays
// byte-identically from (topology, seed), with loss / partition /
// overflow accounted per cause — plus the cross-controller attack
// matrix riding on top of it (core::run_fabric).
#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "core/fabric_run.hpp"
#include "core/hash.hpp"
#include "net/fabric.hpp"

namespace net = mkbas::net;
namespace sim = mkbas::sim;
namespace core = mkbas::core;

using Service = net::BacnetMsg::Service;

namespace {

net::BacnetMsg write_msg(std::uint32_t src, std::uint32_t dst, double v) {
  net::BacnetMsg m;
  m.service = Service::kWriteProperty;
  m.src_device = src;
  m.dst_device = dst;
  m.property = "zone.setpoint";
  m.value = v;
  return m;
}

}  // namespace

TEST(Fabric, DeliversAcrossMachinesAfterLinkLatency) {
  net::Fabric fabric(/*seed=*/3);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  zone.set_property("zone.setpoint", 21.0);
  fabric.attach(a, console);
  fabric.attach(b, zone);
  net::LinkProfile link;
  link.base = sim::msec(5);
  link.jitter = 0;
  fabric.set_default_link(link);

  fabric.machine(a).at(sim::msec(10), [&] {
    fabric.post(a, write_msg(1, 100, 24.5));
  });
  fabric.run_until(sim::msec(10));
  // Posted but not yet delivered: base latency is 5 ms.
  EXPECT_EQ(fabric.delivered(), 0u);
  EXPECT_DOUBLE_EQ(zone.property("zone.setpoint"), 21.0);

  fabric.run_until(sim::msec(40));
  EXPECT_DOUBLE_EQ(zone.property("zone.setpoint"), 24.5);
  EXPECT_EQ(zone.writes_accepted(), 1u);
  // The write plus its SimpleAck back to the console.
  EXPECT_EQ(fabric.delivered(), 2u);
  // The fabric stamped the send time on the posting node's clock.
  ASSERT_EQ(fabric.sent_log().size(), 2u);
  EXPECT_EQ(fabric.sent_log()[0].sent_at, sim::msec(10));
}

TEST(Fabric, CovSubscriptionPushesAcrossTheFabric) {
  net::Fabric fabric(/*seed=*/3);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  zone.set_property("zone.temp", 20.0);
  fabric.attach(a, console);
  fabric.attach(b, zone);

  fabric.machine(a).at(sim::msec(1), [&] {
    net::BacnetMsg sub;
    sub.service = Service::kSubscribeCov;
    sub.src_device = 1;
    sub.dst_device = 100;
    sub.property = "zone.temp";
    fabric.post(a, sub);
  });
  fabric.machine(b).at(sim::msec(50), [&] {
    zone.set_property("zone.temp", 21.5);
  });
  fabric.run_until(sim::msec(100));

  ASSERT_EQ(console.cov_inbox().size(), 1u);
  EXPECT_EQ(console.cov_inbox()[0].property, "zone.temp");
  EXPECT_DOUBLE_EQ(console.cov_inbox()[0].value, 21.5);
  // End-to-end latency was recorded (base 5 ms + U[0,2] ms jitter).
  EXPECT_EQ(fabric.cov_delivered(), 1u);
}

TEST(Fabric, LossyLinkDropsAndAccountsDatagrams) {
  net::Fabric fabric(/*seed=*/3);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  fabric.attach(a, console);
  fabric.attach(b, zone);
  net::LinkProfile lossy;
  lossy.loss = 1.0;  // every datagram a->b dies; replies still pass
  fabric.set_link(a, b, lossy);

  fabric.machine(a).at(sim::msec(1), [&] {
    fabric.post(a, write_msg(1, 100, 30.0));
  });
  fabric.run_until(sim::msec(50));
  EXPECT_EQ(zone.writes_accepted(), 0u);
  EXPECT_EQ(fabric.dropped_loss(), 1u);
  EXPECT_EQ(fabric.delivered(), 0u);
}

TEST(Fabric, PartitionWindowDropsThenHeals) {
  net::Fabric fabric(/*seed=*/3);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  fabric.attach(a, console);
  fabric.attach(b, zone);
  net::PartitionWindow split;
  split.node_a = a;
  split.node_b = b;
  split.from = 0;
  split.to = sim::msec(100);
  fabric.add_partition(split);

  fabric.machine(a).at(sim::msec(10), [&] {
    fabric.post(a, write_msg(1, 100, 25.0));  // inside the window: dropped
  });
  fabric.machine(a).at(sim::msec(150), [&] {
    fabric.post(a, write_msg(1, 100, 26.0));  // after healing: delivered
  });
  fabric.run_until(sim::msec(200));
  EXPECT_EQ(fabric.dropped_partition(), 1u);
  EXPECT_EQ(zone.writes_accepted(), 1u);
  EXPECT_DOUBLE_EQ(zone.property("zone.setpoint"), 26.0);
}

TEST(Fabric, BoundedInboxDropsFloodOverflow) {
  net::Fabric fabric(/*seed=*/3);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  fabric.attach(a, console);
  fabric.attach(b, zone);

  fabric.machine(a).at(sim::msec(1), [&] {
    for (int i = 0; i < 200; ++i) {
      net::BacnetMsg probe;
      probe.service = Service::kWhoIs;
      probe.src_device = 66;  // unattached: replies vanish
      probe.dst_device = 100;
      fabric.post(a, probe);
    }
  });
  fabric.run_until(sim::msec(50));
  EXPECT_EQ(fabric.dropped_overflow(),
            200u - net::Fabric::kInboxDepth);
  EXPECT_EQ(fabric.delivered(), net::Fabric::kInboxDepth);
}

// --- run_fabric: the N-zone building ------------------------------------

TEST(FabricRun, ReplaysByteIdenticallyWithLossAndPartitions) {
  core::FabricOptions opts;
  opts.zones = 3;
  opts.seed = 11;
  opts.duration = sim::minutes(12);
  opts.link.loss = 0.05;
  net::PartitionWindow split;
  split.node_a = 0;
  split.node_b = 2;
  split.from = sim::minutes(4);
  split.to = sim::minutes(6);  // heals mid-run
  opts.partitions.push_back(split);

  const core::FabricRunResult r1 = core::run_fabric(opts);
  const core::FabricRunResult r2 = core::run_fabric(opts);
  EXPECT_GT(r1.delivered, 0u);
  EXPECT_GT(r1.drop_loss, 0u);   // the lossy links actually fired
  EXPECT_GT(r1.cov_count, 0u);   // telemetry flowed despite the split
  EXPECT_EQ(r1.delivered, r2.delivered);
  EXPECT_EQ(r1.drop_loss, r2.drop_loss);
  EXPECT_EQ(r1.drop_partition, r2.drop_partition);
  EXPECT_EQ(r1.trace_hash, r2.trace_hash);
  EXPECT_EQ(r1.metrics_json, r2.metrics_json);
}

TEST(FabricRun, DifferentSeedsDiverge) {
  core::FabricOptions opts;
  opts.zones = 2;
  opts.duration = sim::minutes(8);
  opts.link.loss = 0.05;
  opts.seed = 1;
  const auto r1 = core::run_fabric(opts);
  opts.seed = 2;
  const auto r2 = core::run_fabric(opts);
  EXPECT_NE(r1.trace_hash, r2.trace_hash);
}

TEST(FabricRun, SpoofedWriteLandsOnLinuxButNotBehindProxies) {
  core::FabricOptions opts;
  opts.zones = 3;  // zone 0 linux, 1 minix+proxy, 2 sel4+proxy (attacker)
  opts.duration = sim::minutes(15);
  opts.attack = core::FabricAttack::kSpoofWrite;
  opts.attack_at = sim::minutes(10);
  const auto r = core::run_fabric(opts);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_FALSE(r.rows[0].proxied);
  EXPECT_TRUE(r.rows[0].attack_delivered);
  EXPECT_DOUBLE_EQ(r.rows[0].final_setpoint_c, 35.0);
  EXPECT_TRUE(r.rows[1].proxied);
  EXPECT_FALSE(r.rows[1].attack_delivered);
  EXPECT_GE(r.rows[1].proxy_rejected_tag, 1u);
  EXPECT_LT(r.rows[1].final_setpoint_c, 30.0);
}

TEST(FabricRun, ReplayedDatagramsRejectedByProxySequenceWindow) {
  core::FabricOptions opts;
  opts.zones = 3;
  opts.duration = sim::minutes(15);
  opts.attack = core::FabricAttack::kReplay;
  opts.attack_at = sim::minutes(10);
  const auto r = core::run_fabric(opts);
  ASSERT_EQ(r.rows.size(), 3u);
  // The Linux zone re-accepts the captured write; the proxied zones see a
  // valid MAC with a stale sequence number and reject it as a replay.
  EXPECT_TRUE(r.rows[0].attack_delivered);
  EXPECT_FALSE(r.rows[1].attack_delivered);
  EXPECT_GE(r.rows[1].proxy_rejected_replay, 1u);
  EXPECT_GE(r.rows[2].proxy_rejected_replay, 1u);
}

TEST(FabricRun, FloodSaturatesHeadEndInbox) {
  core::FabricOptions opts;
  opts.zones = 3;
  opts.duration = sim::minutes(12);
  opts.attack = core::FabricAttack::kFlood;
  opts.attack_at = sim::minutes(10);
  const auto r = core::run_fabric(opts);
  EXPECT_GT(r.drop_overflow, 0u);
  // No zone's setpoint was touched: flooding is loss of view, not of
  // control.
  for (const auto& row : r.rows) {
    EXPECT_FALSE(row.attack_delivered);
  }
}

TEST(FabricRun, CovLatencyHistogramPopulated) {
  core::FabricOptions opts;
  opts.zones = 2;
  opts.duration = sim::minutes(8);
  const auto r = core::run_fabric(opts);
  EXPECT_GT(r.cov_count, 0u);
  // base 5 ms; p99 bounded by base + jitter rounded up to a bucket edge.
  EXPECT_GE(r.cov_p99_us, 5000.0);
  EXPECT_LE(r.cov_p99_us, 10000.0);
  // The fabric metrics made it into the merged registry export.
  EXPECT_NE(r.metrics_json.find("fabric.cov.latency_us"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("fabric.delivered"), std::string::npos);
}

// --- the campaign cell: one building per cell, any --jobs ----------------

TEST(FabricCampaign, SixteenZoneBuildingIdenticalAcrossJobCounts) {
  core::FabricOptions base;
  base.duration = sim::minutes(12);
  base.seed = 5;
  auto cells = core::fabric_matrix_cells(/*zones=*/16, base);
  ASSERT_EQ(cells.size(), 4u);  // none / spoof-write / replay / flood
  const auto seq = core::run_campaign(cells, /*jobs=*/1);
  const auto par = core::run_campaign(cells, /*jobs=*/4);
  EXPECT_EQ(seq.summary_json(), par.summary_json());

  const auto rows = core::fabric_rows(seq);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.zones, 16);
    EXPECT_EQ(r.rows.size(), 16u);
  }
  // The spoof cell: every Linux zone falls, every proxied zone holds.
  const auto& spoof = rows[1];
  ASSERT_EQ(spoof.attack, core::FabricAttack::kSpoofWrite);
  for (const auto& row : spoof.rows) {
    if (static_cast<std::size_t>(row.zone) + 1 == 16u) continue;  // attacker
    EXPECT_EQ(row.attack_delivered, !row.proxied)
        << "zone " << row.zone << " (" << row.label << ")";
  }
}
