// The tentpole contract of the lookahead engine: per-link conservative
// sync must be OBSERVATIONALLY INVISIBLE. Whatever the sync mode
// (event-driven lookahead vs the legacy epoch barrier) and whatever the
// sharding (--jobs), a fabric replays byte-identical metrics, spans and
// traces from (topology, seed) — and no datagram ever lands in a node's
// past. This battery sweeps seeds x topologies through both engines and
// fuzzes randomized graphs against the causality and conservation
// invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/fabric_run.hpp"
#include "core/hash.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace net = mkbas::net;
namespace sim = mkbas::sim;
namespace obs = mkbas::obs;
namespace core = mkbas::core;

using Service = net::BacnetMsg::Service;
using Kind = net::TopologySpec::Kind;

namespace {

/// Everything observable about one fabric run, reduced in node order.
struct Observation {
  std::string metrics_json;
  std::string spans_json;
  std::uint64_t trace_hash = 0;
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drop_loss = 0;
  std::uint64_t drop_partition = 0;
  std::uint64_t drop_overflow = 0;
  std::uint64_t drop_unroutable = 0;
  std::uint64_t pending = 0;
  std::uint64_t violations = 0;
  std::vector<sim::Time> sent_at;  // canonical capture order

  bool operator==(const Observation& o) const {
    return metrics_json == o.metrics_json && spans_json == o.spans_json &&
           trace_hash == o.trace_hash && posted == o.posted &&
           delivered == o.delivered && drop_loss == o.drop_loss &&
           drop_partition == o.drop_partition &&
           drop_overflow == o.drop_overflow &&
           drop_unroutable == o.drop_unroutable && pending == o.pending &&
           sent_at == o.sent_at;
  }
};

Observation observe(net::Fabric& fabric) {
  Observation ob;
  obs::MetricsRegistry merged;
  obs::SpanStore merged_spans;
  std::uint64_t chain = 14695981039346656037ULL;
  for (std::size_t n = 0; n < fabric.node_count(); ++n) {
    sim::Machine& m = fabric.machine(static_cast<int>(n));
    merged.merge_from(m.metrics());
    merged_spans.merge_from(m.spans());
    chain = core::fnv1a(core::hex64(core::trace_hash(m.trace())), chain);
  }
  ob.metrics_json = merged.to_json();
  ob.spans_json = merged_spans.to_json();
  ob.trace_hash = chain;
  ob.posted = fabric.posted();
  ob.delivered = fabric.delivered();
  ob.drop_loss = fabric.dropped_loss();
  ob.drop_partition = fabric.dropped_partition();
  ob.drop_overflow = fabric.dropped_overflow();
  ob.drop_unroutable = fabric.dropped_unroutable();
  ob.pending = fabric.pending();
  ob.violations = fabric.causality_violations();
  for (const net::BacnetMsg& m : fabric.sent_log()) {
    ob.sent_at.push_back(m.sent_at);
  }
  return ob;
}

void expect_conservation(const Observation& ob, const std::string& label) {
  EXPECT_EQ(ob.posted, ob.delivered + ob.drop_loss + ob.drop_partition +
                           ob.drop_overflow + ob.drop_unroutable +
                           ob.pending)
      << label;
  EXPECT_EQ(ob.violations, 0u) << label;
}

/// A synthetic workload over an arbitrary topology: one device per node,
/// COV subscriptions along every declared link, periodic property
/// updates with per-node phases, and writes hopping each declared link.
/// No kernels — this isolates the fabric engine itself.
Observation run_synthetic(Kind kind, std::uint64_t seed,
                          net::SyncMode sync, double loss = 0.05,
                          bool partition = false, int jobs = 1) {
  net::TopologySpec spec;
  spec.kind = kind;
  spec.zones = 6;
  spec.floors = 2;
  spec.buildings = kind == Kind::kCampus ? 2 : 1;
  const net::Topology topo = net::Topology::build(spec);
  const int n = kind == Kind::kFlat ? 6 : topo.node_count();

  net::Fabric fabric(seed);
  fabric.set_sync(sync);
  net::LinkProfile link;
  link.base = sim::msec(3);
  link.jitter = sim::msec(2);
  link.loss = loss;
  fabric.set_default_link(link);
  std::vector<std::unique_ptr<net::BacnetDevice>> devices;
  for (int i = 0; i < n; ++i) {
    fabric.add_node(seed * 977 + static_cast<std::uint64_t>(i));
    devices.push_back(std::make_unique<net::BacnetDevice>(
        1000 + static_cast<std::uint32_t>(i),
        "dev" + std::to_string(i)));
    devices.back()->set_property("v", 0.0);
    fabric.attach(i, *devices.back());
  }
  if (kind != Kind::kFlat) fabric.set_topology(topo);
  fabric.set_jobs(jobs);
  if (partition && n >= 3) {
    net::PartitionWindow w;
    w.node_a = n - 1;
    w.node_b = topo.links.empty() ? 0 : topo.links.back().first;
    w.from = sim::msec(400);
    w.to = sim::msec(900);
    fabric.add_partition(w);
  }

  // Wire subscriptions along the declared links (flat: a ring).
  std::vector<std::pair<int, int>> edges;
  if (kind == Kind::kFlat) {
    for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  } else {
    edges = topo.links;
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const int src = edges[e].first;
    const int dst = edges[e].second;
    fabric.machine(src).at(
        sim::msec(5) + static_cast<sim::Time>(e) * sim::msec(2),
        [&fabric, src, dst] {
          net::BacnetMsg sub;
          sub.service = Service::kSubscribeCov;
          sub.src_device = 1000 + static_cast<std::uint32_t>(src);
          sub.dst_device = 1000 + static_cast<std::uint32_t>(dst);
          sub.property = "v";
          fabric.post(src, sub);
        });
  }
  // Periodic updates (COV fan-out) plus a write along a rotating edge.
  for (int i = 0; i < n; ++i) {
    net::BacnetDevice* dev = devices[static_cast<std::size_t>(i)].get();
    sim::Machine& m = fabric.machine(i);
    auto tick = std::make_shared<int>(0);
    m.every(sim::msec(40) + i * sim::msec(7), sim::msec(50),
            [&fabric, dev, i, tick, edges] {
              dev->set_property(
                  "v", static_cast<double>(i) + 0.5 * (*tick)++);
              const auto& edge =
                  edges[static_cast<std::size_t>(*tick) % edges.size()];
              if (edge.first == i) {
                net::BacnetMsg w;
                w.service = Service::kWriteProperty;
                w.src_device = 1000 + static_cast<std::uint32_t>(i);
                w.dst_device =
                    1000 + static_cast<std::uint32_t>(edge.second);
                w.property = "v";
                w.value = 99.0;
                fabric.post(i, w);
              }
            });
  }
  fabric.run_until(sim::sec(2));
  return observe(fabric);
}

}  // namespace

// --- the A/B property: lookahead == epoch, byte for byte -----------------

TEST(FabricSync, SixteenSeedSweepByteIdenticalAcrossModes) {
  const Kind kinds[] = {Kind::kLine, Kind::kStar, Kind::kTree,
                        Kind::kCampus};
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    for (Kind kind : kinds) {
      // The campus arm doubles as the partitioned topology: two island
      // components plus an in-building partition window.
      const bool part = kind == Kind::kCampus;
      const Observation look =
          run_synthetic(kind, seed, net::SyncMode::kLookahead, 0.05, part);
      const Observation epoch =
          run_synthetic(kind, seed, net::SyncMode::kEpoch, 0.05, part);
      const std::string label = std::string(to_string(kind)) + " seed " +
                                std::to_string(seed);
      EXPECT_GT(look.delivered, 0u) << label;
      EXPECT_TRUE(look == epoch) << label;
      expect_conservation(look, label + " (lookahead)");
      expect_conservation(epoch, label + " (epoch)");
    }
  }
}

TEST(FabricSync, RunFabricTreeByteIdenticalAcrossModes) {
  // Full stack: kernels, proxies, hierarchy, attack — both engines must
  // reproduce every artifact byte for byte.
  core::FabricOptions opts;
  opts.zones = 6;
  opts.topology = Kind::kTree;
  opts.floors = 2;
  opts.seed = 23;
  opts.duration = sim::minutes(6);
  opts.attack = core::FabricAttack::kFlood;
  opts.attack_at = sim::minutes(4);
  opts.link.loss = 0.02;

  opts.sync = net::SyncMode::kLookahead;
  const auto look = core::run_fabric(opts);
  opts.sync = net::SyncMode::kEpoch;
  const auto epoch = core::run_fabric(opts);

  EXPECT_GT(look.delivered, 0u);
  EXPECT_EQ(look.trace_hash, epoch.trace_hash);
  EXPECT_EQ(look.metrics_json, epoch.metrics_json);
  EXPECT_EQ(look.spans_json, epoch.spans_json);
  EXPECT_EQ(look.audit_json, epoch.audit_json);
  EXPECT_EQ(look.health_json, epoch.health_json);
  EXPECT_EQ(look.delivered, epoch.delivered);
  EXPECT_EQ(look.causality_violations, 0u);
  EXPECT_EQ(epoch.causality_violations, 0u);
}

// --- causality / conservation fuzzer -------------------------------------

TEST(FabricSync, FuzzedTopologiesHoldCausalityAndConservation) {
  // Randomized graphs, profiles and traffic: no delivery may land in a
  // node's past, and every posted datagram must be accounted for.
  for (std::uint64_t round = 0; round < 24; ++round) {
    sim::Rng rng(0xFADED00 + round);
    const int n = 3 + static_cast<int>(rng.next_below(8));

    net::Topology topo;
    for (int i = 0; i < n; ++i) {
      topo.add_node(net::NodeRole::kZone, i == 0 ? -1 : 0, 0);
    }
    // A random tree keeps most nodes reachable; extra random edges add
    // cycles; leaving node n-1 out sometimes creates an island.
    for (int i = 1; i < n; ++i) {
      if (i == n - 1 && rng.next_below(3) == 0) continue;  // island
      topo.add_duplex(static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(i))),
                      i);
    }
    const std::uint64_t extra = rng.next_below(4);
    for (std::uint64_t e = 0; e < extra; ++e) {
      topo.add_link(
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))),
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
    }

    net::Fabric fabric(round * 31 + 7);
    net::LinkProfile def;
    def.base = sim::msec(1 + static_cast<sim::Duration>(rng.next_below(6)));
    def.jitter = static_cast<sim::Duration>(rng.next_below(3000));
    def.loss = 0.1 * static_cast<double>(rng.next_below(3));
    fabric.set_default_link(def);
    std::vector<std::unique_ptr<net::BacnetDevice>> devices;
    for (int i = 0; i < n; ++i) {
      fabric.add_node(round * 131 + static_cast<std::uint64_t>(i));
      devices.push_back(std::make_unique<net::BacnetDevice>(
          1000 + static_cast<std::uint32_t>(i),
          "dev" + std::to_string(i)));
      fabric.attach(i, *devices.back());
    }
    fabric.set_topology(topo);
    // Per-link overrides, including sub-millisecond bases to stress the
    // 1-microsecond lookahead floor.
    for (const auto& [a, b] : topo.links) {
      if (rng.next_below(2) == 0) continue;
      net::LinkProfile p;
      p.base = static_cast<sim::Duration>(rng.next_below(9000));
      p.jitter = static_cast<sim::Duration>(rng.next_below(2000));
      p.loss = 0.05 * static_cast<double>(rng.next_below(4));
      fabric.set_link(a, b, p);
    }
    if (rng.next_below(2) == 0) {
      net::PartitionWindow w;
      w.node_a = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      w.node_b = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      w.from = static_cast<sim::Time>(rng.next_below(500000));
      w.to = w.from + static_cast<sim::Time>(rng.next_below(500000));
      fabric.add_partition(w);
    }

    // Random traffic: each node periodically writes to a random device
    // id — sometimes unattached, sometimes unroutable, sometimes itself.
    for (int i = 0; i < n; ++i) {
      sim::Machine& m = fabric.machine(i);
      const std::uint32_t dst = 1000 + static_cast<std::uint32_t>(
                                           rng.next_below(
                                               static_cast<std::uint64_t>(
                                                   n + 2)));
      const sim::Duration period =
          sim::msec(10) +
          static_cast<sim::Duration>(rng.next_below(40000));
      m.every(period, period, [&fabric, i, dst] {
        net::BacnetMsg w;
        w.service = Service::kWriteProperty;
        w.src_device = 1000 + static_cast<std::uint32_t>(i);
        w.dst_device = dst;
        w.property = "v";
        w.value = 1.0;
        fabric.post(i, w);
      });
    }
    fabric.run_until(sim::sec(1));
    const Observation ob = observe(fabric);
    expect_conservation(ob, "fuzz round " + std::to_string(round));
    EXPECT_GT(ob.posted, 0u) << "fuzz round " << round;
  }
}

// --- link-state map: flat hashed keys, no iteration-order leakage --------

TEST(FabricSync, LinkInsertionOrderCannotPerturbTheRun) {
  // Two fabrics with identical link profiles declared in opposite
  // orders: the per-link RNG streams are seeded from (seed, src, dst)
  // and the only whole-map walk (the epoch quantum) is a min — so every
  // observable must match, in both sync modes.
  for (const net::SyncMode sync :
       {net::SyncMode::kLookahead, net::SyncMode::kEpoch}) {
    Observation obs_ab, obs_ba;
    for (int order = 0; order < 2; ++order) {
      net::Fabric fabric(99);
      fabric.set_sync(sync);
      const int a = fabric.add_node(1);
      const int b = fabric.add_node(2);
      const int c = fabric.add_node(3);
      net::BacnetDevice da(1000, "a");
      net::BacnetDevice db(1001, "b");
      net::BacnetDevice dc(1002, "c");
      fabric.attach(a, da);
      fabric.attach(b, db);
      fabric.attach(c, dc);
      net::LinkProfile fast;
      fast.base = sim::msec(2);
      fast.jitter = sim::msec(1);
      fast.loss = 0.2;
      net::LinkProfile slow;
      slow.base = sim::msec(9);
      slow.jitter = sim::msec(4);
      slow.loss = 0.1;
      if (order == 0) {
        fabric.set_link(a, b, fast);
        fabric.set_link(a, c, slow);
        fabric.set_link(b, c, fast);
      } else {
        fabric.set_link(b, c, fast);
        fabric.set_link(a, c, slow);
        fabric.set_link(a, b, fast);
      }
      for (int src : {a, b}) {
        sim::Machine& m = fabric.machine(src);
        m.every(sim::msec(10), sim::msec(10), [&fabric, src] {
          net::BacnetMsg w;
          w.service = Service::kWriteProperty;
          w.src_device = 1000 + static_cast<std::uint32_t>(src);
          w.dst_device = static_cast<std::uint32_t>(1001 + src);
          w.property = "v";
          w.value = 5.0;
          fabric.post(src, w);
        });
      }
      fabric.run_until(sim::sec(1));
      (order == 0 ? obs_ab : obs_ba) = observe(fabric);
    }
    EXPECT_GT(obs_ab.delivered, 0u);
    EXPECT_GT(obs_ab.drop_loss, 0u);  // the lossy profiles actually fired
    EXPECT_TRUE(obs_ab == obs_ba);
  }
}

// --- hierarchy: per-tier COV batching and segmentation -------------------

TEST(FabricSync, TreeBatchesCovPerTierWithTierHistograms) {
  core::FabricOptions opts;
  opts.zones = 8;
  opts.topology = Kind::kTree;
  opts.floors = 2;
  opts.seed = 9;
  opts.duration = sim::minutes(8);
  const auto r = core::run_fabric(opts);

  // Zones fan into the floor head-ends...
  EXPECT_GT(r.floor_covs, 0u);
  // ...which push ONE averaged value per flush period upstream: far
  // fewer tier-2 notifications than absorbed zone samples.
  EXPECT_GT(r.cov_count, r.floor_covs);  // total = zone->floor + floor->bldg
  const std::uint64_t floor_to_building = r.cov_count - r.floor_covs;
  EXPECT_GT(floor_to_building, 0u);
  EXPECT_LT(floor_to_building, r.floor_covs);
  // Both per-tier latency histograms populated in the merged export.
  EXPECT_NE(r.metrics_json.find("fabric.cov.zone_to_floor_us"),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("fabric.cov.floor_to_building_us"),
            std::string::npos);
  EXPECT_EQ(r.causality_violations, 0u);
  EXPECT_EQ(r.topology, "tree");
}

TEST(FabricSync, TreeSegmentationContainsTheSpoof) {
  core::FabricOptions opts;
  opts.zones = 6;
  opts.topology = Kind::kTree;
  opts.floors = 2;
  opts.seed = 4;
  opts.duration = sim::minutes(14);
  opts.attack = core::FabricAttack::kSpoofWrite;
  opts.attack_at = sim::minutes(10);
  const auto r = core::run_fabric(opts);

  // Flat fabric: the bare Linux zones fall to the spoof. Tree fabric:
  // there is no zone-to-zone wire, so even the Linux zones never see
  // the forged write — containment by segmentation, not by crypto.
  for (const auto& row : r.rows) {
    EXPECT_FALSE(row.attack_delivered) << "zone " << row.zone;
  }
  EXPECT_GT(r.drop_unroutable, 0u);
}

TEST(FabricSync, CampusShardsAcrossJobsByteIdentically) {
  core::FabricOptions opts;
  opts.zones = 12;
  opts.topology = Kind::kCampus;
  opts.floors = 2;
  opts.buildings = 3;
  opts.seed = 31;
  opts.duration = sim::minutes(5);
  opts.lite_zones = true;  // engine focus; kernels not needed here

  opts.jobs = 1;
  const auto seq = core::run_fabric(opts);
  opts.jobs = 4;
  const auto par = core::run_fabric(opts);

  EXPECT_GT(seq.delivered, 0u);
  EXPECT_EQ(seq.nodes, 3 + 6 + 12);  // heads + floors + zones
  EXPECT_EQ(seq.trace_hash, par.trace_hash);
  EXPECT_EQ(seq.metrics_json, par.metrics_json);
  EXPECT_EQ(seq.spans_json, par.spans_json);
  EXPECT_EQ(seq.health_json, par.health_json);
  EXPECT_EQ(seq.causality_violations, 0u);
}

TEST(FabricSync, EpochModeStillDeliversTheBasics) {
  net::Fabric fabric(3);
  fabric.set_sync(net::SyncMode::kEpoch);
  const int a = fabric.add_node(1);
  const int b = fabric.add_node(2);
  net::BacnetDevice console(1, "console");
  net::BacnetDevice zone(100, "zone0");
  zone.set_property("zone.setpoint", 21.0);
  fabric.attach(a, console);
  fabric.attach(b, zone);

  fabric.machine(a).at(sim::msec(10), [&] {
    net::BacnetMsg w;
    w.service = Service::kWriteProperty;
    w.src_device = 1;
    w.dst_device = 100;
    w.property = "zone.setpoint";
    w.value = 24.5;
    fabric.post(a, w);
  });
  fabric.run_until(sim::msec(40));
  EXPECT_DOUBLE_EQ(zone.property("zone.setpoint"), 24.5);
  EXPECT_EQ(fabric.delivered(), 2u);  // write + ack
  EXPECT_EQ(fabric.causality_violations(), 0u);
}
