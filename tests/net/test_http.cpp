#include "net/http.hpp"

#include <gtest/gtest.h>

namespace net = mkbas::net;
namespace sim = mkbas::sim;

TEST(HttpConsole, SubmitPollRespondRoundTrip) {
  net::HttpConsole console;
  const int id = console.submit(sim::sec(1), {"GET", "/status", ""});
  ASSERT_GE(id, 0);
  const auto polled = console.poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(*polled, id);
  EXPECT_EQ(console.request(*polled).path, "/status");
  console.respond(*polled, sim::sec(2), {200, "ok"});
  const auto& ex = console.exchange(id);
  EXPECT_EQ(ex.submitted, sim::sec(1));
  EXPECT_EQ(ex.answered, sim::sec(2));
  EXPECT_EQ(ex.response.status, 200);
}

TEST(HttpConsole, PollIsFifo) {
  net::HttpConsole console;
  console.submit(0, {"GET", "/a", ""});
  console.submit(0, {"GET", "/b", ""});
  EXPECT_EQ(console.request(*console.poll()).path, "/a");
  EXPECT_EQ(console.request(*console.poll()).path, "/b");
  EXPECT_FALSE(console.poll().has_value());
}

TEST(HttpConsole, BacklogBoundRefusesConnections) {
  net::HttpConsole console;
  int accepted = 0;
  for (std::size_t i = 0; i < net::HttpConsole::kBacklog + 5; ++i) {
    if (console.submit(0, {"GET", "/", ""}) >= 0) ++accepted;
  }
  EXPECT_EQ(accepted, static_cast<int>(net::HttpConsole::kBacklog));
  EXPECT_EQ(console.refused_count(), 5u);
}

TEST(HttpConsole, UnansweredExchangesStayMarked) {
  net::HttpConsole console;
  const int id = console.submit(sim::sec(1), {"GET", "/status", ""});
  EXPECT_EQ(console.exchange(id).answered, -1);
}
