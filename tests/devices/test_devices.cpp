#include "devices/devices.hpp"

#include <gtest/gtest.h>

namespace devices = mkbas::devices;
namespace physics = mkbas::physics;
namespace sim = mkbas::sim;

TEST(Bmp180, QuantizesToTenthsOfADegree) {
  EXPECT_DOUBLE_EQ(devices::Bmp180Sensor::quantize(21.449), 21.4);
  EXPECT_DOUBLE_EQ(devices::Bmp180Sensor::quantize(21.45), 21.5);
  EXPECT_DOUBLE_EQ(devices::Bmp180Sensor::quantize(-3.26), -3.3);
}

TEST(Bmp180, ReadingsTrackTrueTemperature) {
  physics::RoomModel room({.initial_temp_c = 22.0});
  sim::Rng rng(1);
  devices::Bmp180Sensor sensor(room, rng, 0.08);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += sensor.read_temperature_c();
  EXPECT_NEAR(sum / 1000.0, 22.0, 0.05);
}

TEST(Bmp180, NoiseFreeSensorIsExactAfterQuantization) {
  physics::RoomModel room({.initial_temp_c = 21.5});
  sim::Rng rng(1);
  devices::Bmp180Sensor sensor(room, rng, 0.0);
  EXPECT_DOUBLE_EQ(sensor.read_temperature_c(), 21.5);
}

TEST(Heater, RecordsTransitions) {
  devices::HeaterActuator h(1000.0);
  EXPECT_FALSE(h.is_on());
  h.set_on(true, sim::sec(1));
  h.set_on(true, sim::sec(2));  // duplicate command: no transition
  h.set_on(false, sim::sec(3));
  ASSERT_EQ(h.transitions().size(), 2u);
  EXPECT_EQ(h.transitions()[0].time, sim::sec(1));
  EXPECT_TRUE(h.transitions()[0].on);
  EXPECT_EQ(h.transitions()[1].time, sim::sec(3));
  EXPECT_FALSE(h.transitions()[1].on);
}

TEST(Heater, FailedHeaterProducesNoHeat) {
  devices::HeaterActuator h(1000.0);
  h.set_on(true, 0);
  EXPECT_DOUBLE_EQ(h.effective_output_w(), 1000.0);
  h.fail();
  EXPECT_TRUE(h.is_on());  // still commanded on
  EXPECT_DOUBLE_EQ(h.effective_output_w(), 0.0);
  h.repair();
  EXPECT_DOUBLE_EQ(h.effective_output_w(), 1000.0);
}

TEST(AlarmLed, TogglesAndRecords) {
  devices::AlarmLed led;
  led.set_on(true, sim::sec(5));
  EXPECT_TRUE(led.is_on());
  led.set_on(false, sim::sec(6));
  EXPECT_FALSE(led.is_on());
  ASSERT_EQ(led.transitions().size(), 2u);
}

TEST(PlantCoupler, IntegratesRoomAgainstHeaterState) {
  sim::Machine m;
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 10.0});
  room.set_outdoor_profile(physics::constant_outdoor(0.0));
  devices::HeaterActuator heater(3000.0);
  devices::AlarmLed alarm;
  devices::PlantCoupler coupler(m, room, heater, alarm);
  heater.set_on(true, 0);
  m.run_until(sim::minutes(30));
  EXPECT_GT(room.temperature_c(), 15.0);  // warmed well above start
  ASSERT_FALSE(coupler.history().empty());
  const auto& last = coupler.history().back();
  EXPECT_TRUE(last.heater_on);
  EXPECT_NEAR(last.true_temp_c, room.temperature_c(), 1e-9);
  // History is time-ordered and strictly increasing.
  for (std::size_t i = 1; i < coupler.history().size(); ++i) {
    EXPECT_GT(coupler.history()[i].time, coupler.history()[i - 1].time);
  }
}

TEST(PlantCoupler, HeaterOffMeansCooling) {
  sim::Machine m;
  physics::RoomModel room({.capacitance_j_per_k = 1e5,
                           .loss_w_per_k = 100.0,
                           .initial_temp_c = 25.0});
  room.set_outdoor_profile(physics::constant_outdoor(5.0));
  devices::HeaterActuator heater;
  devices::AlarmLed alarm;
  devices::PlantCoupler coupler(m, room, heater, alarm);
  m.run_until(sim::minutes(60));
  EXPECT_LT(room.temperature_c(), 25.0);
}
