#include "camkes/camkes.hpp"

#include <gtest/gtest.h>

#include "aadl/parser.hpp"
#include "aadl/scenario_model.hpp"

namespace camkes = mkbas::camkes;
namespace sel4 = mkbas::sel4;
namespace sim = mkbas::sim;
namespace aadl = mkbas::aadl;

using camkes::CamkesSystem;
using camkes::Runtime;
using sel4::Sel4Error;
using sel4::Sel4Msg;

TEST(Camkes, RpcCallRoundTrip) {
  sim::Machine m;
  CamkesSystem sys(m);
  double answer = 0.0;
  sys.add_component("server", [](Runtime& rt) {
    for (;;) {
      auto in = rt.await();
      if (in.status != Sel4Error::kOk) break;
      Sel4Msg rep;
      rep.push_f64(in.msg.mr_f64(0) + 1.0);
      if (rt.reply(rep) != Sel4Error::kOk) break;
    }
  });
  sys.add_component("client", [&](Runtime& rt) {
    Sel4Msg msg;
    msg.push_f64(41.0);
    ASSERT_EQ(rt.rpc_call("compute", msg), Sel4Error::kOk);
    answer = msg.mr_f64(0);
  });
  sys.connect("c1", "client", "compute", "server", "serve");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_DOUBLE_EQ(answer, 42.0);
}

TEST(Camkes, ServerDemultiplexesInterfacesByBadge) {
  sim::Machine m;
  CamkesSystem sys(m);
  std::vector<std::string> seen_ifaces, seen_peers;
  sys.add_component("server", [&](Runtime& rt) {
    for (int i = 0; i < 2; ++i) {
      auto in = rt.await();
      ASSERT_EQ(in.status, Sel4Error::kOk);
      seen_ifaces.push_back(in.iface);
      seen_peers.push_back(in.from);
      rt.reply(Sel4Msg{});
    }
  });
  sys.add_component("alice", [&](Runtime& rt) {
    Sel4Msg msg;
    rt.rpc_call("port_a", msg);
  });
  sys.add_component("bob", [&](Runtime& rt) {
    rt.machine().sleep_for(sim::msec(1));
    Sel4Msg msg;
    rt.rpc_call("port_b", msg);
  });
  sys.connect("ca", "alice", "port_a", "server", "iface_a");
  sys.connect("cb", "bob", "port_b", "server", "iface_b");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(seen_ifaces, (std::vector<std::string>{"iface_a", "iface_b"}));
  EXPECT_EQ(seen_peers, (std::vector<std::string>{"alice", "bob"}));
}

TEST(Camkes, CapDlSpecMatchesLiveDistribution) {
  sim::Machine m;
  CamkesSystem sys(m);
  sys.add_component("server", [](Runtime& rt) {
    auto in = rt.await();
    if (in.status == Sel4Error::kOk) rt.reply(Sel4Msg{});
  });
  sys.add_component("client", [](Runtime& rt) {
    Sel4Msg msg;
    rt.rpc_call("x", msg);
  });
  sys.connect("c1", "client", "x", "server", "serve");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_TRUE(sys.verify_distribution());
  EXPECT_EQ(m.trace().count_tag("capdl.verified"), 1u);
  const std::string text = sys.capdl().to_text();
  EXPECT_NE(text.find("ep_server = ep"), std::string::npos);
  EXPECT_NE(text.find("cnode_client"), std::string::npos);
  EXPECT_NE(text.find("W, G, badge: 1"), std::string::npos);
}

TEST(Camkes, ComponentsHoldOnlyPlannedCaps) {
  // The §IV.D.3 property at the framework level: a component's CSpace
  // contains exactly what the bootstrap installed.
  sim::Machine m;
  CamkesSystem sys(m);
  std::vector<int> client_caps;
  sys.add_component("server", [](Runtime& rt) {
    auto in = rt.await();
    if (in.status == Sel4Error::kOk) rt.reply(Sel4Msg{});
  });
  sys.add_component("client", [&](Runtime& rt) {
    client_caps = rt.enumerate_own_caps();
    Sel4Msg msg;
    rt.rpc_call("x", msg);
  });
  sys.connect("c1", "client", "x", "server", "serve");
  sys.instantiate();
  m.run_until(sim::sec(1));
  // Exactly one cap: the badged endpoint send cap at slot 3.
  EXPECT_EQ(client_caps, (std::vector<int>{3}));
}

TEST(Camkes, CallToAbsentInterfaceFailsCleanly) {
  sim::Machine m;
  CamkesSystem sys(m);
  Sel4Error r = Sel4Error::kOk;
  sys.add_component("lonely", [&](Runtime& rt) {
    Sel4Msg msg;
    r = rt.rpc_call("nonexistent", msg);
  });
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Sel4Error::kEmptySlot);
}

TEST(Camkes, NonServerComponentAwaitFails) {
  sim::Machine m;
  CamkesSystem sys(m);
  Sel4Error r = Sel4Error::kOk;
  sys.add_component("pure-client", [&](Runtime& rt) {
    r = rt.await().status;
  });
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Sel4Error::kEmptySlot);
}

TEST(Camkes, LoadsCompiledAadlSystem) {
  aadl::Parser p(aadl::temp_control_aadl());
  auto model = p.parse();
  ASSERT_TRUE(p.ok());
  std::vector<aadl::Diagnostic> diags;
  auto compiled = aadl::compile(model, "TempControl.impl", diags);
  ASSERT_TRUE(compiled.has_value());

  sim::Machine m;
  CamkesSystem sys(m);
  bool ctl_got_sensor_data = false;
  std::map<std::string, std::function<void(Runtime&)>> bodies;
  bodies["tempProc"] = [&](Runtime& rt) {
    auto in = rt.await();
    if (in.status == Sel4Error::kOk && in.iface == "sensorIn") {
      ctl_got_sensor_data = true;
      rt.reply(Sel4Msg{});
    }
  };
  bodies["tempSensProc"] = [](Runtime& rt) {
    Sel4Msg msg;
    msg.push_f64(21.0);
    rt.rpc_call("sensorOut", msg);
  };
  sys.load_compiled_system(*compiled, bodies);
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_TRUE(ctl_got_sensor_data);
  EXPECT_TRUE(sys.verify_distribution());
}

TEST(Camkes, EventConnectorSignalsAcrossComponents) {
  sim::Machine m;
  CamkesSystem sys(m);
  int fired = 0;
  sys.add_component("producer", [&](Runtime& rt) {
    for (int i = 0; i < 3; ++i) {
      rt.machine().sleep_for(sim::msec(5));
      ASSERT_EQ(rt.emit("tick"), Sel4Error::kOk);
    }
  });
  sys.add_component("consumer", [&](Runtime& rt) {
    for (int i = 0; i < 3; ++i) {
      std::uint64_t bits = 0;
      ASSERT_EQ(rt.wait_event("tock", &bits), Sel4Error::kOk);
      EXPECT_NE(bits, 0u);
      ++fired;
    }
  });
  sys.connect_event("ev", "producer", "tick", "consumer", "tock");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sys.verify_distribution());
}

TEST(Camkes, DataportSharesDataOneWay) {
  sim::Machine m;
  CamkesSystem sys(m);
  std::string received;
  Sel4Error reverse_write = Sel4Error::kOk;
  sys.add_component("writer", [&](Runtime& rt) {
    const char msg[] = "shared-through-frame";
    ASSERT_EQ(rt.dataport_write("shm", 0, msg, sizeof msg), Sel4Error::kOk);
    rt.emit("ready");
  });
  sys.add_component("reader", [&](Runtime& rt) {
    ASSERT_EQ(rt.wait_event("ready", nullptr), Sel4Error::kOk);
    char buf[32] = {};
    ASSERT_EQ(rt.dataport_read("shm", 0, buf, sizeof buf), Sel4Error::kOk);
    received = buf;
    // The reader's mapping is read-only: writes must fault.
    reverse_write = rt.dataport_write("shm", 0, "tamper", 6);
  });
  sys.connect_dataport("dp", "writer", "shm", "reader", "shm");
  sys.connect_event("ev", "writer", "ready", "reader", "ready");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(received, "shared-through-frame");
  EXPECT_EQ(reverse_write, Sel4Error::kNoRights);
  EXPECT_TRUE(sys.verify_distribution());
}

TEST(Camkes, MixedConnectorCapDlIsVerified) {
  sim::Machine m;
  CamkesSystem sys(m);
  sys.add_component("a", [](Runtime& rt) {
    Sel4Msg msg;
    rt.rpc_call("r", msg);
    rt.emit("e");
    rt.dataport_write("d", 0, "x", 1);
  });
  sys.add_component("b", [](Runtime& rt) {
    auto in = rt.await();
    if (in.status == Sel4Error::kOk) rt.reply(Sel4Msg{});
    rt.wait_event("e_in", nullptr);
  });
  sys.connect("c1", "a", "r", "b", "serve");
  sys.connect_event("c2", "a", "e", "b", "e_in");
  sys.connect_dataport("c3", "a", "d", "b", "d_in");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_TRUE(sys.verify_distribution());
  const std::string text = sys.capdl().to_text();
  EXPECT_NE(text.find("ntfn_c2 = notification"), std::string::npos);
  EXPECT_NE(text.find("frame_c3 = frame (4k)"), std::string::npos);
}

TEST(Camkes, RpcSendNbDropsWhenServerBusy) {
  sim::Machine m;
  CamkesSystem sys(m);
  Sel4Error r = Sel4Error::kOk;
  sys.add_component("server", [](Runtime& rt) {
    rt.machine().sleep_for(sim::sec(10));  // never receives
  });
  sys.add_component("client", [&](Runtime& rt) {
    Sel4Msg msg;
    r = rt.rpc_send_nb("x", msg);
  });
  sys.connect("c1", "client", "x", "server", "serve");
  sys.instantiate();
  m.run_until(sim::sec(1));
  EXPECT_EQ(r, Sel4Error::kNotReady);
}
