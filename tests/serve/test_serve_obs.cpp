// The serve-plane observability surface (DESIGN.md §14): request span
// chains keyed by cell key and their telescoping invariant, the
// Prometheus scrape, the SSE event stream (anomaly surge before the
// execution verdict, exactly one execution for a coalesced key), the
// slow-request flight recorder, store eviction accounting, and the
// golden /status shape — all while the deterministic bundle stays
// byte-identical to a direct CLI dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <cstdint>
#include <map>
#include <netinet/in.h>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "campaign/run_request.hpp"
#include "core/jsonv.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/events.hpp"
#include "serve/tracer.hpp"

namespace core = mkbas::core;
namespace obs = mkbas::obs;
namespace serve = mkbas::serve;

namespace {

core::ExperimentRequest fabric_request(const std::string& attack) {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kFabric;
  r.zones = 3;
  r.seed = 7;
  r.attack = attack;
  return r;
}

std::string fabric_body(const std::string& attack, int seed = 7) {
  return "{\"attack\":\"" + attack +
         "\",\"mode\":\"fabric\",\"seed\":" + std::to_string(seed) +
         ",\"zones\":3}";
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

serve::HttpRequest make_req(const std::string& method, const std::string& path,
                            const std::string& body = "",
                            const std::string& query = "") {
  serve::HttpRequest r;
  r.method = method;
  r.path = path;
  r.query = query;
  r.body = body;
  r.client = "obs-test";
  return r;
}

template <typename Fn>
std::string poll_until_ready(Fn&& fn, int attempts = 300) {
  std::string body;
  for (int i = 0; i < attempts; ++i) {
    body = fn();
    if (contains(body, "\"status\":\"ready\"") ||
        contains(body, "\"status\":\"failed\"")) {
      return body;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return body;
}

/// Same minimal exposition grammar check as tests/obs/test_prometheus
/// (CI re-validates with an independent python parser).
bool valid_exposition(const std::string& text, std::string* why) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      *why = "missing trailing newline";
      return false;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) {
      *why = "bad metric name: " + line;
      return false;
    }
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) {
        *why = "unclosed labels: " + line;
        return false;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ' || i + 1 >= line.size()) {
      *why = "no sample value: " + line;
      return false;
    }
  }
  return true;
}

/// One parsed SSE frame from a raw /events byte stream.
struct SseFrame {
  std::string type;
  std::string data;
};

std::vector<SseFrame> parse_sse(const std::string& bytes) {
  std::vector<SseFrame> out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t end = bytes.find("\n\n", pos);
    if (end == std::string::npos) break;
    SseFrame f;
    std::size_t lp = pos;
    while (lp < end) {
      std::size_t eol = bytes.find('\n', lp);
      if (eol == std::string::npos || eol > end) eol = end;
      const std::string line = bytes.substr(lp, eol - lp);
      if (line.rfind("event: ", 0) == 0) f.type = line.substr(7);
      if (line.rfind("data: ", 0) == 0) f.data = line.substr(6);
      lp = eol + 1;
    }
    if (!f.type.empty() || !f.data.empty()) out.push_back(f);
    pos = end + 2;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// EventHub: bounded fan-out with drop accounting, no daemon involved.

TEST(EventHub, DeliversFramesAndAccountsDrops) {
  serve::EventHub hub;
  std::vector<std::string> frames;
  bool accept = true;
  hub.set_sink([&](std::uint64_t, const std::string& frame, std::size_t) {
    if (accept) frames.push_back(frame);
    return accept;
  });

  hub.publish("request", "{\"noone\":true}");  // no subscribers: not counted
  EXPECT_EQ(hub.published(), 0u);

  hub.subscribe(1);
  EXPECT_EQ(hub.subscribers(), 1u);
  hub.publish("request", "{\"n\":1}");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(contains(frames[0], "event: request\n"));
  EXPECT_TRUE(contains(frames[0], "\ndata: {\"n\":1}\n\n"));
  EXPECT_EQ(hub.delivered(), 1u);

  // A full buffer drops the frame; the subscriber hears how many it
  // lost as soon as a frame goes through again.
  accept = false;
  hub.publish("cell", "{\"n\":2}");
  hub.publish("cell", "{\"n\":3}");
  EXPECT_EQ(hub.dropped(), 2u);
  accept = true;
  hub.publish("cell", "{\"n\":4}");
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_TRUE(contains(frames[1], "event: dropped\n")) << frames[1];
  EXPECT_TRUE(contains(frames[1], "{\"dropped\":2}")) << frames[1];
  EXPECT_TRUE(contains(frames[2], "{\"n\":4}"));

  hub.unsubscribe(1);
  EXPECT_EQ(hub.subscribers(), 0u);
}

// ---------------------------------------------------------------------
// ServeTracer in isolation: span chains, flush lifecycle, forensics.

TEST(ServeTracer, RecordsTelescopingChainKeyedByCellKey) {
  serve::ServeTracer tr;
  tr.set_slow_us(1);  // high bar in µs of host time: nothing fires here
  serve::ServeTracer::RequestTimes t;
  t.ingress_us = 100;
  t.parsed_us = 110;
  t.lookup_start_us = 115;
  t.lookup_end_us = 130;
  t.serialize_start_us = 132;
  t.serialize_end_us = 140;
  const std::uint64_t key = 0xabcdef12u;
  const std::uint64_t token = tr.record_request("run", key, t, true);
  ASSERT_NE(token, 0u);
  EXPECT_EQ(tr.open_flushes(), 1u);
  tr.flush_done(token, 155);
  EXPECT_EQ(tr.open_flushes(), 0u);
  tr.flush_done(token, 200);  // double-fire is ignored

  tr.queue_enter(key, 160);
  tr.queue_exit(key, 180);
  tr.execute_begin(key, 181);
  EXPECT_EQ(tr.execute_end(key, 221, false), 40u);

  const obs::SpanStore snap = tr.snapshot();
  std::map<std::string, const obs::Span*> by_name;
  const obs::Span* root = nullptr;
  for (const auto& s : snap.spans()) {
    EXPECT_EQ(s.trace_id, key) << s.what();
    if (s.what() == "serve.req.run") {
      root = &s;
    } else {
      by_name[s.what()] = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span, 0u);
  EXPECT_EQ(root->start, 100);
  EXPECT_EQ(root->end, 155);  // held open until the flush observer fired
  for (const char* n : {"serve.parse", "serve.lookup", "serve.serialize",
                        "serve.flush"}) {
    ASSERT_TRUE(by_name.count(n)) << n;
    EXPECT_EQ(by_name[n]->parent_span, root->span_id) << n;
    EXPECT_GE(by_name[n]->start, root->start) << n;
    EXPECT_LE(by_name[n]->end, root->end) << n;
  }
  ASSERT_TRUE(by_name.count("serve.queue_wait"));
  ASSERT_TRUE(by_name.count("serve.execute"));
  EXPECT_EQ(by_name["serve.execute"]->end -
                by_name["serve.execute"]->start,
            40);
  EXPECT_EQ(tr.requests_recorded(), 1u);
}

TEST(ServeTracer, SlowThresholdZeroSnapshotsEveryFlush) {
  serve::ServeTracer tr;
  tr.set_slow_us(0);
  serve::ServeTracer::RequestTimes t;
  t.lookup_start_us = 10;
  t.lookup_end_us = 20;
  t.serialize_start_us = 21;
  t.serialize_end_us = 30;
  const std::uint64_t token = tr.record_request("status", 0, t, true);
  tr.flush_done(token, 45);
  EXPECT_EQ(tr.slow_triggers(), 1u);
  const std::string flight = tr.flight_json();
  EXPECT_TRUE(contains(flight, "\"reason\":\"serve.slow\"")) << flight;
  EXPECT_TRUE(contains(flight, "\\\"stage\\\":\\\"flush\\\"")) << flight;
  EXPECT_FALSE(contains(flight, "\"snapshots\":[]")) << flight;
}

TEST(ServeTracer, DisabledTracerRecordsNothing) {
  serve::ServeTracer tr;
  tr.set_enabled(false);
  serve::ServeTracer::RequestTimes t;
  t.lookup_start_us = 10;
  t.lookup_end_us = 20;
  EXPECT_EQ(tr.record_request("run", 9, t, true), 0u);
  tr.queue_enter(9, 30);
  EXPECT_EQ(tr.execute_end(9, 99, false), 0u);
  EXPECT_EQ(tr.snapshot().size(), 0u);
  EXPECT_EQ(tr.requests_recorded(), 0u);
  EXPECT_EQ(tr.slow_triggers(), 0u);
}

// ---------------------------------------------------------------------
// Daemon surface, in-process (no sockets).

TEST(DaemonObs, StatusGoldenKeyShape) {
  serve::DaemonOptions opts;
  serve::Daemon d(opts);
  const auto r = d.handle(make_req("GET", "/status"));
  ASSERT_EQ(r.status, 200);
  core::Json j;
  std::string err;
  ASSERT_TRUE(core::json_parse(r.body, &j, &err)) << err;
  ASSERT_TRUE(j.is_object());
  // The golden shape: clients key on these — additions must land here
  // AND bump the schema story deliberately.
  const std::vector<std::string> expect = {
      "batch",       "coalesced", "evictions",      "executions", "hits",
      "jobs",        "metrics",   "misses",         "queue_depth", "replays",
      "requests",    "schema_version", "steals",    "store_size"};
  std::vector<std::string> got;
  for (const auto& [k, v] : j.members) got.push_back(k);
  EXPECT_EQ(got, expect);
  const core::Json* sv = j.find("schema_version");
  ASSERT_NE(sv, nullptr);
  EXPECT_TRUE(sv->is_u64());
  // The embedded registry export carries its own schema_version.
  const core::Json* metrics = j.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->is_object());
  EXPECT_NE(metrics->find("schema_version"), nullptr);
}

TEST(DaemonObs, MetricsScrapeIsValidPrometheus) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", fabric_body("spoof-write")))
        .body;
  });
  const auto m = d.handle(make_req("GET", "/metrics"));
  ASSERT_EQ(m.status, 200);
  EXPECT_EQ(m.content_type, "text/plain; version=0.0.4; charset=utf-8");
  std::string why;
  EXPECT_TRUE(valid_exposition(m.body, &why)) << why;
  for (const char* name :
       {"serve_requests_total", "serve_executions_total",
        "serve_store_misses_total", "serve_store_hits_total",
        "serve_queue_depth", "serve_store_size", "serve_events_published",
        "serve_trace_requests",
        "# TYPE serve_http_latency_us_run histogram",
        "# TYPE serve_queue_wait_us histogram",
        "# TYPE serve_exec_wall_us histogram",
        "serve_exec_wall_us_count 1"}) {
    EXPECT_TRUE(contains(m.body, name)) << name << "\n" << m.body;
  }
  d.shutdown();
}

TEST(DaemonObs, FlightRecorderCapturesSlowExecutions) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 1;
  opts.slow_ms = 0;  // everything is slow: forensics on each execution
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", fabric_body("spoof-write")))
        .body;
  });
  const auto f = d.handle(make_req("GET", "/flight"));
  ASSERT_EQ(f.status, 200);
  EXPECT_TRUE(contains(f.body, "\"reason\":\"serve.slow\"")) << f.body;
  EXPECT_FALSE(contains(f.body, "\"snapshots\":[]")) << f.body;
  const auto t = d.handle(make_req("GET", "/trace"));
  ASSERT_EQ(t.status, 200);
  EXPECT_TRUE(contains(t.body, "serve.req.run")) << t.body.substr(0, 400);
  EXPECT_TRUE(contains(t.body, "serve.execute"));
  d.shutdown();
}

TEST(DaemonObs, StoreCapEvictsOldestTerminalCell) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 1;
  opts.store_cap = 1;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", fabric_body("spoof-write", 7)))
        .body;
  });
  poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", fabric_body("spoof-write", 8)))
        .body;
  });
  EXPECT_EQ(d.store().size(), 1u);
  EXPECT_EQ(d.store().evictions(), 1u);

  auto a = fabric_request("spoof-write");
  auto b = fabric_request("spoof-write");
  b.seed = 8;
  EXPECT_EQ(d.handle(make_req("GET", "/result/" + a.cell_key_hex())).status,
            404);
  EXPECT_EQ(d.handle(make_req("GET", "/result/" + b.cell_key_hex())).status,
            200);
  EXPECT_TRUE(
      contains(d.handle(make_req("GET", "/status")).body, "\"evictions\":1"));
  d.shutdown();
}

TEST(DaemonObs, BundleBytesAreUnaffectedByTracing) {
  // Tracing and forensics at their most aggressive must not leak a
  // single host-time byte into the deterministic bundle.
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  opts.slow_ms = 0;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", fabric_body("flood"))).body;
  });
  const auto direct = core::run_request(fabric_request("flood"),
                                        core::all_deterministic_artifacts());
  const std::string key = fabric_request("flood").cell_key_hex();
  for (const auto& [name, text] : direct.artifacts) {
    const auto r =
        d.handle(make_req("GET", "/result/" + key, "", "artifact=" + name));
    EXPECT_EQ(r.status, 200) << name;
    EXPECT_EQ(r.body, text) << name;
  }
  // The bundle's Prometheus artifact re-renders the metrics artifact.
  ASSERT_TRUE(direct.artifacts.count("metrics_prom"));
  std::string perr;
  EXPECT_EQ(direct.artifacts.at("metrics_prom"),
            core::prometheus_from_metrics_json(direct.artifacts.at("metrics"),
                                               &perr))
      << perr;
  d.shutdown();
}

// ---------------------------------------------------------------------
// Over real sockets: the telescoping invariant and the SSE stream.

TEST(DaemonObsSocket, RequestSpansTelescope) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  serve::HttpClient c(d.port(), "tracer");
  poll_until_ready([&] {
    serve::HttpResponse resp;
    std::string cerr;
    if (!c.post("/run", fabric_body("spoof-write"), &resp, &cerr)) return cerr;
    return resp.body;
  });
  const std::uint64_t key = fabric_request("spoof-write").cell_key();
  serve::HttpResponse rr;
  std::string cerr;
  ASSERT_TRUE(c.get("/result/" + fabric_request("spoof-write").cell_key_hex(),
                    &rr, &cerr))
      << cerr;

  // Wait for the last flush observer to close its root span.
  obs::SpanStore snap;
  std::vector<const obs::Span*> roots;
  for (int i = 0; i < 100; ++i) {
    snap = d.trace_snapshot();
    roots.clear();
    std::size_t open_result_roots = 0;
    for (const auto& s : snap.spans()) {
      if (s.trace_id != key) continue;
      if (s.parent_span == 0 && s.what().rfind("serve.req.", 0) == 0) {
        roots.push_back(&s);
        if (s.what() == "serve.req.result") ++open_result_roots;
      }
    }
    if (!roots.empty() && open_result_roots > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    roots.clear();
  }
  ASSERT_FALSE(roots.empty());

  // Per request: the stage children nest inside their root and their
  // durations telescope (sum <= root total, within rounding).
  for (const obs::Span* root : roots) {
    std::int64_t child_sum = 0;
    for (const auto& s : snap.spans()) {
      if (s.parent_span != root->span_id) continue;
      EXPECT_GE(s.start, root->start) << s.what();
      EXPECT_LE(s.end, root->end) << s.what();
      child_sum += s.end - s.start;
    }
    const std::int64_t total = root->end - root->start;
    EXPECT_LE(child_sum, total + total / 20 + 5) << root->what();
  }

  // Whole-trace envelope: queue wait + execution + serialization all
  // fit inside first-ingress .. last-flush (the acceptance bound: within
  // 5%). The cell key ties them into one trace across requests.
  std::int64_t lo = 0, hi = 0, qes = 0;
  bool any = false, saw_queue = false, saw_exec = false;
  for (const auto& s : snap.spans()) {
    if (s.trace_id != key) continue;
    if (!any || s.start < lo) lo = s.start;
    if (!any || s.end > hi) hi = s.end;
    any = true;
    if (s.what() == "serve.queue_wait") {
      saw_queue = true;
      qes += s.end - s.start;
    }
    if (s.what() == "serve.execute") {
      saw_exec = true;
      qes += s.end - s.start;
    }
    if (s.what() == "serve.serialize") qes += s.end - s.start;
  }
  ASSERT_TRUE(any);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_exec);
  const std::int64_t envelope = hi - lo;
  EXPECT_LE(qes, envelope + envelope / 20 + 5);
  d.shutdown();
}

TEST(DaemonObsSocket, SseStreamsAnomalySurgeBeforeSingleExecution) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;

  // Raw SSE subscriber (HttpClient expects Content-Length responses).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(d.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  const std::string sub = "GET /events HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, sub.data(), sub.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(sub.size()));
  std::string stream;
  char buf[8192];
  // Read until the head comment arrives: subscription is then active.
  while (!contains(stream, ": mkbas serve event stream")) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "no SSE head";
    stream.append(buf, static_cast<std::size_t>(n));
  }

  // Four clients race one flood-fabric cell (anomaly-rich scenario).
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      serve::HttpClient c(d.port(), "racer-" + std::to_string(i));
      poll_until_ready([&] {
        serve::HttpResponse resp;
        std::string cerr;
        if (!c.post("/run", fabric_body("flood"), &resp, &cerr)) return cerr;
        return resp.body;
      });
    });
  }
  for (auto& t : clients) t.join();

  // The run finished; drain the stream until the ready transition shows.
  while (!contains(stream, "\"state\":\"ready\"") &&
         !contains(stream, "\"state\":\"failed\"")) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    stream.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::vector<SseFrame> frames = parse_sse(stream);
  int executions = 0, anomalies = 0;
  int first_anomaly = -1, first_execution = -1, queued_at = -1;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames[i].type == "execution") {
      ++executions;
      if (first_execution < 0) first_execution = static_cast<int>(i);
    }
    if (frames[i].type == "health.anomaly") {
      ++anomalies;
      if (first_anomaly < 0) first_anomaly = static_cast<int>(i);
    }
    if (frames[i].type == "cell" && contains(frames[i].data, "queued") &&
        queued_at < 0) {
      queued_at = static_cast<int>(i);
    }
  }
  // Exactly one execution for the coalesced key; an anomaly surge is
  // visible BEFORE the execution verdict lands.
  EXPECT_EQ(executions, 1) << stream;
  EXPECT_GE(anomalies, 1) << stream;
  ASSERT_GE(first_execution, 0);
  ASSERT_GE(first_anomaly, 0);
  EXPECT_LT(first_anomaly, first_execution);
  EXPECT_GE(queued_at, 0);
  EXPECT_LT(queued_at, first_anomaly);
  const std::string key = fabric_request("flood").cell_key_hex();
  EXPECT_TRUE(contains(frames[static_cast<std::size_t>(first_execution)].data,
                       key));

  EXPECT_GE(d.events().published(), 4u);
  // The loop thread notices our hangup and unsubscribes the stream.
  for (int i = 0; i < 200 && d.events().subscribers() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(d.events().subscribers(), 0u);
  d.shutdown();
}
