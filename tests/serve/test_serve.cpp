// The experiment daemon: ResultStore lifecycle, in-process routing via
// Daemon::handle, and a full loopback-socket exercise — concurrent
// duplicate submissions must execute once, served bundles must be
// byte-identical to a direct run_request, and replay must verify it.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "campaign/run_request.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/result_store.hpp"

namespace core = mkbas::core;
namespace serve = mkbas::serve;

namespace {

/// A cheap request (3-zone fabric, ~1s of virtual time) all the daemon
/// tests share.
core::ExperimentRequest fabric_request() {
  core::ExperimentRequest r;
  r.mode = core::RequestMode::kFabric;
  r.zones = 3;
  r.seed = 7;
  r.attack = "spoof-write";
  return r;
}

const std::string kFabricBody =
    "{\"attack\":\"spoof-write\",\"mode\":\"fabric\",\"seed\":7,"
    "\"zones\":3}";

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Poll POST /run through `fn` until it reports ready (or attempts run
/// out), returning the final body.
template <typename Fn>
std::string poll_until_ready(Fn&& fn, int attempts = 200) {
  std::string body;
  for (int i = 0; i < attempts; ++i) {
    body = fn();
    if (contains(body, "\"status\":\"ready\"") ||
        contains(body, "\"status\":\"failed\"")) {
      return body;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return body;
}

}  // namespace

TEST(ResultStore, LifecycleAndCoalescing) {
  serve::ResultStore store;
  const auto req = fabric_request();
  const std::uint64_t key = req.cell_key();

  EXPECT_EQ(store.lookup(key).state, serve::ResultStore::State::kUnknown);
  EXPECT_EQ(store.submit(req), serve::ResultStore::Submit::kQueued);
  EXPECT_EQ(store.submit(req), serve::ResultStore::Submit::kCoalesced);
  EXPECT_EQ(store.submit(req), serve::ResultStore::Submit::kCoalesced);
  EXPECT_EQ(store.lookup(key).state, serve::ResultStore::State::kPending);

  serve::ResultBundle bundle;
  bundle.exit_code = 0;
  bundle.artifacts["summary"] = "{\"ok\":true}";
  store.complete(key, bundle);
  const auto e = store.lookup(key);
  EXPECT_EQ(e.state, serve::ResultStore::State::kReady);
  ASSERT_NE(e.bundle, nullptr);
  EXPECT_EQ(e.bundle->artifacts.at("summary"), "{\"ok\":true}");
  EXPECT_EQ(store.submit(req), serve::ResultStore::Submit::kHit);

  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.coalesced(), 2u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStore, FailedCellsAreTerminal) {
  serve::ResultStore store;
  auto req = fabric_request();
  ASSERT_EQ(store.submit(req), serve::ResultStore::Submit::kQueued);
  store.fail(req.cell_key(), "scenario exploded");
  const auto e = store.lookup(req.cell_key());
  EXPECT_EQ(e.state, serve::ResultStore::State::kFailed);
  EXPECT_EQ(e.error, "scenario exploded");
  EXPECT_EQ(store.submit(req), serve::ResultStore::Submit::kHit);
}

TEST(ResultStore, DifferentRequestsAreDifferentCells) {
  serve::ResultStore store;
  auto a = fabric_request();
  auto b = fabric_request();
  b.seed = 8;
  EXPECT_EQ(store.submit(a), serve::ResultStore::Submit::kQueued);
  EXPECT_EQ(store.submit(b), serve::ResultStore::Submit::kQueued);
  EXPECT_EQ(store.size(), 2u);
}

// ---------------------------------------------------------------------
// In-process routing (no sockets): Daemon::handle is exactly the HTTP
// surface, so the protocol can be unit-tested deterministically.

namespace {

serve::HttpRequest make_req(const std::string& method, const std::string& path,
                            const std::string& body = "",
                            const std::string& query = "") {
  serve::HttpRequest r;
  r.method = method;
  r.path = path;
  r.query = query;
  r.body = body;
  r.client = "test";
  return r;
}

}  // namespace

TEST(Daemon, RejectsBadRequestsWithFieldErrors) {
  serve::DaemonOptions opts;
  serve::Daemon d(opts);  // never started: handle() works standalone
  auto r = d.handle(make_req("POST", "/run", "{\"zoned\":16}"));
  EXPECT_EQ(r.status, 400);
  EXPECT_TRUE(contains(r.body, "unknown field"));
  EXPECT_TRUE(contains(r.body, "zones"));

  r = d.handle(make_req("POST", "/run", "not json"));
  EXPECT_EQ(r.status, 400);

  r = d.handle(make_req("GET", "/nope"));
  EXPECT_EQ(r.status, 404);

  r = d.handle(make_req("GET", "/result/zzzz"));
  EXPECT_EQ(r.status, 400);

  r = d.handle(make_req("GET", "/result/0123456789abcdef"));
  EXPECT_EQ(r.status, 404);
}

TEST(Daemon, QueuedThenReadyThenHit) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;

  auto first = d.handle(make_req("POST", "/run", kFabricBody));
  EXPECT_EQ(first.status, 202);
  EXPECT_TRUE(contains(first.body, "\"status\":\"queued\"")) << first.body;

  const std::string key = fabric_request().cell_key_hex();
  EXPECT_TRUE(contains(first.body, key)) << first.body;

  const std::string last = poll_until_ready([&] {
    return d.handle(make_req("POST", "/run", kFabricBody)).body;
  });
  EXPECT_TRUE(contains(last, "\"status\":\"ready\"")) << last;
  EXPECT_TRUE(contains(last, "\"exit_code\":0")) << last;
  EXPECT_EQ(d.executions(), 1u);

  // The cached bundle is byte-identical to a direct dispatch.
  const auto direct = core::run_request(fabric_request(),
                                        core::all_deterministic_artifacts());
  auto summary = d.handle(make_req("GET", "/result/" + key));
  EXPECT_EQ(summary.status, 200);
  EXPECT_EQ(summary.body, direct.artifacts.at("summary"));
  auto metrics =
      d.handle(make_req("GET", "/result/" + key, "", "artifact=metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.body, direct.artifacts.at("metrics"));
  auto missing =
      d.handle(make_req("GET", "/result/" + key, "", "artifact=nope"));
  EXPECT_EQ(missing.status, 404);
  EXPECT_TRUE(contains(missing.body, "available"));

  // Replay re-executes and verifies byte identity.
  auto replay = d.handle(make_req("GET", "/replay/" + key));
  EXPECT_EQ(replay.status, 200);
  EXPECT_TRUE(contains(replay.body, "\"identical\":true")) << replay.body;
  EXPECT_TRUE(contains(replay.body, "\"mismatched\":[]")) << replay.body;

  auto status = d.handle(make_req("GET", "/status"));
  EXPECT_EQ(status.status, 200);
  EXPECT_TRUE(contains(status.body, "\"executions\":1")) << status.body;
  EXPECT_TRUE(contains(status.body, "\"misses\":1")) << status.body;
  EXPECT_TRUE(contains(status.body, "\"serve.requests\"")) << status.body;
  d.shutdown();
}

TEST(Daemon, InvalidModeCombinationIs400NotACell) {
  serve::DaemonOptions opts;
  serve::Daemon d(opts);
  // kill is not a fabric attack: strict validation, nothing enqueued.
  auto r = d.handle(
      make_req("POST", "/run", "{\"attack\":\"kill\",\"mode\":\"fabric\"}"));
  EXPECT_EQ(r.status, 400);
  EXPECT_TRUE(contains(r.body, "attack")) << r.body;
  EXPECT_EQ(d.store().size(), 0u);
}

// ---------------------------------------------------------------------
// Full loopback exercise over real sockets.

TEST(DaemonSocket, ConcurrentDuplicatesExecuteOnce) {
  serve::DaemonOptions opts;
  opts.port = 0;  // ephemeral
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  const int port = d.port();
  ASSERT_GT(port, 0);

  // Four clients race the same request; exactly one execution may
  // happen, the rest must hit or coalesce.
  std::vector<std::thread> clients;
  std::vector<std::string> finals(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      serve::HttpClient c(port, "client-" + std::to_string(i));
      finals[static_cast<std::size_t>(i)] = poll_until_ready([&] {
        serve::HttpResponse resp;
        std::string cerr;
        if (!c.post("/run", kFabricBody, &resp, &cerr)) return cerr;
        return resp.body;
      });
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : finals) {
    EXPECT_TRUE(contains(f, "\"status\":\"ready\"")) << f;
  }
  EXPECT_EQ(d.executions(), 1u);
  EXPECT_EQ(d.store().size(), 1u);

  // Served artifacts equal a direct in-process run, byte for byte.
  const auto direct = core::run_request(fabric_request(),
                                        core::all_deterministic_artifacts());
  serve::HttpClient c(port, "verify");
  const std::string key = fabric_request().cell_key_hex();
  for (const auto& [name, text] : direct.artifacts) {
    serve::HttpResponse resp;
    std::string cerr;
    ASSERT_TRUE(c.get("/result/" + key + "?artifact=" + name, &resp, &cerr))
        << cerr;
    EXPECT_EQ(resp.status, 200) << name;
    EXPECT_EQ(resp.body, text) << name;
  }

  serve::HttpResponse replay;
  std::string cerr;
  ASSERT_TRUE(c.get("/replay/" + key, &replay, &cerr)) << cerr;
  EXPECT_EQ(replay.status, 200);
  EXPECT_TRUE(contains(replay.body, "\"identical\":true")) << replay.body;

  // POST /shutdown unblocks wait().
  std::thread waiter([&] { d.wait(); });
  serve::HttpResponse stop;
  ASSERT_TRUE(c.post("/shutdown", "", &stop, &cerr)) << cerr;
  EXPECT_EQ(stop.status, 200);
  waiter.join();
}

TEST(DaemonSocket, DistinctRequestsGetDistinctCells) {
  serve::DaemonOptions opts;
  opts.port = 0;
  opts.jobs = 2;
  serve::Daemon d(opts);
  std::string err;
  ASSERT_TRUE(d.start(&err)) << err;
  serve::HttpClient c(d.port(), "multi");

  const std::string body_a = kFabricBody;
  const std::string body_b =
      "{\"attack\":\"replay\",\"mode\":\"fabric\",\"seed\":7,\"zones\":3}";
  const std::string ra = poll_until_ready([&] {
    serve::HttpResponse resp;
    std::string cerr;
    if (!c.post("/run", body_a, &resp, &cerr)) return cerr;
    return resp.body;
  });
  const std::string rb = poll_until_ready([&] {
    serve::HttpResponse resp;
    std::string cerr;
    if (!c.post("/run", body_b, &resp, &cerr)) return cerr;
    return resp.body;
  });
  EXPECT_TRUE(contains(ra, "\"status\":\"ready\"")) << ra;
  EXPECT_TRUE(contains(rb, "\"status\":\"ready\"")) << rb;
  EXPECT_EQ(d.store().size(), 2u);
  EXPECT_EQ(d.executions(), 2u);
  d.shutdown();
}
