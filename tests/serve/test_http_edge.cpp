// HttpServer protocol edge cases, driven with raw sockets (not
// HttpClient — the point is byte-level control): headers split across
// TCP segments, oversized header blocks, malformed pipelined requests
// and Content-Length lies must all end in a clean response or a clean
// close, never a hang.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "serve/http.hpp"

namespace serve = mkbas::serve;

namespace {

class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    timeval tv{5, 0};  // every recv bounded: a hang fails, not wedges
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return connected_; }

  void send_all(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }
  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Read until EOF, timeout, or (when non-empty) `until` appears.
  std::string read_until(const std::string& until = "") {
    std::string out;
    char buf[4096];
    for (;;) {
      if (!until.empty() && out.find(until) != std::string::npos) return out;
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return out;  // EOF or timeout
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  /// True iff the server closes the connection (EOF before timeout).
  bool reaches_eof() {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: the server is hanging on us
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Server fixture: every request answered 200 "pong".
class EdgeServer : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string err;
    ASSERT_TRUE(server_.start(
        0,
        [](const serve::HttpRequest&) {
          serve::HttpResponse r;
          r.body = "pong";
          return r;
        },
        &err))
        << err;
  }
  void TearDown() override { server_.stop(); }

  serve::HttpServer server_;
};

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace

TEST_F(EdgeServer, HeadersSplitAcrossManyReadsStillParse) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  const std::string req =
      "GET /ping HTTP/1.1\r\nHost: localhost\r\nX-Client: split\r\n\r\n";
  // One byte at a time around every CRLF; bigger chunks elsewhere.
  for (std::size_t i = 0; i < req.size(); ++i) {
    c.send_all(req.substr(i, 1));
    if (req[i] == '\r' || req[i] == '\n') {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const std::string resp = c.read_until("pong");
  EXPECT_TRUE(contains(resp, "HTTP/1.1 200")) << resp;
  EXPECT_TRUE(contains(resp, "pong")) << resp;
}

TEST_F(EdgeServer, OversizedHeaderBlockIsRejectedAndClosed) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  // 80 KB of header bytes with no terminating CRLFCRLF: past the 64 KB
  // cap the server must answer 400 and hang up, not buffer forever.
  c.send_all("GET / HTTP/1.1\r\nX-Junk: " + std::string(80 * 1024, 'a'));
  const std::string resp = c.read_until("\r\n\r\n");
  EXPECT_TRUE(contains(resp, "HTTP/1.1 400")) << resp.substr(0, 200);
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(EdgeServer, MalformedSecondPipelinedRequestGets400AfterFirst) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  // A valid request pipelined with garbage: the first is served, the
  // garbage earns a 400, and nothing after the malformed bytes is
  // parsed for free (the connection closes).
  c.send_all(
      "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
      "THIS IS NOT HTTP\r\n\r\n"
      "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string all = c.read_until();
  const std::size_t first = all.find("HTTP/1.1 200");
  const std::size_t second = all.find("HTTP/1.1 400");
  EXPECT_NE(first, std::string::npos) << all;
  EXPECT_NE(second, std::string::npos) << all;
  EXPECT_LT(first, second);
  EXPECT_TRUE(contains(all, "malformed HTTP request")) << all;
  // Exactly one 200: the pipelined request after the garbage is dead.
  EXPECT_EQ(all.find("HTTP/1.1 200", first + 1), std::string::npos) << all;
}

TEST_F(EdgeServer, GarbageContentLengthIs400) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  c.send_all("POST /run HTTP/1.1\r\nContent-Length: 12x\r\n\r\n");
  const std::string resp = c.read_until("\r\n\r\n");
  EXPECT_TRUE(contains(resp, "HTTP/1.1 400")) << resp;
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(EdgeServer, OverlongContentLengthIs400NotABufferedWait) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  // Declares 2 MB (over the 1 MB body cap): rejected on sight, the
  // server never waits for bytes it would refuse anyway.
  c.send_all("POST /run HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n");
  const std::string resp = c.read_until("\r\n\r\n");
  EXPECT_TRUE(contains(resp, "HTTP/1.1 400")) << resp;
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(EdgeServer, ContentLengthUnderrunClosesCleanlyOnEof) {
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  // Declares 10 body bytes, sends 4, half-closes. The request can never
  // complete; the server must drop the connection, not wait forever.
  c.send_all("POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nfour");
  c.half_close();
  EXPECT_TRUE(c.reaches_eof());
}

TEST_F(EdgeServer, ServerSurvivesTheAbuseAndStillServes) {
  // After every edge case above ran against this fixture class, a
  // well-formed request on a fresh connection still round-trips.
  RawConn c(server_.port());
  ASSERT_TRUE(c.ok());
  c.send_all("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_TRUE(contains(c.read_until("pong"), "HTTP/1.1 200"));
}
